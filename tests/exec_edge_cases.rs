//! Edge cases of the kernel interpreter and the compilation pipeline:
//! multi-output kernels, degenerate shapes, uneven tiles, deep chains,
//! and instance semantics.

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape, Tensor};
use spacefusion::compiler::{Compiler, FusionPolicy};
use std::collections::HashMap;

fn verify(g: &Graph, arch: Arch, seed: u64, tol: f32) {
    let p = Engine::SpaceFusion.compile(arch, g).expect("compile");
    let b = g.random_bindings(seed);
    let expect = g.execute(&b).expect("reference");
    let got = p.execute(&b).expect("fused");
    assert_eq!(got.len(), expect.len());
    for (i, (x, y)) in got.iter().zip(expect.iter()).enumerate() {
        assert!(
            x.allclose(y, tol),
            "{} output {i} differs by {:?}",
            g.name(),
            x.max_abs_diff(y)
        );
    }
}

/// A fused kernel that materializes two outputs (the normalized value
/// and its row mean).
#[test]
fn multi_output_fused_kernel() {
    let mut g = Graph::new("two_outputs", DType::F32);
    let x = g.input("x", Shape::new(vec![48, 96]));
    let mean = g.reduce(ReduceOp::Mean, x, 1).unwrap();
    let c = g.binary(BinaryOp::Sub, x, mean).unwrap();
    let r = g.unary(UnaryOp::Relu, c).unwrap();
    g.mark_output(mean);
    g.mark_output(r);
    verify(&g, Arch::Ampere, 1, 1e-4);
}

/// Outputs read by later kernels *and* returned to the caller.
#[test]
fn shared_intermediate_across_kernels() {
    let mut g = Graph::new("shared", DType::F32);
    let x = g.input("x", Shape::new(vec![32, 64]));
    let w1 = g.weight("w1", Shape::new(vec![64, 64]));
    let w2 = g.weight("w2", Shape::new(vec![64, 64]));
    let h = g.gemm(x, w1, false).unwrap();
    let h = g.unary(UnaryOp::Relu, h).unwrap();
    let y = g.gemm(h, w2, false).unwrap();
    g.mark_output(h); // intermediate is also a program output.
    g.mark_output(y);
    for policy in [FusionPolicy::SpaceFusion, FusionPolicy::Unfused] {
        let p = Compiler::with_policy(Arch::Ampere, policy)
            .compile(&g)
            .unwrap();
        let b = g.random_bindings(2);
        let expect = g.execute(&b).unwrap();
        let got = p.execute(&b).unwrap();
        assert!(got[0].allclose(&expect[0], 1e-3));
        assert!(got[1].allclose(&expect[1], 1e-3));
    }
}

/// Prime-sized extents never divide the block sizes.
#[test]
fn prime_extents_clamp_correctly() {
    let mut g = Graph::new("prime", DType::F32);
    let x = g.input("x", Shape::new(vec![97, 131]));
    let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
    let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, s).unwrap();
    let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, z).unwrap();
    g.mark_output(d);
    verify(&g, Arch::Volta, 3, 1e-5);
}

/// A single-element tensor is a legal (if silly) program.
#[test]
fn single_element_graph() {
    let mut g = Graph::new("tiny", DType::F32);
    let x = g.input("x", Shape::new(vec![1, 1]));
    let y = g.unary(UnaryOp::Tanh, x).unwrap();
    g.mark_output(y);
    verify(&g, Arch::Hopper, 4, 1e-6);
}

/// A single row and a single column exercise both degenerate axes.
#[test]
fn single_row_and_column() {
    for dims in [vec![1, 257], vec![257, 1]] {
        let mut g = Graph::new("thin", DType::F32);
        let x = g.input("x", Shape::new(dims.clone()));
        let a = g.unary(UnaryOp::Sqr, x).unwrap();
        let r = g
            .reduce(ReduceOp::Sum, a, if dims[1] > 1 { 1 } else { 0 })
            .unwrap();
        g.mark_output(r);
        verify(&g, Arch::Ampere, 5, 1e-3);
    }
}

/// A 24-operator element-wise/reduction chain stays a single kernel.
#[test]
fn deep_elementwise_chain_fuses_whole() {
    let mut g = Graph::new("deep", DType::F32);
    let x = g.input("x", Shape::new(vec![64, 64]));
    let mut cur = x;
    for i in 0..20 {
        cur = match i % 4 {
            0 => g.unary(UnaryOp::Tanh, cur).unwrap(),
            1 => g.scalar(BinaryOp::Mul, cur, 1.01).unwrap(),
            2 => g.binary(BinaryOp::Add, cur, x).unwrap(),
            _ => g.unary(UnaryOp::Sigmoid, cur).unwrap(),
        };
    }
    let mx = g.reduce(ReduceOp::Max, cur, 1).unwrap();
    let out = g.binary(BinaryOp::Sub, cur, mx).unwrap();
    g.mark_output(out);
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    assert_eq!(p.kernels.len(), 1);
    verify(&g, Arch::Ampere, 6, 1e-4);
}

/// Instanced graphs execute per-instance semantics (the bindings are one
/// instance; the profiler scales the rest).
#[test]
fn instanced_graph_execution_is_per_instance() {
    let mut g = Graph::new("inst", DType::F32);
    g.instances = 16;
    let x = g.input("x", Shape::new(vec![8, 8]));
    let y = g.unary(UnaryOp::Relu, x).unwrap();
    g.mark_output(y);
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    let mut b = HashMap::new();
    b.insert(
        "x".to_string(),
        Tensor::full(Shape::new(vec![8, 8]), DType::F32, -2.0),
    );
    let out = p.execute(&b).unwrap();
    assert!(out[0].data().iter().all(|&v| v == 0.0));
    // The profile covers 16 instances' worth of traffic.
    let r1 = {
        let mut g1 = Graph::new("inst1", DType::F32);
        let x1 = g1.input("x", Shape::new(vec![8, 8]));
        let y1 = g1.unary(UnaryOp::Relu, x1).unwrap();
        g1.mark_output(y1);
        Engine::SpaceFusion
            .compile(Arch::Ampere, &g1)
            .unwrap()
            .profile(1)
    };
    let r16 = p.profile(16);
    assert!(r16.stats.dram_total_bytes() >= 8 * r1.stats.dram_total_bytes());
}

/// Weight-only programs (no activation input) compile and run.
#[test]
fn weight_only_program() {
    let mut g = Graph::new("wonly", DType::F32);
    let w = g.weight("w", Shape::new(vec![32, 32]));
    let y = g.unary(UnaryOp::Gelu, w).unwrap();
    g.mark_output(y);
    verify(&g, Arch::Ampere, 7, 1e-4);
}

/// Broadcast-op graphs round-trip through compilation.
#[test]
fn explicit_broadcast_roundtrip() {
    let mut g = Graph::new("bcast", DType::F32);
    let x = g.input("x", Shape::new(vec![33, 1]));
    let b = g.broadcast(x, 1, 77).unwrap();
    let y = g.scalar(BinaryOp::Mul, b, 2.0).unwrap();
    g.mark_output(y);
    verify(&g, Arch::Volta, 8, 1e-6);
}

/// Column-direction softmax (reductions along dim 0) — the transpose of
/// everything else in the suite.
#[test]
fn column_softmax() {
    let mut g = Graph::new("col_softmax", DType::F32);
    let x = g.input("x", Shape::new(vec![200, 48]));
    let mx = g.reduce(ReduceOp::Max, x, 0).unwrap();
    let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, s).unwrap();
    let z = g.reduce(ReduceOp::Sum, e, 0).unwrap();
    let d = g.binary(BinaryOp::Div, e, z).unwrap();
    g.mark_output(d);
    verify(&g, Arch::Ampere, 9, 1e-5);
    // Columns sum to one.
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    let b = g.random_bindings(10);
    let out = p.execute(&b).unwrap();
    for j in 0..48 {
        let col: f32 = (0..200).map(|i| out[0].at(&[i, j])).sum();
        assert!((col - 1.0).abs() < 1e-4);
    }
}
