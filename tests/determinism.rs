//! Determinism guarantees: a simulator-based reproduction is only
//! credible if every number it prints is bit-stable across runs.

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_models::subgraphs;

/// Compiling the same graph twice yields the same schedule.
#[test]
fn compilation_is_deterministic() {
    let g = subgraphs::mha(4, 8, 1024, 64);
    let a = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    let b = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    assert_eq!(a.kernels.len(), b.kernels.len());
    for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
        assert_eq!(ka.schedule.spatial, kb.schedule.spatial);
        assert_eq!(
            ka.schedule.temporal.as_ref().map(|t| t.block),
            kb.schedule.temporal.as_ref().map(|t| t.block)
        );
        assert_eq!(ka.roles, kb.roles);
    }
}

/// Profiling the same program twice yields identical counters and time.
#[test]
fn profiling_is_deterministic() {
    let g = subgraphs::layernorm(1024, 1024);
    let p = Engine::SpaceFusion.compile(Arch::Volta, &g).unwrap();
    let r1 = p.profile(1);
    let r2 = p.profile(1);
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(r1.time_us, r2.time_us);
    assert_eq!(r1.kernels.len(), r2.kernels.len());
    for (a, b) in r1.kernels.iter().zip(&r2.kernels) {
        assert_eq!(a, b);
    }
}

/// Numeric execution is bit-identical across runs (no hidden iteration-
/// order dependence in the interpreter).
#[test]
fn execution_is_bit_stable() {
    let g = subgraphs::mha(1, 1, 256, 32);
    let p = Engine::SpaceFusion.compile(Arch::Hopper, &g).unwrap();
    let bindings = g.random_bindings(77);
    let a = p.execute(&bindings).unwrap();
    let b = p.execute(&bindings).unwrap();
    assert_eq!(a[0].data(), b[0].data());
}

/// Random bindings are seed-stable (the reproducibility anchor for every
/// figure harness).
#[test]
fn bindings_are_seed_stable() {
    let g = subgraphs::softmax(16, 16);
    let a = g.random_bindings(123);
    let b = g.random_bindings(123);
    let c = g.random_bindings(124);
    assert_eq!(a["x"].data(), b["x"].data());
    assert_ne!(a["x"].data(), c["x"].data());
}

/// The same workload profiled on different architectures gives
/// *identical request-level* traffic (the access stream is a property of
/// the schedule, not the machine) whenever the tuner picks the same
/// schedule — and always gives monotone-or-equal simulated times from
/// Volta to Hopper.
#[test]
fn architecture_only_affects_costs_not_semantics() {
    let g = subgraphs::rmsnorm(512, 512);
    let mut times = Vec::new();
    for arch in Arch::all() {
        let p = Engine::SpaceFusion.compile(arch, &g).unwrap();
        let bindings = g.random_bindings(9);
        let expect = g.execute(&bindings).unwrap();
        let got = p.execute(&bindings).unwrap();
        assert!(got[0].allclose(&expect[0], 1e-3), "numerics hold on {arch}");
        times.push(p.profile(1).time_us);
    }
    assert!(
        times[0] >= times[2],
        "Hopper is never slower than Volta: {times:?}"
    );
}
