//! Property-based tests: every schedule the compiler emits — for
//! *randomly generated* operator graphs and shapes — must reproduce the
//! reference numerics and respect hardware resource bounds.
//!
//! Formerly gated behind a `proptest` feature; now driven by the
//! in-tree seeded generator (`sf_fuzz::gen`), so the whole suite runs
//! in the default offline `cargo test` and every case is reproducible
//! from its seed.

use sf_fuzz::{derive_tolerance, generate, GenConfig};
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::assert_tensors_close;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::rng::XorShiftRng;
use sf_tensor::{DType, Shape};
use spacefusion::compiler::{Compiler, FusionPolicy};

fn cases(seeds: u64) -> impl Iterator<Item = (u64, Graph)> {
    let cfg = GenConfig::default();
    (0..seeds).map(move |seed| {
        let g = generate(seed, &cfg)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed} failed to build: {e}"));
        (seed, g)
    })
}

/// Fused execution of random pipelines matches the reference.
#[test]
fn fused_random_pipelines_match_reference() {
    for (seed, g) in cases(48) {
        let bindings = g.random_bindings(seed);
        let expect = g.execute(&bindings).unwrap();
        let tol = derive_tolerance(&g);
        for policy in [FusionPolicy::SpaceFusion, FusionPolicy::MiOnly] {
            let compiler = Compiler::with_policy(Arch::Ampere, policy);
            let program = compiler
                .compile(&g)
                .unwrap_or_else(|e| panic!("seed {seed} {policy:?}: {e}"));
            let got = program.execute(&bindings).unwrap();
            for (i, (got, want)) in got.iter().zip(expect.iter()).enumerate() {
                assert_tensors_close(
                    &format!("seed {seed} {policy:?} output {i}"),
                    got,
                    want,
                    tol,
                );
            }
        }
    }
}

/// Attention matches the reference at arbitrary (legal) shapes,
/// through the mechanically derived online softmax.
#[test]
fn fused_attention_matches_reference_at_random_shapes() {
    let mut rng = XorShiftRng::seed_from_u64(0xa77e);
    for case in 0..12 {
        let m = 17 + rng.below(63) as usize;
        let l = 33 + rng.below(167) as usize;
        let d = 8 + rng.below(32) as usize;
        let seed = rng.next_u64();
        let mut g = Graph::new("mha", DType::F32);
        let q = g.input("q", Shape::new(vec![m, d]));
        let k = g.input("k", Shape::new(vec![l, d]));
        let v = g.input("v", Shape::new(vec![l, d]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let dv = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(dv, v, false).unwrap();
        g.mark_output(out);

        let bindings = g.random_bindings(seed);
        let expect = g.execute(&bindings).unwrap();
        let program = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let got = program.execute(&bindings).unwrap();
        assert_tensors_close(
            &format!("case {case} mha {m}x{l}x{d}"),
            &got[0],
            &expect[0],
            derive_tolerance(&g),
        );
    }
}

/// Every emitted kernel respects the target's resource bounds.
#[test]
fn schedules_respect_resource_bounds() {
    for (seed, g) in cases(32) {
        for arch in [Arch::Volta, Arch::Hopper] {
            let compiler = Compiler::with_policy(arch, FusionPolicy::SpaceFusion);
            let program = compiler
                .compile(&g)
                .unwrap_or_else(|e| panic!("seed {seed} {arch:?}: {e}"));
            let cfg = arch.config();
            for k in &program.kernels {
                assert!(
                    k.schedule.smem_per_block(&k.graph) <= cfg.smem_per_block,
                    "seed {seed} {arch:?}: smem over budget"
                );
                assert!(
                    k.schedule.regs_per_block(&k.graph) <= cfg.regs_per_block,
                    "seed {seed} {arch:?}: regs over budget"
                );
            }
        }
    }
}

/// Partition invariant: however a graph is split by policies, the
/// kernels chain back to the reference result.
#[test]
fn policies_agree_with_each_other() {
    for (seed, g) in cases(32) {
        let bindings = g.random_bindings(seed);
        let a = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap()
            .execute(&bindings)
            .unwrap();
        let b = Compiler::with_policy(Arch::Ampere, FusionPolicy::Unfused)
            .compile(&g)
            .unwrap()
            .execute(&bindings)
            .unwrap();
        let tol = derive_tolerance(&g);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_tensors_close(&format!("seed {seed} output {i}"), x, y, tol);
        }
    }
}

/// The profiler's counters are internally consistent on random
/// fused programs: misses never exceed accesses, DRAM reads never
/// exceed requested bytes rounded to lines.
#[test]
fn profiler_counters_are_consistent() {
    for (seed, g) in cases(24) {
        let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let r = program.profile(1);
        assert!(r.stats.l1_misses <= r.stats.l1_accesses, "seed {seed}");
        assert!(r.stats.l2_misses <= r.stats.l2_accesses, "seed {seed}");
        for k in &r.kernels {
            // Line-granularity DRAM reads can exceed requested bytes by
            // at most one line per row access; bound loosely by 2x+line.
            assert!(
                k.dram_read_bytes <= 2 * k.global_read_bytes + 4096,
                "seed {seed} {}: dram {} vs requested {}",
                k.name,
                k.dram_read_bytes,
                k.global_read_bytes
            );
        }
        assert!(r.time_us > 0.0, "seed {seed}");
    }
}
