//! Property-based tests: every schedule the compiler emits — for
//! *randomly generated* operator graphs and shapes — must reproduce the
//! reference numerics and respect hardware resource bounds.

// Gated: requires the `proptest` feature (and a proptest
// dev-dependency, which needs registry access to resolve). The
// default offline build skips this suite.
#![cfg(feature = "proptest")]
use proptest::prelude::*;
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::compiler::{Compiler, FusionPolicy};

/// One step of a randomly generated element-wise/reduction pipeline.
#[derive(Debug, Clone)]
enum Step {
    Unary(u8),
    Scalar(f32),
    Reduce(u8, bool), // (kind, along_columns)
    CombineInput(u8), // binary with the original input (broadcasts back).
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5).prop_map(Step::Unary),
        (-1.5f32..1.5).prop_map(Step::Scalar),
        ((0u8..3), any::<bool>()).prop_map(|(k, c)| Step::Reduce(k, c)),
        (0u8..4).prop_map(Step::CombineInput),
    ]
}

fn unary_of(i: u8) -> UnaryOp {
    [
        UnaryOp::Exp,
        UnaryOp::Relu,
        UnaryOp::Sqr,
        UnaryOp::Tanh,
        UnaryOp::Sigmoid,
    ][i as usize % 5]
}

fn binary_of(i: u8) -> BinaryOp {
    [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Max][i as usize % 4]
}

fn reduce_of(i: u8) -> ReduceOp {
    [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Mean][i as usize % 3]
}

/// Builds a graph from the generated pipeline, tracking shapes so every
/// op is valid by construction.
fn build_graph(m: usize, n: usize, steps: &[Step]) -> Graph {
    let mut g = Graph::new("random_pipeline", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let mut cur = x;
    for s in steps {
        cur = match s {
            Step::Unary(u) => {
                // Exp after wide values overflows f32; squash first.
                let v = if unary_of(*u) == UnaryOp::Exp {
                    g.unary(UnaryOp::Tanh, cur).unwrap()
                } else {
                    cur
                };
                g.unary(unary_of(*u), v).unwrap()
            }
            Step::Scalar(c) => g.scalar(BinaryOp::Mul, cur, *c).unwrap(),
            Step::Reduce(k, cols) => {
                let shape = g.shape(cur).clone();
                let dim = if *cols { 0 } else { 1 };
                if shape.dims()[dim] == 1 {
                    continue; // Already reduced along this dim.
                }
                g.reduce(reduce_of(*k), cur, dim).unwrap()
            }
            Step::CombineInput(b) => g.binary(binary_of(*b), x, cur).unwrap(),
        };
    }
    g.mark_output(cur);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused execution of random pipelines matches the reference.
    #[test]
    fn fused_random_pipelines_match_reference(
        m in 3usize..48,
        n in 3usize..48,
        steps in prop::collection::vec(step_strategy(), 1..8),
        seed in 0u64..1000,
    ) {
        let g = build_graph(m, n, &steps);
        let bindings = g.random_bindings(seed);
        let expect = g.execute(&bindings).unwrap();
        for policy in [FusionPolicy::SpaceFusion, FusionPolicy::MiOnly] {
            let compiler = Compiler::with_policy(Arch::Ampere, policy);
            let program = compiler.compile(&g).unwrap();
            let got = program.execute(&bindings).unwrap();
            prop_assert!(
                got[0].allclose(&expect[0], 1e-3),
                "policy {:?} differs by {:?} on {} steps",
                policy, got[0].max_abs_diff(&expect[0]), g.ops().len()
            );
        }
    }

    /// Attention matches the reference at arbitrary (legal) shapes,
    /// through the mechanically derived online softmax.
    #[test]
    fn fused_attention_matches_reference_at_random_shapes(
        m in 17usize..80,
        l in 33usize..200,
        d in 8usize..40,
        seed in 0u64..1000,
    ) {
        let mut g = Graph::new("mha", DType::F32);
        let q = g.input("q", Shape::new(vec![m, d]));
        let k = g.input("k", Shape::new(vec![l, d]));
        let v = g.input("v", Shape::new(vec![l, d]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let dv = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(dv, v, false).unwrap();
        g.mark_output(out);

        let bindings = g.random_bindings(seed);
        let expect = g.execute(&bindings).unwrap();
        let program = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
            .compile(&g).unwrap();
        let got = program.execute(&bindings).unwrap();
        prop_assert!(got[0].allclose(&expect[0], 1e-3));
    }

    /// Every emitted kernel respects the target's resource bounds.
    #[test]
    fn schedules_respect_resource_bounds(
        m in 16usize..257,
        n in 16usize..257,
        steps in prop::collection::vec(step_strategy(), 1..6),
    ) {
        let g = build_graph(m, n, &steps);
        for arch in [Arch::Volta, Arch::Hopper] {
            let compiler = Compiler::with_policy(arch, FusionPolicy::SpaceFusion);
            let program = compiler.compile(&g).unwrap();
            let cfg = arch.config();
            for k in &program.kernels {
                prop_assert!(k.schedule.smem_per_block(&k.graph) <= cfg.smem_per_block);
                prop_assert!(k.schedule.regs_per_block(&k.graph) <= cfg.regs_per_block);
            }
        }
    }

    /// Partition invariant: however a graph is split by policies, the
    /// kernels chain back to the reference result.
    #[test]
    fn policies_agree_with_each_other(
        m in 8usize..40,
        n in 8usize..40,
        steps in prop::collection::vec(step_strategy(), 2..7),
        seed in 0u64..1000,
    ) {
        let g = build_graph(m, n, &steps);
        let bindings = g.random_bindings(seed);
        let a = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&g).unwrap().execute(&bindings).unwrap();
        let b = Compiler::with_policy(Arch::Ampere, FusionPolicy::Unfused)
            .compile(&g).unwrap().execute(&bindings).unwrap();
        prop_assert!(a[0].allclose(&b[0], 1e-3));
    }

    /// The profiler's counters are internally consistent on random
    /// fused programs: misses never exceed accesses, DRAM reads never
    /// exceed requested bytes rounded to lines.
    #[test]
    fn profiler_counters_are_consistent(
        m in 16usize..128,
        n in 16usize..128,
        steps in prop::collection::vec(step_strategy(), 1..5),
    ) {
        let g = build_graph(m, n, &steps);
        let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&g).unwrap();
        let r = program.profile(1);
        prop_assert!(r.stats.l1_misses <= r.stats.l1_accesses);
        prop_assert!(r.stats.l2_misses <= r.stats.l2_accesses);
        for k in &r.kernels {
            // Line-granularity DRAM reads can exceed requested bytes by
            // at most one line per row access; bound loosely by 2x+line.
            prop_assert!(
                k.dram_read_bytes <= 2 * k.global_read_bytes + 4096,
                "{} dram {} vs requested {}",
                k.name, k.dram_read_bytes, k.global_read_bytes
            );
        }
        prop_assert!(r.time_us > 0.0);
    }
}
