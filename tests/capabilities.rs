//! The Table 2 capability matrix, as executable assertions.
//!
//! The paper positions systems by what their abstraction can express:
//! inter-/intra-operator dependency perception, dependency
//! transformation, memory-hierarchy scheduling, hardware awareness. On
//! our common substrate those capabilities become observable properties
//! of the compiled programs — kernel counts, schedule kinds, failure
//! modes — which this suite pins down, plus the extension shapes
//! (masked and decode attention).

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_ir::OpKind;
use sf_models::subgraphs;

/// MHA fusion capability: SpaceFusion fuses everything; tile-graph fuses
/// until the dependency transformation is needed; MI-only never crosses
/// the GEMMs; eager fuses only the framework softmax.
#[test]
fn attention_fusion_capabilities() {
    let arch = Arch::Volta;
    let short = subgraphs::mha(1, 4, 256, 64);
    let long = subgraphs::mha(1, 4, 4096, 64);

    let kernels = |e: Engine, g: &sf_ir::Graph| e.compile(arch, g).unwrap().kernels.len();

    assert_eq!(kernels(Engine::SpaceFusion, &short), 1);
    assert_eq!(
        kernels(Engine::SpaceFusion, &long),
        1,
        "UTA handles any length"
    );

    // Tile-graph fusion holds at short sequences (everything fits) but
    // must split at long ones — the paper's NNFusion limitation.
    assert_eq!(kernels(Engine::NnFusion, &short), 1);
    assert!(kernels(Engine::NnFusion, &long) > 1);

    // MI-only keeps both GEMMs out.
    assert!(kernels(Engine::BladeDisc, &short) >= 3);

    // Eager: gemm, scale, softmax, gemm.
    assert_eq!(kernels(Engine::PyTorch, &short), 4);
}

/// LayerNorm fusion capability: every fusing system handles the pure-MI
/// chain; eager does not.
#[test]
fn layernorm_fusion_capabilities() {
    let arch = Arch::Ampere;
    let ln = subgraphs::layernorm(512, 1024);
    for e in [
        Engine::SpaceFusion,
        Engine::BladeDisc,
        Engine::TensorRt,
        Engine::Kernl,
    ] {
        let p = e.compile(arch, &ln).unwrap();
        assert_eq!(p.kernels.len(), 1, "{} should fuse LN", e.name());
    }
    let p = Engine::PyTorch.compile(arch, &ln).unwrap();
    assert_eq!(p.kernels.len(), ln.ops().len());
}

/// MLP-stack fusion: only holistic scheduling fuses across many GEMMs;
/// epilogue-only systems emit one kernel per layer.
#[test]
fn mlp_stack_fusion_capabilities() {
    let arch = Arch::Ampere;
    let mlp = subgraphs::mlp_stack(8, 256, 256);
    let sf = Engine::SpaceFusion.compile(arch, &mlp).unwrap();
    assert_eq!(sf.kernels.len(), 1, "SpaceFusion fuses the whole stack");
    let trt = Engine::TensorRt.compile(arch, &mlp).unwrap();
    assert_eq!(
        trt.kernels.len(),
        8,
        "epilogue fusion: one kernel per layer"
    );
    let blade = Engine::BladeDisc.compile(arch, &mlp).unwrap();
    assert!(blade.kernels.len() >= 8, "MI-only cannot merge GEMMs");
}

/// Masked attention (extension): the additive mask rides along in the
/// fused kernel and the derived schedule stays single-pass.
#[test]
fn masked_attention_fuses_and_matches() {
    // Numerics at a testable size.
    let g = subgraphs::masked_mha(1, 2, 512, 32);
    let p = Engine::SpaceFusion.compile(Arch::Hopper, &g).unwrap();
    assert_eq!(p.kernels.len(), 1);
    let bindings = g.random_bindings(31);
    let expect = g.execute(&bindings).unwrap();
    let got = p.execute(&bindings).unwrap();
    assert!(got[0].allclose(&expect[0], 1e-3));

    // At long sequences the mask rides along in the derived single-pass
    // streaming schedule (the mask tile varies per intra-block).
    let long = subgraphs::masked_mha(1, 2, 8192, 64);
    let p = Engine::SpaceFusion.compile(Arch::Hopper, &long).unwrap();
    assert_eq!(p.kernels.len(), 1);
    let t = p.kernels[0].schedule.temporal.as_ref().expect("temporal");
    assert!(!t.plan.two_phase);
}

/// Decode-phase attention (extension): with a single query row nothing
/// is spatially sliceable, and the single-block fallback plus temporal
/// streaming still produces a correct fused kernel.
#[test]
fn decode_attention_uses_single_block_streaming() {
    // Short KV caches fit on chip: single block, no streaming needed.
    let short = subgraphs::mha_decode(4, 8, 2048, 64);
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &short).unwrap();
    assert_eq!(p.kernels.len(), 1);
    assert_eq!(p.kernels[0].schedule.grid(), 1, "one block per instance");
    let bindings = short.random_bindings(5);
    let expect = short.execute(&bindings).unwrap();
    let got = p.execute(&bindings).unwrap();
    assert!(got[0].allclose(&expect[0], 1e-3));

    // A long-context KV cache no longer fits: the temporal slicer must
    // stream it through the same single block.
    let long = subgraphs::mha_decode(4, 8, 65536, 64);
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &long).unwrap();
    assert_eq!(p.kernels.len(), 1);
    assert_eq!(p.kernels[0].schedule.grid(), 1);
    assert!(
        p.kernels[0].schedule.temporal.is_some(),
        "KV cache must stream"
    );
}

/// Fusion census ordering (Table 6): SpaceFusion ⊇ tile-graph ⊇ MI-only
/// in mixed CI+MI patterns.
#[test]
fn fusion_census_ordering() {
    let arch = Arch::Ampere;
    let suite = [
        subgraphs::mha(1, 4, 4096, 64),
        subgraphs::layernorm(1024, 1024),
        subgraphs::mlp_stack(6, 256, 256),
        subgraphs::lstm_cell(256, 256),
    ];
    let census = |e: Engine| -> (usize, usize) {
        let mut mixed = 0;
        let mut any = 0;
        for g in &suite {
            let p = e.compile(arch, g).unwrap();
            for sig in &p.stats.fusion_patterns {
                any += 1;
                if sig.contains("gemm") && sig.contains("reduce_") {
                    mixed += 1;
                }
            }
        }
        (any, mixed)
    };
    let (sf_any, sf_mixed) = census(Engine::SpaceFusion);
    let (_nn_any, nn_mixed) = census(Engine::NnFusion);
    let (bd_any, bd_mixed) = census(Engine::BladeDisc);
    // Totals are not strictly ordered (a partitioned region can leave
    // several small >=2-A2O fragments), but the mixed CI+MI census is:
    // only dependency transformation fuses the long attention region.
    assert!(sf_any >= bd_any, "{sf_any} {bd_any}");
    assert!(
        sf_mixed > nn_mixed,
        "SpaceFusion must find more CI+MI patterns"
    );
    assert_eq!(bd_mixed, 0, "MI-only never fuses across a GEMM");
}

/// BladeDISC kernels never contain a GEMM together with other ops.
#[test]
fn mi_only_kernels_are_pure() {
    let g = subgraphs::lstm_cell(128, 256);
    let p = Engine::BladeDisc.compile(Arch::Volta, &g).unwrap();
    for k in &p.kernels {
        let has_gemm = k
            .graph
            .ops()
            .iter()
            .any(|o| matches!(o.kind, OpKind::Gemm { .. }));
        if has_gemm {
            assert_eq!(k.graph.ops().len(), 1);
        }
    }
}
