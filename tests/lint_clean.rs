//! The entire in-tree model zoo lints clean on every architecture.
//!
//! This is the golden-corpus side of the verifier: the mutation tests in
//! `crates/core/tests/verify_negative.rs` prove seeded violations are
//! caught; this suite proves the compiler never produces a schedule the
//! verifier objects to — across fusion policies, workload shapes and
//! transformer configurations.

use sf_gpu_sim::Arch;
use sf_models::{extended, subgraphs, transformer};
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::verify::{verify_program, VerifyConfig};

fn assert_lint_clean(g: &sf_ir::Graph, arch: Arch, policy: FusionPolicy) {
    let p = Compiler::with_policy(arch, policy)
        .compile(g)
        .unwrap_or_else(|e| panic!("{} on {arch} ({policy:?}): {e}", g.name()));
    let cfg = arch.config();
    let diags = verify_program(&p.kernels, &cfg, &VerifyConfig::default());
    assert!(
        diags.is_empty(),
        "{} on {arch} ({policy:?}) is not lint-clean:\n{}",
        g.name(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

#[test]
fn subgraph_zoo_is_lint_clean_on_every_arch() {
    let zoo = [
        subgraphs::softmax(1024, 4096),
        subgraphs::layernorm(1024, 8192),
        subgraphs::rmsnorm(512, 4096),
        subgraphs::mha(8, 16, 1024, 64),
        subgraphs::mha(2, 8, 8192, 64), // long sequence: temporal + UTA
        subgraphs::masked_mha(4, 8, 512, 64),
        subgraphs::mha_decode(8, 32, 2048, 128),
        subgraphs::mlp_stack(3, 512, 1024),
        subgraphs::lstm_cell(64, 512),
    ];
    for g in &zoo {
        for arch in Arch::all() {
            assert_lint_clean(g, arch, FusionPolicy::SpaceFusion);
        }
    }
}

#[test]
fn extended_workloads_are_lint_clean() {
    let zoo = [
        extended::conv2d_im2col(8, 14, 3, 16, 32),
        extended::batchnorm_inference(4096, 256),
        extended::glu(512, 1024, 1024),
        extended::log_softmax_nll(2048, 1024),
    ];
    for g in &zoo {
        assert_lint_clean(g, Arch::Ampere, FusionPolicy::SpaceFusion);
    }
}

#[test]
fn every_fusion_policy_stays_lint_clean() {
    let g = subgraphs::mha(4, 8, 1024, 64);
    for policy in [
        FusionPolicy::SpaceFusion,
        FusionPolicy::Unfused,
        FusionPolicy::EpilogueOnly,
        FusionPolicy::MiOnly,
    ] {
        assert_lint_clean(&g, Arch::Ampere, policy);
    }
}

#[test]
fn transformer_subprograms_are_lint_clean() {
    for cfg in transformer::all_models() {
        for w in cfg.subprograms(1, 512) {
            assert_lint_clean(&w.graph, Arch::Hopper, FusionPolicy::SpaceFusion);
        }
    }
}
