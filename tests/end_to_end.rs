//! Cross-crate integration: models × engines, compiled, executed and
//! compared against the reference numerics, plus the performance
//! orderings the paper's evaluation rests on.

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_models::{bert, llama2_7b, subgraphs};

/// Every engine must produce reference numerics on every subprogram of a
/// (shrunken) BERT layer.
#[test]
fn all_engines_match_reference_on_bert_subprograms() {
    let mut cfg = bert();
    cfg.layers = 1;
    cfg.hidden = 64;
    cfg.heads = 2;
    cfg.head_dim = 32;
    cfg.ffn = 128;
    for w in cfg.subprograms(1, 32) {
        let bindings = w.graph.random_bindings(99);
        let expect = w.graph.execute(&bindings).expect("reference");
        for e in Engine::all() {
            let p = e
                .compile(Arch::Ampere, &w.graph)
                .unwrap_or_else(|err| panic!("{} on {}: {err}", e.name(), w.graph.name()));
            let got = p.execute(&bindings).expect("execute");
            for (g, x) in got.iter().zip(expect.iter()) {
                assert!(
                    g.allclose(x, 2e-3),
                    "{} wrong on {} (diff {:?})",
                    e.name(),
                    w.graph.name(),
                    g.max_abs_diff(x)
                );
            }
        }
    }
}

/// Llama2's SwiGLU and RMSNorm subprograms compile and execute.
#[test]
fn llama2_subprograms_compile_and_match() {
    let mut cfg = llama2_7b();
    cfg.layers = 1;
    cfg.hidden = 64;
    cfg.heads = 2;
    cfg.head_dim = 32;
    cfg.ffn = 96;
    for w in cfg.subprograms(1, 16) {
        let bindings = w.graph.random_bindings(17);
        let expect = w.graph.execute(&bindings).expect("reference");
        let p = Engine::SpaceFusion
            .compile(Arch::Hopper, &w.graph)
            .expect("compile");
        let got = p.execute(&bindings).expect("execute");
        assert!(
            got[0].allclose(&expect[0], 2e-3),
            "wrong on {}",
            w.graph.name()
        );
    }
}

/// The paper's central subgraph claims, as orderings on the simulator.
#[test]
fn headline_performance_orderings_hold() {
    let arch = Arch::Ampere;

    // LayerNorm: SpaceFusion beats the unfused baseline by a large
    // factor (paper: ~7x average).
    let ln = subgraphs::layernorm(2048, 2048);
    let ln_sf = Engine::SpaceFusion.compile(arch, &ln).unwrap().profile(1);
    let ln_py = Engine::PyTorch.compile(arch, &ln).unwrap().profile(1);
    let ln_speedup = ln_py.time_us / ln_sf.time_us;
    assert!(ln_speedup > 3.0, "LN speedup too small: {ln_speedup:.2}");

    // MHA: fused beats the eager baseline and matches hand-tuned
    // FlashAttention within a modest band (paper: "comparable").
    let mha = subgraphs::mha(8, 8, 1024, 64);
    let mha_sf = Engine::SpaceFusion.compile(arch, &mha).unwrap().profile(2);
    let mha_py = Engine::PyTorch.compile(arch, &mha).unwrap().profile(2);
    assert!(mha_py.time_us / mha_sf.time_us > 1.5);
    let fa = sf_baselines::flash_attention_v2(arch, &mha)
        .expect("supported")
        .expect("compile")
        .profile(2);
    let ratio = fa.time_us / mha_sf.time_us;
    assert!((0.8..=2.0).contains(&ratio), "SF vs FA2 ratio {ratio:.2}");

    // Fusion reduces DRAM traffic in every case.
    assert!(ln_sf.stats.dram_total_bytes() < ln_py.stats.dram_total_bytes());
    assert!(mha_sf.stats.dram_total_bytes() < mha_py.stats.dram_total_bytes());
}

/// Memory-intensity explains speedup-per-byte (paper §6.3): LN converts
/// data-movement reduction into speedup more directly than MHA.
#[test]
fn ln_converts_traffic_savings_better_than_mha() {
    let arch = Arch::Ampere;
    let ln = subgraphs::layernorm(4096, 4096);
    let mha = subgraphs::mha(32, 16, 1024, 64);

    let eff = |g: &sf_ir::Graph| {
        let sf = Engine::SpaceFusion.compile(arch, g).unwrap().profile(2);
        let py = Engine::PyTorch.compile(arch, g).unwrap().profile(2);
        let speedup = py.time_us / sf.time_us;
        let reduction =
            py.stats.dram_total_bytes() as f64 / sf.stats.dram_total_bytes().max(1) as f64;
        speedup / reduction
    };
    let ln_eff = eff(&ln);
    let mha_eff = eff(&mha);
    assert!(
        ln_eff > mha_eff,
        "LN speedup-per-traffic {ln_eff:.2} must exceed MHA {mha_eff:.2}"
    );
}

/// Architecture scaling: the same fused MHA gets faster from Volta to
/// Ampere to Hopper, but sub-linearly vs the peak ratio (paper Fig 16c).
#[test]
fn architecture_scaling_is_monotone_and_sublinear() {
    let g = subgraphs::mha(32, 16, 512, 64);
    let mut times = Vec::new();
    for arch in Arch::all() {
        let p = Engine::SpaceFusion.compile(arch, &g).unwrap();
        times.push(p.profile(2).time_us);
    }
    assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
    let hopper_ratio = times[0] / times[2];
    assert!(
        hopper_ratio < 6.75,
        "speedup {hopper_ratio:.2} cannot exceed the peak ratio"
    );
    assert!(hopper_ratio > 1.5, "Hopper should be clearly faster");
}

/// Batch-1 vs batch-32 (paper Fig 16b mechanism): more instances mean
/// more parallelism, so fused speedups at batch 32 are at least as good.
#[test]
fn batching_does_not_hurt_fused_speedups() {
    let arch = Arch::Ampere;
    let small = subgraphs::mha(1, 16, 512, 64);
    let big = subgraphs::mha(32, 16, 512, 64);
    let su = |g: &sf_ir::Graph| {
        let sf = Engine::SpaceFusion
            .compile(arch, g)
            .unwrap()
            .profile(2)
            .time_us;
        let py = Engine::PyTorch.compile(arch, g).unwrap().profile(2).time_us;
        py / sf
    };
    let su1 = su(&small);
    let su32 = su(&big);
    assert!(
        su32 > 0.5 * su1,
        "batch 32 speedup collapsed: {su32:.2} vs {su1:.2}"
    );
}

/// The compile-cache makes repeated layers cheap (paper §5 / Table 5).
#[test]
fn repeated_subprograms_hit_the_schedule_cache() {
    use spacefusion::compiler::{CompileOptions, Compiler};
    let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
    let g = subgraphs::layernorm(256, 256);
    let p1 = compiler.compile(&g).unwrap();
    let p2 = compiler.compile(&g).unwrap();
    assert_eq!(p1.stats.cache_hits, 0);
    assert!(p2.stats.cache_hits > 0);
    assert!(p2.stats.total_us < p1.stats.total_us * 2.0);
}
