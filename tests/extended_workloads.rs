//! Compilation and numerics of the extension workloads: convolution via
//! im2col, column-direction BatchNorm, GLU, and the chained-reduction
//! NLL loss — structurally different corners than the paper's Fig. 10
//! suite.

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_ir::ValueId;
use sf_models::extended;
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::slicer::eligible_spatial_dims;
use spacefusion::smg::build_smg;

fn check(g: &sf_ir::Graph, arch: Arch, seed: u64, tol: f32) -> spacefusion::CompiledProgram {
    let p = Engine::SpaceFusion.compile(arch, g).expect("compile");
    let b = g.random_bindings(seed);
    let expect = g.execute(&b).expect("reference");
    let got = p.execute(&b).expect("fused");
    for (x, y) in got.iter().zip(expect.iter()) {
        assert!(
            x.allclose(y, tol),
            "{} differs by {:?}",
            g.name(),
            x.max_abs_diff(y)
        );
    }
    p
}

#[test]
fn conv_im2col_segments_and_fuses_the_epilogue() {
    let g = extended::conv2d_im2col(2, 8, 3, 16, 32);
    let p = check(&g, Arch::Ampere, 1, 1e-2);
    // One fused gemm+bias+relu kernel; the reshape is a barrier, not a
    // kernel.
    assert_eq!(p.kernels.len(), 1);
    assert_eq!(p.kernels[0].graph.ops().len(), 3);
}

#[test]
fn conv_column_counts_match_im2col_contract() {
    let g = extended::conv2d_im2col(1, 4, 3, 8, 8);
    let im2col = g.shape(ValueId(0));
    assert_eq!(im2col.dims(), &[16, 72]); // 4·4 positions × 3·3·8 patch.
}

#[test]
fn batchnorm_slices_the_feature_dimension() {
    // Reductions run along dim 0, so the *feature* axis is the spatially
    // sliceable one — the mirror image of LayerNorm.
    let g = extended::batchnorm_inference(512, 256);
    let smg = build_smg(&g).unwrap();
    let dims = eligible_spatial_dims(&g, &smg);
    assert_eq!(dims.len(), 1);
    assert_eq!(smg.extent(dims[0]), 256, "feature dim is sliceable");
    let p = check(&g, Arch::Hopper, 2, 1e-2);
    assert_eq!(p.kernels.len(), 1, "BatchNorm fuses like LayerNorm");
}

#[test]
fn glu_fuses_two_gemms_elementwise() {
    let g = extended::glu(128, 256, 256);
    let p = check(&g, Arch::Ampere, 3, 5e-2);
    assert_eq!(p.kernels.len(), 1, "CI-only pattern fuses whole");
    // Both policies that cannot fuse across GEMMs split it.
    let blade = Engine::BladeDisc.compile(Arch::Ampere, &g).unwrap();
    assert!(blade.kernels.len() >= 3);
}

#[test]
fn nll_chained_reductions_compile_and_match() {
    let g = extended::log_softmax_nll(64, 512);
    let p = check(&g, Arch::Volta, 4, 1e-3);
    // The log(sum(exp(x - max))) chain defeats UTA (log is not a
    // multiplicative factor), so either the row fits on chip in one
    // kernel or the region partitions — both are correct; assert
    // whichever was chosen still used spatial slicing.
    for k in &p.kernels {
        assert!(k.schedule.grid() >= 1);
    }
}

#[test]
fn extended_workloads_profile_cleanly() {
    for g in [
        extended::conv2d_im2col(4, 16, 3, 32, 64),
        extended::batchnorm_inference(2048, 1024),
        extended::glu(1024, 512, 512),
        extended::log_softmax_nll(1024, 2048),
    ] {
        let fused = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
        let eager = Engine::PyTorch.compile(Arch::Ampere, &g).unwrap();
        let fr = fused.profile(1);
        let er = eager.profile(1);
        assert!(fr.time_us > 0.0);
        assert!(
            fr.stats.dram_total_bytes() <= er.stats.dram_total_bytes(),
            "{}: fusion must not add traffic",
            g.name()
        );
    }
}

#[test]
fn streaming_rewrite_composes_with_batchnorm() {
    // The Var = E[x²]−E[x]² rewrite fires on the column-direction
    // variance too.
    let g = extended::batchnorm_inference(1024, 64);
    let r = spacefusion::rewrite::streaming_variance(&g).expect("pattern");
    let b = g.random_bindings(5);
    let a = g.execute(&b).unwrap();
    let c = r.execute(&b).unwrap();
    assert!(a[0].allclose(&c[0], 1e-2));
    let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
        .compile(&r)
        .unwrap();
    let got = program.execute(&b).unwrap();
    assert!(got[0].allclose(&a[0], 1e-2));
}

#[test]
fn f16_storage_keeps_uta_error_small() {
    // Quantize attention inputs through half precision and check the
    // fused (UTA) kernel tracks the exact reference within f16 noise.
    let g = sf_models::subgraphs::mha(1, 1, 512, 64);
    let p = Engine::SpaceFusion.compile(Arch::Ampere, &g).unwrap();
    let mut b = g.random_bindings(6);
    for t in b.values_mut() {
        *t = t.quantized();
    }
    let expect = g.execute(&b).unwrap();
    let got = p.execute(&b).unwrap();
    let diff = got[0].max_abs_diff(&expect[0]).unwrap();
    assert!(diff < 1e-3, "UTA under f16 inputs drifted by {diff}");
}
