#!/usr/bin/env bash
# Tier-1 verification gate plus lints.
#
# Usage: scripts/verify.sh
# Everything resolves offline: the workspace has no registry
# dependencies (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
