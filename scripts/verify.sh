#!/usr/bin/env bash
# Tier-1 verification gate plus lints.
#
# Usage: scripts/verify.sh
# Everything resolves offline: the workspace has no registry
# dependencies (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> exec_bench perf smoke + zoo determinism at --exec-threads max"
# --gate enforces both the 10% aggregate tolerance and the per-workload
# 0.95x floor; the bench itself asserts bitwise serial/parallel/batched
# equality over the zoo before timing anything.
./target/release/exec_bench --quick --gate --exec-threads max --out target/BENCH_exec.json

echo "==> sfc lint (golden-clean gate over examples/graphs + tests/corpus)"
# --deny-warnings promotes RACE505 (unprovable write footprint) to an
# error, so this sweep doubles as the race-prover gate: every checked-in
# graph must compile to kernels with statically proven disjoint writes.
for f in examples/graphs/*.sfg tests/corpus/*.sfg; do
    for arch in volta ampere hopper; do
        ./target/release/sfc lint "$f" --arch "$arch" --deny-warnings \
            || { echo "verify: FAIL — $f is not lint-clean on $arch"; exit 1; }
    done
done

echo "==> split-K selection gate (decode attention auto-splits at arch defaults)"
# The tuner must pick a split-K schedule for the decode-shaped zoo
# workload on its own (no pinned blocks, default options) — the lint
# sweep above already proves such schedules pass SLC104 + RACE on every
# arch; this asserts the cost model still *chooses* one where it wins.
./target/release/sfc compile examples/graphs/mha_decode.sfg --arch ampere \
    | grep -q "split-K" \
    || { echo "verify: FAIL — mha_decode no longer compiles to a split-K schedule"; exit 1; }

echo "==> sfc fuzz smoke (50 seeds, differential oracle + verifier)"
./target/release/sfc fuzz --seeds 50 --seed 42 > target/FUZZ_smoke.txt \
    || { echo "verify: FAIL — fuzz smoke found a divergence or verifier error"; \
         cat target/FUZZ_smoke.txt; exit 1; }

echo "==> sfc fuzz determinism (same seeds -> identical report)"
./target/release/sfc fuzz --seeds 50 --seed 42 > target/FUZZ_smoke2.txt
diff target/FUZZ_smoke.txt target/FUZZ_smoke2.txt \
    || { echo "verify: FAIL — fuzz report is not deterministic"; exit 1; }

echo "==> sfc faultsim smoke (25 seeds x 2 plans = 50 fault plans, 0 aborts)"
./target/release/sfc faultsim --seeds 25 --faults 2 > target/FAULTSIM_smoke.txt \
    || { echo "verify: FAIL — faultsim found an abort or a non-bit-exact degradation"; \
         cat target/FAULTSIM_smoke.txt; exit 1; }
grep -q "0 abort(s)" target/FAULTSIM_smoke.txt \
    || { echo "verify: FAIL — faultsim report missing its zero-abort line"; exit 1; }

echo "==> sfc faultsim determinism (same seeds -> identical report)"
./target/release/sfc faultsim --seeds 25 --faults 2 > target/FAULTSIM_smoke2.txt
diff target/FAULTSIM_smoke.txt target/FAULTSIM_smoke2.txt \
    || { echo "verify: FAIL — faultsim report is not deterministic"; exit 1; }

echo "==> no-new-unwrap gate (pipeline/ and resilience/ deny unwrap/expect)"
for m in pipeline resilience; do
    grep -B1 "^pub mod $m;" crates/core/src/lib.rs \
        | grep -q "deny(clippy::unwrap_used, clippy::expect_used)" \
        || { echo "verify: FAIL — lib.rs lost the unwrap/expect deny gate on '$m'"; exit 1; }
done

echo "==> unsafe-docs gate (codegen/ and view deny undocumented unsafe)"
grep -B1 "^pub mod codegen;" crates/core/src/lib.rs \
    | grep -q "deny(clippy::undocumented_unsafe_blocks)" \
    || { echo "verify: FAIL — core lib.rs lost the undocumented-unsafe deny gate on 'codegen'"; exit 1; }
grep -B1 "^pub mod view;" crates/tensor/src/lib.rs \
    | grep -q "deny(clippy::undocumented_unsafe_blocks)" \
    || { echo "verify: FAIL — tensor lib.rs lost the undocumented-unsafe deny gate on 'view'"; exit 1; }

echo "==> corpus freshness (seed_corpus regenerates what is checked in)"
cargo run -q --release --example seed_corpus > /dev/null
git diff --exit-code -- tests/corpus \
    || { echo "verify: FAIL — tests/corpus is stale; run 'cargo run --example seed_corpus'"; exit 1; }

echo "verify: OK"
