#!/usr/bin/env bash
# Tier-1 verification gate plus lints.
#
# Usage: scripts/verify.sh
# Everything resolves offline: the workspace has no registry
# dependencies (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> exec_bench perf smoke + zoo determinism at --exec-threads max"
# --gate enforces both the 10% aggregate tolerance and the per-workload
# 0.95x floor; the bench itself asserts bitwise serial/parallel/batched
# equality over the zoo before timing anything.
./target/release/exec_bench --quick --gate --exec-threads max --out target/BENCH_exec.json

echo "==> sfc lint (golden-clean gate over examples/graphs + tests/corpus)"
# --deny-warnings promotes RACE505 (unprovable write footprint) to an
# error, so this sweep doubles as the race-prover gate: every checked-in
# graph must compile to kernels with statically proven disjoint writes.
for f in examples/graphs/*.sfg tests/corpus/*.sfg; do
    for arch in volta ampere hopper; do
        ./target/release/sfc lint "$f" --arch "$arch" --deny-warnings \
            || { echo "verify: FAIL — $f is not lint-clean on $arch"; exit 1; }
    done
done

echo "==> split-K selection gate (decode attention auto-splits at arch defaults)"
# The tuner must pick a split-K schedule for the decode-shaped zoo
# workload on its own (no pinned blocks, default options) — the lint
# sweep above already proves such schedules pass SLC104 + RACE on every
# arch; this asserts the cost model still *chooses* one where it wins.
./target/release/sfc compile examples/graphs/mha_decode.sfg --arch ampere \
    | grep -q "split-K" \
    || { echo "verify: FAIL — mha_decode no longer compiles to a split-K schedule"; exit 1; }

echo "==> sfc fuzz smoke (50 seeds, differential oracle + verifier)"
./target/release/sfc fuzz --seeds 50 --seed 42 > target/FUZZ_smoke.txt \
    || { echo "verify: FAIL — fuzz smoke found a divergence or verifier error"; \
         cat target/FUZZ_smoke.txt; exit 1; }

echo "==> sfc fuzz determinism (same seeds -> identical report)"
./target/release/sfc fuzz --seeds 50 --seed 42 > target/FUZZ_smoke2.txt
diff target/FUZZ_smoke.txt target/FUZZ_smoke2.txt \
    || { echo "verify: FAIL — fuzz report is not deterministic"; exit 1; }

echo "==> sfc faultsim smoke (25 seeds x 2 plans = 50 fault plans, 0 aborts)"
./target/release/sfc faultsim --seeds 25 --faults 2 > target/FAULTSIM_smoke.txt \
    || { echo "verify: FAIL — faultsim found an abort or a non-bit-exact degradation"; \
         cat target/FAULTSIM_smoke.txt; exit 1; }
grep -q "0 abort(s)" target/FAULTSIM_smoke.txt \
    || { echo "verify: FAIL — faultsim report missing its zero-abort line"; exit 1; }

echo "==> sfc faultsim determinism (same seeds -> identical report)"
./target/release/sfc faultsim --seeds 25 --faults 2 > target/FAULTSIM_smoke2.txt
diff target/FAULTSIM_smoke.txt target/FAULTSIM_smoke2.txt \
    || { echo "verify: FAIL — faultsim report is not deterministic"; exit 1; }

echo "==> sfc serve smoke (daemon + loadgen determinism + warm restart)"
# Two cold loadgen runs must produce byte-identical digests; a restart
# must warm-start the schedule cache from the snapshot (warm_loaded >= 1,
# zero schedule misses); and low load must never shed.
SERVE_SOCK=target/serve-smoke.sock
SERVE_SNAP=target/serve-smoke.sfcache
rm -f "$SERVE_SOCK" "$SERVE_SNAP"
./target/release/sfc serve "$SERVE_SOCK" --workers 4 --snapshot "$SERVE_SNAP" \
    > target/SERVE_daemon1.txt 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "verify: FAIL — serve daemon never bound its socket"; exit 1; }
./target/release/loadgen --socket "$SERVE_SOCK" --seeds 50 --requests 8 \
    --clients 1,4,16 --out target/BENCH_serve.json --digest target/SERVE_digest1.txt \
    > target/SERVE_run1.txt \
    || { echo "verify: FAIL — loadgen run 1 failed"; cat target/SERVE_run1.txt; exit 1; }
./target/release/loadgen --socket "$SERVE_SOCK" --seeds 50 --requests 8 \
    --clients 1,4,16 --digest target/SERVE_digest2.txt > target/SERVE_run2.txt \
    || { echo "verify: FAIL — loadgen run 2 failed"; cat target/SERVE_run2.txt; exit 1; }
diff target/SERVE_digest1.txt target/SERVE_digest2.txt \
    || { echo "verify: FAIL — serve responses are not deterministic across runs"; exit 1; }
./target/release/loadgen --socket "$SERVE_SOCK" --shutdown > /dev/null
wait "$SERVE_PID"

echo "==> sfc serve warm restart (snapshot reload, zero schedule misses)"
./target/release/sfc serve "$SERVE_SOCK" --workers 4 --snapshot "$SERVE_SNAP" \
    > target/SERVE_daemon2.txt 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
./target/release/loadgen --socket "$SERVE_SOCK" --seeds 50 --requests 8 \
    --clients 1,4,16 --digest target/SERVE_digest3.txt > target/SERVE_run3.txt \
    || { echo "verify: FAIL — loadgen warm run failed"; cat target/SERVE_run3.txt; exit 1; }
diff target/SERVE_digest1.txt target/SERVE_digest3.txt \
    || { echo "verify: FAIL — serve responses changed across a daemon restart"; exit 1; }
grep -Eq "^warm_loaded: [1-9]" target/SERVE_run3.txt \
    || { echo "verify: FAIL — restart did not warm-start from the snapshot"; \
         cat target/SERVE_run3.txt; exit 1; }
grep -q "^schedule_misses: 0$" target/SERVE_run3.txt \
    || { echo "verify: FAIL — warm restart recomputed schedules"; \
         cat target/SERVE_run3.txt; exit 1; }
for run in target/SERVE_run1.txt target/SERVE_run2.txt target/SERVE_run3.txt; do
    grep -q "^sheds: 0$" "$run" \
        || { echo "verify: FAIL — daemon shed requests at low load ($run)"; exit 1; }
done
./target/release/loadgen --socket "$SERVE_SOCK" --shutdown > /dev/null
wait "$SERVE_PID"
rm -f "$SERVE_SOCK" "$SERVE_SNAP"

echo "==> sfc chaos smoke (25 seeds x all five serve fault kinds, 0 hangs / 0 aborts)"
CHAOS_SOCK=target/chaos-smoke.sock
rm -f "$CHAOS_SOCK"
./target/release/sfc chaos "$CHAOS_SOCK" --seeds 25 > target/CHAOS_smoke.txt \
    || { echo "verify: FAIL — chaos campaign was not clean"; \
         cat target/CHAOS_smoke.txt; exit 1; }
grep -q "0 hang(s)" target/CHAOS_smoke.txt \
    || { echo "verify: FAIL — chaos report missing its zero-hang line"; exit 1; }
grep -q "0 abort(s)" target/CHAOS_smoke.txt \
    || { echo "verify: FAIL — chaos report missing its zero-abort line"; exit 1; }

echo "==> sfc chaos determinism (same seeds -> identical report)"
./target/release/sfc chaos "$CHAOS_SOCK" --seeds 25 > target/CHAOS_smoke2.txt
diff target/CHAOS_smoke.txt target/CHAOS_smoke2.txt \
    || { echo "verify: FAIL — chaos report is not deterministic"; exit 1; }

echo "==> no-new-unwrap gate (pipeline/, resilience/, serve/, cli deny unwrap/expect)"
for m in pipeline resilience serve; do
    grep -B1 "^pub mod $m;" crates/core/src/lib.rs \
        | grep -q "deny(clippy::unwrap_used, clippy::expect_used)" \
        || { echo "verify: FAIL — lib.rs lost the unwrap/expect deny gate on '$m'"; exit 1; }
done
# The serve gate must keep covering the chaos submodule (the deny
# attribute on `pub mod serve;` applies to the whole subtree).
grep -q "^pub mod chaos;" crates/core/src/serve/mod.rs \
    || { echo "verify: FAIL — serve/mod.rs lost the chaos module"; exit 1; }
for m in driver printer; do
    grep -B1 "^pub mod $m;" crates/cli/src/lib.rs \
        | grep -q "deny(clippy::unwrap_used, clippy::expect_used)" \
        || { echo "verify: FAIL — cli lib.rs lost the unwrap/expect deny gate on '$m'"; exit 1; }
done

echo "==> unsafe-docs gate (codegen/ and view deny undocumented unsafe)"
grep -B1 "^pub mod codegen;" crates/core/src/lib.rs \
    | grep -q "deny(clippy::undocumented_unsafe_blocks)" \
    || { echo "verify: FAIL — core lib.rs lost the undocumented-unsafe deny gate on 'codegen'"; exit 1; }
grep -B1 "^pub mod view;" crates/tensor/src/lib.rs \
    | grep -q "deny(clippy::undocumented_unsafe_blocks)" \
    || { echo "verify: FAIL — tensor lib.rs lost the undocumented-unsafe deny gate on 'view'"; exit 1; }

echo "==> corpus freshness (seed_corpus regenerates what is checked in)"
cargo run -q --release --example seed_corpus > /dev/null
git diff --exit-code -- tests/corpus \
    || { echo "verify: FAIL — tests/corpus is stale; run 'cargo run --example seed_corpus'"; exit 1; }

echo "verify: OK"
