//! Umbrella crate for the SpaceFusion reproduction.
//!
//! Re-exports the workspace crates under one roof for the examples and
//! the cross-crate integration tests in `/tests`:
//!
//! * [`tensor`] — shapes, dtypes, CPU reference operators.
//! * [`ir`] — the operator dataflow graph.
//! * [`gpu`] — the deterministic GPU performance model.
//! * [`spacefusion`] — the compiler: SMG, slicers, scheduler, codegen.
//! * [`baselines`] — hand-tuned kernels and engine rules.
//! * [`models`] — Fig. 10 subgraphs and the Transformer zoo.

pub use sf_baselines as baselines;
pub use sf_gpu_sim as gpu;
pub use sf_ir as ir;
pub use sf_models as models;
pub use sf_tensor as tensor;
pub use spacefusion;
