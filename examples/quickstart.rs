//! Quickstart: build a tensor program, fuse it with SpaceFusion, verify
//! the numerics against the unfused reference, and inspect the simulated
//! performance.
//!
//! Run with: `cargo run --release --example quickstart`

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::compiler::{Compiler, FusionPolicy};

fn main() {
    // 1. Describe a LayerNorm subprogram as an operator dataflow graph —
    //    the nine-operator memory-intensive chain of the paper's
    //    Fig. 10(c). In eager PyTorch each of these primitives is its own
    //    kernel.
    let (m, n) = (2048usize, 2048usize);
    let mut g = Graph::new("layernorm", DType::F16);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("w", Shape::new(vec![1, n]));
    let b = g.weight("b", Shape::new(vec![1, n]));
    let mean = g.reduce(ReduceOp::Mean, x, 1).unwrap();
    let centered = g.binary(BinaryOp::Sub, x, mean).unwrap();
    let sq = g.unary(UnaryOp::Sqr, centered).unwrap();
    let var = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
    let veps = g.scalar(BinaryOp::Add, var, 1e-5).unwrap();
    let std = g.unary(UnaryOp::Sqrt, veps).unwrap();
    let norm = g.binary(BinaryOp::Div, centered, std).unwrap();
    let scaled = g.binary(BinaryOp::Mul, norm, w).unwrap();
    let y = g.binary(BinaryOp::Add, scaled, b).unwrap();
    g.mark_output(y);

    // 2. Compile for an A100 with full SpaceFusion.
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion);
    let fused = compiler.compile(&g).expect("compile");
    println!(
        "SpaceFusion fused {} operators into {} kernel(s)",
        g.ops().len(),
        fused.kernels.len()
    );
    let schedule = &fused.kernels[0].schedule;
    println!(
        "  schedule: {} rows per block, {} KiB shared memory per block",
        schedule.spatial[0].1,
        schedule.smem_per_block(&fused.kernels[0].graph) >> 10,
    );

    // 3. Verify numerics against the unfused reference execution.
    let bindings = g.random_bindings(42);
    let reference = g.execute(&bindings).expect("reference");
    let result = fused.execute(&bindings).expect("fused execute");
    let diff = result[0].max_abs_diff(&reference[0]).unwrap();
    println!("  max |fused - reference| = {diff:.2e}");
    assert!(diff < 1e-4, "fused kernel must match the reference");

    // 4. Compare simulated performance against the eager baseline
    //    (one kernel per primitive, intermediates in global memory).
    let unfused = Compiler::with_policy(Arch::Ampere, FusionPolicy::Unfused)
        .compile(&g)
        .expect("unfused compile");
    let fr = fused.profile(1);
    let ur = unfused.profile(1);
    println!(
        "  fused:   {:>8.1} µs, {:>7.1} MiB DRAM traffic, 1 launch",
        fr.time_us,
        fr.stats.dram_total_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "  unfused: {:>8.1} µs, {:>7.1} MiB DRAM traffic, {} launches",
        ur.time_us,
        ur.stats.dram_total_bytes() as f64 / (1 << 20) as f64,
        ur.kernels.len()
    );
    println!("  speedup: {:.2}x", ur.time_us / fr.time_us);
}
