//! Schedule explorer: walk through what the auto-scheduler sees.
//!
//! Prints, for a fused MHA region: the SMG statistics, the spatially
//! sliceable dimensions (Table 3 analysis), the temporal plan with its
//! derived update functions, the enumerated feasible configurations with
//! their resource footprints and estimated times, and the tuner's pick —
//! across all three architectures.
//!
//! Run with: `cargo run --release --example schedule_explorer`

use sf_gpu_sim::{occupancy, Arch};
use sf_models::subgraphs;
use spacefusion::codegen::{estimate_cost, KernelProgram};
use spacefusion::sched::{resource_aware_slicing, SlicingOptions};
use spacefusion::slicer::eligible_spatial_dims;
use spacefusion::smg::build_smg;
use spacefusion::tune::tune;

fn main() {
    let g = subgraphs::mha(32, 16, 1024, 64);
    println!("workload: {} ({} instances)", g.name(), g.instances);

    let smg = build_smg(&g).expect("smg");
    println!(
        "SMG: {} spaces, {} mappings ({} One-to-All, {} All-to-One), {} dims",
        smg.spaces.len(),
        smg.mappings.len(),
        smg.o2a_count(),
        smg.a2o_count(),
        smg.dims.len()
    );

    let spatial = eligible_spatial_dims(&g, &smg);
    println!(
        "spatially sliceable dims: {:?} (of {})",
        spatial.iter().map(|d| smg.extent(*d)).collect::<Vec<_>>(),
        smg.dims.len()
    );

    for arch in Arch::all() {
        let cfg = arch.config();
        let schedules =
            resource_aware_slicing(&g, &smg, &cfg, &SlicingOptions::default()).expect("slicing");
        println!(
            "\n== {arch}: {} feasible configurations ==",
            schedules.len()
        );
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>8} {:>12}",
            "spatial", "temporal", "smem KiB", "regs KiB", "grid", "est. µs"
        );
        let candidates: Vec<KernelProgram> = schedules
            .into_iter()
            .map(|s| KernelProgram::new(g.name().to_string(), g.clone(), s))
            .collect();
        for kp in candidates.iter().take(12) {
            let s = &kp.schedule;
            let cost = estimate_cost(kp, g.instances as u64);
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>8} {:>12.1}",
                s.spatial[0].1,
                s.temporal
                    .as_ref()
                    .map(|t| t.block.to_string())
                    .unwrap_or("-".into()),
                s.smem_per_block(&kp.graph) >> 10,
                s.regs_per_block(&kp.graph) >> 10,
                s.grid() * g.instances as u64,
                cfg.kernel_time_us(&cost),
            );
        }
        if candidates.len() > 12 {
            println!("   ... and {} more", candidates.len() - 12);
        }
        let Some(pick) = tune(&candidates, &cfg, g.instances as u64, 0.25) else {
            eprintln!("{arch}: no feasible candidates to tune — skipping");
            continue;
        };
        let best_kp = &candidates[pick.best];
        let best = &best_kp.schedule;
        println!(
            "tuner pick: spatial {} / temporal {:?} -> {:.1} µs ({} evaluated, {} early-quit)",
            best.spatial[0].1,
            best.temporal.as_ref().map(|t| t.block),
            pick.best_us,
            pick.evaluated,
            pick.pruned
        );
        let occ = occupancy(
            &cfg,
            best.grid() * g.instances as u64,
            best.smem_per_block(&best_kp.graph),
            best.regs_per_block(&best_kp.graph),
        );
        println!(
            "occupancy: {} block(s)/SM, {} concurrent, {} wave(s), tail utilization {:.0}%",
            occ.blocks_per_sm,
            occ.concurrent_blocks,
            occ.waves,
            occ.tail_utilization * 100.0
        );
    }
}
