//! Regenerates the checked-in regression corpus under `tests/corpus/`.
//!
//! The fuzz campaigns recorded in EXPERIMENTS.md found no divergence, so
//! the corpus holds *passing* regression graphs rather than minimized
//! failures: the generated seeds that exercise each high-risk motif
//! (attention, layernorm, rmsnorm, multi-output, multi-instance) plus
//! the shrunk cases the original proptest suite had recorded. The
//! replay test (`crates/core/tests/fuzz_corpus.rs`) re-runs the full
//! oracle on every entry, so any future regression on these graphs is
//! caught by plain `cargo test`.
//!
//! Run with `cargo run --example seed_corpus` from the workspace root.

use sf_fuzz::{generate, GenConfig, GraphSpec, Step};
use sf_ir::dsl::print_graph;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use std::path::Path;

fn render_passing(spec: &GraphSpec, note: &str) -> String {
    let graph = spec.build().expect("corpus spec must build");
    format!(
        "# sf-fuzz regression corpus (passing)\n# {}\n# {}\n{}",
        spec.describe(),
        note,
        print_graph(&graph)
    )
}

fn render_handmade(graph: &Graph, note: &str) -> String {
    format!(
        "# sf-fuzz regression corpus (passing)\n# {}\n{}",
        note,
        print_graph(graph)
    )
}

/// First generated seed whose recipe satisfies `wanted`.
fn first_seed(cfg: &GenConfig, wanted: impl Fn(&GraphSpec) -> bool) -> GraphSpec {
    (0..10_000)
        .map(|seed| generate(seed, cfg))
        .find(wanted)
        .expect("no seed below 10000 matched the motif")
}

/// `m=2, n=2, GemmWeight(3) + CombineInput(Add)`: recorded by proptest —
/// the combine is infeasible after the GEMM widens the row, leaving a
/// lone square-ish GEMM that once tripped the SMG builder.
fn proptest_lone_gemm() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 2]));
    let w = g.weight("w0", Shape::new(vec![2, 8]));
    let mm = g.gemm(x, w, false).unwrap();
    g.mark_output(mm);
    g
}

/// `GemmWeight(3) + Reduce(Sum, 1) + CombineInput(Add)`: the reduction
/// restores broadcast compatibility with the root input.
fn proptest_gemm_reduce_combine() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 2]));
    let w = g.weight("w0", Shape::new(vec![2, 8]));
    let mm = g.gemm(x, w, false).unwrap();
    let r = g.reduce(ReduceOp::Sum, mm, 1).unwrap();
    let c = g.binary(BinaryOp::Add, x, r).unwrap();
    g.mark_output(c);
    g
}

/// `GemmWeight(4) + Unary(Relu) + CombineInput(Add)` at `m=2, n=16`:
/// width-preserving GEMM keeps the combine feasible.
fn proptest_gemm_relu_combine() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 16]));
    let w = g.weight("w0", Shape::new(vec![16, 16]));
    let mm = g.gemm(x, w, false).unwrap();
    let u = g.unary(UnaryOp::Relu, mm).unwrap();
    let c = g.binary(BinaryOp::Add, x, u).unwrap();
    g.mark_output(c);
    g
}

/// Minimized from fuzz seed 101 (hopper campaign): a softmax chain
/// feeding a GEMM whose N extent dominates the temporal priority order.
/// Slicing N would strand the whole softmax chain outside the loop
/// while the sliced row-sum needs it in phase 1 — the slicer must
/// abandon the dimension (`SfError::UpdatePath`) instead of emitting a
/// schedule that reads values never placed (MEM302).
fn fuzz_softmax_gemm_reduce() -> Graph {
    let mut g = Graph::new("random", DType::F32);
    let x = g.input("x", Shape::new(vec![2, 2]));
    let w = g.weight("w0", Shape::new(vec![2, 32]));
    let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
    let s = g.binary(BinaryOp::Sub, x, m).unwrap();
    let e = g.unary(UnaryOp::Exp, s).unwrap();
    let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, z).unwrap();
    let mm = g.gemm(d, w, false).unwrap();
    let sc = g.scalar(BinaryOp::Mul, mm, 1.0 / (2f32).sqrt()).unwrap();
    let r = g.reduce(ReduceOp::Sum, sc, 1).unwrap();
    g.mark_output(r);
    g
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cfg = GenConfig::default();

    let entries: Vec<(&str, String)> = vec![
        (
            "gen_attention",
            render_passing(
                &first_seed(&cfg, |s| {
                    s.steps
                        .iter()
                        .any(|st| matches!(st, Step::Attention { .. }))
                }),
                "first default-config seed containing an attention motif \
                 (temporal slicing + online softmax)",
            ),
        ),
        (
            "gen_layernorm",
            render_passing(
                &first_seed(&cfg, |s| s.steps.contains(&Step::LayerNorm)),
                "first default-config seed containing a layernorm motif \
                 (mean/variance reduction pair)",
            ),
        ),
        (
            "gen_rmsnorm",
            render_passing(
                &first_seed(&cfg, |s| s.steps.contains(&Step::RmsNorm)),
                "first default-config seed containing an rmsnorm motif",
            ),
        ),
        (
            "gen_multi_output",
            render_passing(
                &first_seed(&cfg, |s| s.multi_output && s.steps.len() >= 4),
                "first default-config seed marking a midpoint intermediate \
                 as a second program output",
            ),
        ),
        (
            "gen_multi_instance",
            render_passing(
                &first_seed(&cfg, |s| s.instances > 1 && s.steps.len() >= 3),
                "first default-config seed with a dependency-free instance \
                 multiplier (parallel block scheduling)",
            ),
        ),
        (
            "gen_deep_reduce",
            render_passing(
                &first_seed(&cfg, |s| {
                    s.steps
                        .iter()
                        .any(|st| matches!(st, Step::DeepReduce { .. }))
                }),
                "first default-config seed containing a deep-K reduction \
                 (split-K partial accumulators + combine fold)",
            ),
        ),
        (
            "gen_decode_attention",
            render_passing(
                &first_seed(&cfg, |s| {
                    s.steps
                        .iter()
                        .any(|st| matches!(st, Step::DecodeAttention { .. }))
                }),
                "first default-config seed containing a decode-shaped \
                 attention motif (single query row, split-K over KV)",
            ),
        ),
        (
            "fuzz_softmax_gemm_reduce",
            render_handmade(
                &fuzz_softmax_gemm_reduce(),
                "minimized from fuzz seed 101: softmax feeding a GEMM whose \
                 N extent tops the temporal priority — slicing it would \
                 strand the softmax outside the loop, so the slicer must \
                 abandon the dimension and stay serial",
            ),
        ),
        (
            "proptest_lone_gemm",
            render_handmade(
                &proptest_lone_gemm(),
                "recorded by the original proptest run: lone f16 GEMM whose \
                 contraction extent aliases an output extent",
            ),
        ),
        (
            "proptest_gemm_reduce_combine",
            render_handmade(
                &proptest_gemm_reduce_combine(),
                "recorded by the original proptest run: GEMM -> row-sum -> \
                 combine with the root input",
            ),
        ),
        (
            "proptest_gemm_relu_combine",
            render_handmade(
                &proptest_gemm_relu_combine(),
                "recorded by the original proptest run: width-preserving \
                 GEMM -> relu -> combine with the root input",
            ),
        ),
    ];

    for (name, text) in entries {
        let path = sf_fuzz::corpus::write_entry(&dir, name, &text).expect("write corpus entry");
        println!("wrote {}", path.display());
    }
}
