//! Fusing a custom operator composition.
//!
//! SpaceFusion is not limited to the patterns it was evaluated on: any
//! composition of GEMMs, reductions, broadcasts and element-wise math can
//! be analyzed through the SMG. This example builds an attention variant
//! the library has no special case for — masked attention with a
//! temperature and a gated output — and shows that the scheduler still
//! finds a single-kernel fusion with a correct online-softmax derivation.
//!
//! Run with: `cargo run --release --example custom_operator`

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::compiler::{Compiler, FusionPolicy};

fn main() {
    let (m, l, d) = (256usize, 2048usize, 64usize);

    // A custom fused region: temperature-scaled masked attention whose
    // output is gated by a sigmoid of a second projection.
    let mut g = Graph::new("gated_masked_attention", DType::F16);
    let q = g.input("q", Shape::new(vec![m, d]));
    let k = g.input("k", Shape::new(vec![l, d]));
    let v = g.input("v", Shape::new(vec![l, d]));
    let mask = g.input("mask", Shape::new(vec![m, l])); // additive mask.
    let gate_w = g.weight("gate_w", Shape::new(vec![d, d]));

    let qk = g.gemm(q, k, true).unwrap();
    let scaled = g
        .scalar(BinaryOp::Mul, qk, 1.0 / (d as f32).sqrt())
        .unwrap();
    let tempered = g.scalar(BinaryOp::Div, scaled, 0.8).unwrap(); // temperature.
    let masked = g.binary(BinaryOp::Add, tempered, mask).unwrap();
    let mx = g.reduce(ReduceOp::Max, masked, 1).unwrap();
    let sub = g.binary(BinaryOp::Sub, masked, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, sub).unwrap();
    let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let p = g.binary(BinaryOp::Div, e, s).unwrap();
    let ctx = g.gemm(p, v, false).unwrap();

    // Gate: sigmoid(q · Wg) ⊙ context.
    let gate = g.gemm(q, gate_w, false).unwrap();
    let gate = g.unary(UnaryOp::Sigmoid, gate).unwrap();
    let out = g.binary(BinaryOp::Mul, ctx, gate).unwrap();
    g.mark_output(out);

    println!(
        "custom region: {} operators, {} tensors",
        g.ops().len(),
        g.values().len()
    );

    // Compile and inspect.
    let compiler = Compiler::with_policy(Arch::Hopper, FusionPolicy::SpaceFusion);
    let program = compiler.compile(&g).expect("compile");
    println!("compiled into {} kernel(s):", program.kernels.len());
    for kp in &program.kernels {
        println!(
            "  {:<36} ops={} grid={} smem={} KiB temporal={:?}",
            kp.name,
            kp.graph.ops().len(),
            kp.schedule.grid(),
            kp.schedule.smem_per_block(&kp.graph) >> 10,
            kp.schedule.temporal.as_ref().map(|t| t.block),
        );
    }

    // Verify against the reference execution.
    let bindings = g.random_bindings(123);
    let expect = g.execute(&bindings).expect("reference");
    let got = program.execute(&bindings).expect("fused");
    let diff = got[0].max_abs_diff(&expect[0]).unwrap();
    println!("max |fused − reference| = {diff:.2e}");
    assert!(diff < 1e-2, "fusion must preserve numerics");

    // And show the SMG for the curious (Graphviz DOT on stdout).
    if std::env::args().any(|a| a == "--dot") {
        let smg = spacefusion::smg::build_smg(&g).unwrap();
        println!("\n{}", smg.to_dot(&g));
    } else {
        println!("(pass --dot to print the Space-Mapping Graph in Graphviz format)");
    }
}
