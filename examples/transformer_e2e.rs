//! End-to-end Transformer inference across engines.
//!
//! Compiles every distinct subprogram of a BERT-base forward pass under
//! each engine's composition rules and reports the simulated end-to-end
//! time — a miniature of the paper's Fig. 14.
//!
//! Run with: `cargo run --release --example transformer_e2e`

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_models::bert;

fn main() {
    let arch = Arch::Ampere;
    let model = bert();
    let (batch, seq) = (8usize, 256usize);
    println!(
        "BERT-base ({} layers, hidden {}, {} heads), batch {batch}, seq {seq}, on {arch}",
        model.layers, model.hidden, model.heads
    );
    println!(
        "forward pass: {:.1} GFLOPs\n",
        model.forward_flops(batch, seq) as f64 / 1e9
    );

    println!("{:<14} {:>12} {:>10}", "engine", "time (µs)", "speedup");
    let mut py_time = None;
    for engine in [
        Engine::PyTorch,
        Engine::BladeDisc,
        Engine::Kernl,
        Engine::TensorRt,
        Engine::SpaceFusion,
    ] {
        if !engine.supports(arch) {
            println!("{:<14} {:>12}", engine.name(), "n/a");
            continue;
        }
        let mut total = 0.0;
        for w in model.subprograms(batch, seq) {
            let program = engine.compile(arch, &w.graph).expect("compile");
            total += program.profile(2).time_us * w.count as f64;
        }
        let base = *py_time.get_or_insert(total);
        println!(
            "{:<14} {:>12.1} {:>9.2}x",
            engine.name(),
            total,
            base / total
        );
    }

    // Show where the time goes for SpaceFusion.
    println!("\nSpaceFusion per-subprogram breakdown:");
    for w in model.subprograms(batch, seq) {
        let program = Engine::SpaceFusion
            .compile(arch, &w.graph)
            .expect("compile");
        let t = program.profile(2).time_us;
        println!(
            "  {:<40} {:>4} kernel(s) × {:>3} calls = {:>10.1} µs",
            w.graph.name(),
            program.kernels.len(),
            w.count,
            t * w.count as f64
        );
    }
}
