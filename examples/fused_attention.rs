//! Fused multi-head attention: SpaceFusion derives the FlashAttention
//! online-softmax schedule mechanically from the SMG, with no
//! attention-specific code.
//!
//! This example shows the derived update functions (paper Fig. 8(e)),
//! verifies numerics, and compares against the hand-tuned FlashAttention
//! baselines across sequence lengths.
//!
//! Run with: `cargo run --release --example fused_attention`

use sf_baselines::{flash_attention_v2, Engine};
use sf_gpu_sim::Arch;
use sf_models::subgraphs;
use spacefusion::sched::OpRole;
use spacefusion::slicer::AggKind;

fn main() {
    let arch = Arch::Ampere;
    let (batch, heads, head_dim) = (8, 16, 64);

    // Compile one long-sequence attention and inspect the schedule.
    let g = subgraphs::mha(batch, heads, 4096, head_dim);
    let fused = Engine::SpaceFusion.compile(arch, &g).expect("compile");
    assert_eq!(fused.kernels.len(), 1, "MHA fuses into a single kernel");
    let kp = &fused.kernels[0];
    let temporal = kp.schedule.temporal.as_ref().expect("temporally sliced");
    println!("derived schedule for MHA(seq=4096):");
    println!(
        "  query block {} x key/value tiles of {} (single pass: {})",
        kp.schedule.spatial[0].1, temporal.block, !temporal.plan.two_phase
    );
    println!("  sliced reductions and their aggregation strategies:");
    for s in &temporal.plan.sliced {
        let name = kp.graph.ops()[s.op.0].kind.name();
        match &s.agg {
            AggKind::Simple => println!("    {name:<14} Simple Aggregate (running max)"),
            AggKind::Uta(factors) => {
                let desc: Vec<String> = factors
                    .iter()
                    .map(|f| {
                        let dep = kp.graph.ops()[f.dep.0].kind.name();
                        format!("{:?}({dep})", f.form)
                    })
                    .collect();
                println!("    {name:<14} Update-then-Aggregate: {}", desc.join(" · "));
            }
        }
    }
    let reductions = kp
        .roles
        .iter()
        .filter(|r| matches!(r, OpRole::SlicedReduction(_)))
        .count();
    println!("  {reductions} reductions stream through on-chip accumulators");

    // Verify numerics at a testable size.
    let small = subgraphs::mha(1, 1, 512, head_dim);
    let program = Engine::SpaceFusion.compile(arch, &small).expect("compile");
    let bindings = small.random_bindings(7);
    let expect = small.execute(&bindings).expect("reference");
    let got = program.execute(&bindings).expect("fused");
    println!(
        "\nnumerics vs exact attention: max diff {:.2e}",
        got[0].max_abs_diff(&expect[0]).unwrap()
    );

    // Compare against the baselines across sequence lengths.
    println!("\nspeedup over PyTorch (batch={batch}, heads={heads}):");
    println!(
        "{:<8} {:>12} {:>16} {:>12}",
        "seq", "SpaceFusion", "FlashAttention2", "best ratio"
    );
    for seq in [256usize, 1024, 4096] {
        let g = subgraphs::mha(batch, heads, seq, head_dim);
        let py = Engine::PyTorch
            .compile(arch, &g)
            .unwrap()
            .profile(2)
            .time_us;
        let sf = Engine::SpaceFusion
            .compile(arch, &g)
            .unwrap()
            .profile(2)
            .time_us;
        let fa2 = flash_attention_v2(arch, &g)
            .unwrap()
            .unwrap()
            .profile(2)
            .time_us;
        println!(
            "{seq:<8} {:>11.2}x {:>15.2}x {:>11.2}x",
            py / sf,
            py / fa2,
            fa2 / sf
        );
    }
}
