//! The streaming-variance extension in action.
//!
//! The paper's Fig. 10(c) LayerNorm computes `mean((x − mean(x))²)`,
//! whose dependency chain defeats broadcast postposition — so the
//! temporal slicer cannot stream it and very wide rows stop fitting on
//! chip. The `Var[x] = E[x²] − E[x]²` rewrite makes the two reductions
//! independent, unlocking a streaming two-phase schedule.
//!
//! Run with: `cargo run --release --example streaming_layernorm`

use sf_gpu_sim::Arch;
use sf_models::subgraphs;
use spacefusion::codegen::emit_pseudocode;
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::rewrite::streaming_variance;

fn main() {
    let arch = Arch::Ampere;
    println!(
        "{:<10} {:>18} {:>10} {:>18} {:>10}",
        "rows x N", "baseline", "kernels", "rewritten", "kernels"
    );
    for n in [4096usize, 16384, 65536] {
        let g = subgraphs::layernorm(1024, n);
        let base = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
            .compile(&g)
            .expect("baseline compile");
        let rewritten_graph = streaming_variance(&g).expect("pattern");
        let rewritten = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
            .compile(&rewritten_graph)
            .expect("rewritten compile");

        // Both forms stay numerically faithful.
        if n == 4096 {
            let b = g.random_bindings(1);
            let expect = g.execute(&b).unwrap();
            let got = rewritten.execute(&b).unwrap();
            assert!(got[0].allclose(&expect[0], 1e-2));
        }

        let tb = base.profile(1).time_us;
        let tr = rewritten.profile(1).time_us;
        println!(
            "{:<10} {:>15.1} µs {:>10} {:>15.1} µs {:>10}",
            format!("1024x{n}"),
            tb,
            base.kernels.len(),
            tr,
            rewritten.kernels.len()
        );
    }

    // Show what the streaming kernel looks like.
    let g = subgraphs::layernorm(1024, 65536);
    let r = streaming_variance(&g).unwrap();
    let p = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
        .compile(&r)
        .unwrap();
    println!("\nstreaming LayerNorm kernel (N = 64K):\n");
    println!("{}", emit_pseudocode(&p.kernels[0]));
}
