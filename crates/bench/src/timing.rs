//! Minimal wall-clock micro-benchmark harness.
//!
//! The `cargo bench` targets of this crate use plain `harness = false`
//! binaries built on these helpers instead of an external benchmarking
//! framework, keeping the workspace resolvable with no registry access.
//! Each benchmark warms up, then runs enough iterations to cover a
//! minimum measurement window and reports the mean time per iteration.

use std::time::{Duration, Instant};

/// Minimum measured window per benchmark, after warm-up.
const MIN_WINDOW: Duration = Duration::from_millis(200);

/// Runs `f` repeatedly and prints `name: <mean per iteration>`.
///
/// Returns the mean iteration time so callers can assert on it.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Duration {
    // Warm-up: one untimed call plus a short calibration burst.
    std::hint::black_box(f());
    let t = Instant::now();
    std::hint::black_box(f());
    let once = t.elapsed().max(Duration::from_nanos(50));

    let iters = (MIN_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean = t.elapsed() / iters;
    println!(
        "{name:<40} {:>12} /iter   ({iters} iters)",
        fmt_duration(mean)
    );
    mean
}

/// Like [`bench`] but also prints a throughput figure for `elements`
/// logical items processed per iteration.
pub fn bench_throughput<T>(name: &str, elements: u64, f: impl FnMut() -> T) -> Duration {
    let mean = bench(name, f);
    let per_sec = elements as f64 / mean.as_secs_f64();
    println!("{:<40} {:>12.2} Melem/s", "", per_sec / 1e6);
    mean
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let mean = bench("noop_loop", || {
            let mut acc = 0u64;
            for i in 0..64u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(mean.as_nanos() > 0);
    }
}
