//! Machine-readable result capture.
//!
//! Every figure binary prints human-readable tables; this module lets
//! them also accumulate the same series into a CSV file (`--csv PATH`),
//! so plots can be regenerated without scraping stdout.

use std::fmt::Write as _;
use std::path::Path;

/// A CSV report under construction.
#[derive(Debug, Default, Clone)]
pub struct Report {
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with a header row.
    pub fn with_header(cols: &[&str]) -> Self {
        let mut r = Report::default();
        r.rows.push(cols.iter().map(|c| c.to_string()).collect());
        r
    }

    /// Appends one row; values are formatted with up to 6 significant
    /// decimals.
    pub fn row(&mut self, labels: &[&str], values: &[f64]) {
        let mut row: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
        row.extend(values.iter().map(|v| format!("{v:.6}")));
        self.rows.push(row);
    }

    /// Number of data rows (excluding the header).
    pub fn len(&self) -> usize {
        self.rows.len().saturating_sub(1)
    }

    /// Whether the report holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to CSV (RFC-4180 quoting for fields containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if field.contains(',') || field.contains('"') || field.contains('\n') {
                    let _ = write!(out, "\"{}\"", field.replace('"', "\"\""));
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut r = Report::with_header(&["arch", "seq", "speedup"]);
        assert!(r.is_empty());
        r.row(&["Volta", "128"], &[3.25]);
        r.row(&["Volta", "256"], &[3.5]);
        assert_eq!(r.len(), 2);
        let csv = r.to_csv();
        assert!(csv.starts_with("arch,seq,speedup\n"));
        assert!(csv.contains("Volta,128,3.250000\n"));
    }

    #[test]
    fn quoting_of_awkward_fields() {
        let mut r = Report::with_header(&["label"]);
        r.row(&["a,b"], &[]);
        r.row(&["say \"hi\""], &[]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\"\n"));
        assert!(csv.contains("\"say \"\"hi\"\"\"\n"));
    }

    #[test]
    fn save_round_trips() {
        let mut r = Report::with_header(&["x", "y"]);
        r.row(&["p"], &[1.5]);
        let path = std::env::temp_dir().join("sf_report_test.csv");
        r.save(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.to_csv());
        let _ = std::fs::remove_file(&path);
    }
}
