//! Benchmark harness utilities shared by the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper's evaluation (§6). The helpers here run workloads through the
//! engines, collect simulated times and counters, and print the same
//! rows/series the paper reports. Absolute numbers come from the
//! simulator, not the authors' testbed — the claims under reproduction
//! are the *shapes*: who wins, by roughly what factor, and where the
//! crossovers fall.

pub mod report;
pub mod timing;

pub use report::Report;

use sf_baselines::Engine;
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::{TransformerConfig, Workload};
use spacefusion::compiler::{CompileOptions, CompiledProgram, Compiler};
use spacefusion::pipeline::CompileSession;
use spacefusion::Result;

/// How many batch instances the profiler replays in detail; the rest are
/// scaled (the workloads are instance-homogeneous).
pub const REPLAY_INSTANCES: usize = 2;

/// Simulated execution time of a compiled program, µs.
///
/// Uses the full cache-simulating profiler.
pub fn profiled_us(program: &CompiledProgram) -> f64 {
    program.profile(REPLAY_INSTANCES).time_us
}

/// Simulated time of one subgraph under an engine, µs.
pub fn engine_subgraph_us(engine: Engine, arch: Arch, graph: &Graph) -> Result<f64> {
    Ok(profiled_us(&engine.compile(arch, graph)?))
}

/// End-to-end model time under an engine, µs.
///
/// Sums `count × subprogram-time` over the model's distinct subprograms.
/// Large-GEMM subprograms use the analytic estimate (their working sets
/// dwarf the L2, where the analytic and simulated models agree), keeping
/// full-model sweeps tractable; fused-attention and normalization
/// subprograms — where cache behaviour decides the outcome — always go
/// through the cache simulator.
pub fn engine_model_us(
    engine: Engine,
    arch: Arch,
    model: &TransformerConfig,
    batch: usize,
    seq: usize,
) -> Result<f64> {
    let mut total = 0.0;
    for Workload { graph, count } in model.subprograms(batch, seq) {
        let program = engine.compile(arch, &graph)?;
        let detailed = sf_baselines::engines::is_attention(&graph)
            || sf_baselines::engines::is_row_norm(&graph);
        let us = if detailed {
            profiled_us(&program)
        } else {
            program.estimate_us()
        };
        total += us * count as f64;
    }
    Ok(total)
}

/// Simulated time of a subgraph executed as an unfused *library* call
/// sequence (bare CUDA launches, no eager-mode dispatch) — the cuBLAS
/// baseline of Fig. 11.
pub fn library_unfused_us(arch: Arch, graph: &Graph) -> Result<f64> {
    use spacefusion::compiler::FusionPolicy;
    let program = Compiler::with_policy(arch, FusionPolicy::Unfused).compile(graph)?;
    Ok(profiled_us(&program))
}

/// End-to-end model time under explicit compiler options, µs.
///
/// Used by the Fig. 16 ablation variants (`Base(SS)`, `Base+AS`,
/// `Base+TS`) which are option sets rather than engines.
pub fn options_model_us(
    opts: &CompileOptions,
    arch: Arch,
    model: &TransformerConfig,
    batch: usize,
    seq: usize,
) -> Result<f64> {
    // One session per sweep point: repeated subprogram shapes across the
    // model's layers hit the shared schedule cache instead of re-tuning.
    let session = CompileSession::new(arch, opts.clone());
    let mut total = 0.0;
    for Workload { graph, count } in model.subprograms(batch, seq) {
        let program = session.compile(&graph)?;
        let detailed = sf_baselines::engines::is_attention(&graph)
            || sf_baselines::engines::is_row_norm(&graph);
        let us = if detailed {
            profiled_us(&program)
        } else {
            program.estimate_us()
        };
        total += us * count as f64;
    }
    Ok(total)
}

/// Formats one speedup row: `label: v1 v2 v3 ...`.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:<28}");
    for v in values {
        print!(" {v:>8.2}");
    }
    println!();
}

/// Prints a header row.
pub fn print_header(label: &str, cols: &[String]) {
    print!("{label:<28}");
    for c in cols {
        print!(" {c:>8}");
    }
    println!();
}

/// Geometric mean (used for "average speedup" summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Simple `--flag value` argument lookup.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether `--quick` was passed (reduced sweep sizes for smoke runs).
pub fn quick(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_models::subgraphs;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--part", "a", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--part").as_deref(), Some("a"));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert!(quick(&args));
    }

    #[test]
    fn subgraph_measurement_produces_positive_time() {
        // LayerNorm has no framework-level composite, so the PyTorch
        // baseline really is 9 kernels and must be slower.
        let g = subgraphs::layernorm(512, 1024);
        let t = engine_subgraph_us(Engine::SpaceFusion, Arch::Ampere, &g).unwrap();
        assert!(t > 0.0);
        let t_py = engine_subgraph_us(Engine::PyTorch, Arch::Ampere, &g).unwrap();
        assert!(t_py > t, "unfused must be slower: {t_py} vs {t}");
    }

    #[test]
    fn model_measurement_runs_small_bert() {
        let mut cfg = sf_models::bert();
        cfg.layers = 1;
        let t = engine_model_us(Engine::SpaceFusion, Arch::Ampere, &cfg, 1, 64).unwrap();
        assert!(t.is_finite() && t > 0.0);
    }
}
