//! Table 6: fusion-pattern analysis.
//!
//! Compiles the evaluation suite under SpaceFusion, the NNFusion-like
//! tile-graph policy and the BladeDISC-like MI-only policy, and counts
//! the distinct fused subgraphs containing at least two All-to-One
//! mappings — split into compute-intensive-only, memory-intensive-only
//! and mixed CI+MI patterns, as in the paper's census. Paper:
//! SpaceFusion 50 (5 CI / 15 MI / 30 CI+MI) vs NNFusion 30 (3/14/13) vs
//! BladeDISC 14 (0/14/0). The reproduced properties are the ordering and
//! the structural gaps: the MI-only system finds no CI or mixed
//! patterns; the tile-graph system misses most mixed patterns.
//!
//! Usage: `table6 [--quick]`

use sf_baselines::Engine;
use sf_bench::quick;
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::{all_models, subgraphs};
use std::collections::HashSet;

/// Classifies a pattern signature: does it contain CI (gemm) and/or MI
/// (reduce) non-element-wise operators?
fn classify(sig: &str) -> (bool, bool) {
    let has_ci = sig.contains("gemm");
    let has_mi = sig.contains("reduce_");
    (has_ci, has_mi)
}

fn evaluation_suite(q: bool) -> Vec<Graph> {
    let mut suite: Vec<Graph> = Vec::new();
    // The five end-to-end models (their distinct subprograms), at a
    // short and a long prompt — the long prompts are where tile-graph
    // fusion starts failing on the mixed CI+MI regions.
    let mut models = all_models();
    if q {
        models.truncate(2);
    }
    for m in &models {
        for seq in [256usize, 4096] {
            for w in m.subprograms(1, seq) {
                suite.push(w.graph);
            }
        }
    }
    // The standalone subgraph structures of Fig. 10 and the extension
    // workloads (masked attention, decode-phase attention).
    suite.push(subgraphs::mlp_stack(20, 64, 256));
    suite.push(subgraphs::mlp_stack(4, 128, 256));
    suite.push(subgraphs::lstm_cell(256, 512));
    suite.push(subgraphs::layernorm(2048, 2048));
    suite.push(subgraphs::softmax(1024, 1024));
    suite.push(subgraphs::mha(1, 16, 8192, 64));
    suite.push(subgraphs::masked_mha(1, 16, 4096, 64));
    suite.push(subgraphs::mha_decode(4, 16, 65536, 64));
    suite
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    let suite = evaluation_suite(q);
    println!(
        "== Table 6: fusion patterns discovered across {} compiled instances (Ampere) ==",
        suite.len()
    );
    println!(
        "{:<32} {:>12} {:>10} {:>10} {:>12}",
        "System", "# Patterns", "# CI only", "# MI only", "# CI and MI"
    );
    for (engine, label) in [
        (Engine::SpaceFusion, "SpaceFusion"),
        (Engine::NnFusion, "NNFusion (tile-graph)"),
        (Engine::BladeDisc, "BladeDISC (MI-only)"),
    ] {
        let mut patterns: HashSet<String> = HashSet::new();
        for g in &suite {
            let p = engine.compile(Arch::Ampere, g).expect("compile");
            for sig in &p.stats.fusion_patterns {
                patterns.insert(sig.clone());
            }
        }
        let mut ci = 0;
        let mut mi = 0;
        let mut both = 0;
        for sig in &patterns {
            match classify(sig) {
                (true, false) => ci += 1,
                (false, true) => mi += 1,
                (true, true) => both += 1,
                (false, false) => {}
            }
        }
        println!(
            "{:<32} {:>12} {:>10} {:>10} {:>12}",
            label,
            patterns.len(),
            ci,
            mi,
            both
        );
    }
    println!("\n(paper: SpaceFusion 50 = 5 CI + 15 MI + 30 CI&MI; NNFusion 30 = 3+14+13; BladeDISC 14 = 0+14+0)");
}
