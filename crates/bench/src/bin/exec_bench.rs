//! Execution-engine benchmark: multi-threaded spatial blocks vs serial.
//!
//! Runs the Fig. 10 subgraph zoo through the interpreter at
//! `--exec-threads 1` and the parallel setting, checks the outputs are
//! bit-identical, and writes a `BENCH_exec.json` artifact with per-
//! workload times, speedups, and fresh-allocation counts (the scratch-
//! pool reuse counter from `sf-tensor`).
//!
//! Times are host wall-clock of the *interpreter* — the correctness
//! oracle — not simulated GPU time; the artifact records how many
//! worker threads the host actually provided.
//!
//! A batched-throughput section additionally pushes a batch of
//! independent binding sets through `CompiledProgram::execute_many` at
//! 1, 2, and max threads, reporting graphs/second.
//!
//! Usage: `exec_bench [--exec-threads N|max] [--quick] [--gate]
//!                    [--out PATH]`
//!
//! `--gate` exits non-zero if the parallel path is slower than serial
//! on the zoo aggregate beyond a 10% tolerance, or if any single
//! workload falls below 0.95x of its serial time (single-core hosts
//! run both paths at one worker through the same serial code path, so
//! equality is the floor, not a speedup).

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::subgraphs;
use sf_tensor::Tensor;
use spacefusion::codegen::ExecOptions;
use spacefusion::compiler::{CompileOptions, Compiler, FusionPolicy};
use spacefusion::sched::SlicingOptions;
use std::collections::HashMap;
use std::time::Instant;

/// Gate tolerance: parallel aggregate may be at most this factor of the
/// serial aggregate.
const GATE_TOLERANCE: f64 = 1.10;

/// Per-workload gate floor: every workload's parallel speedup must be
/// at least this fraction of serial.
const WORKLOAD_GATE: f64 = 0.95;

struct Row {
    name: String,
    serial_us: f64,
    parallel_us: f64,
    allocations: u64,
}

fn zoo(quick: bool) -> Vec<Graph> {
    if quick {
        vec![
            subgraphs::mlp_stack(2, 64, 32),
            subgraphs::softmax(64, 48),
            subgraphs::layernorm(64, 48),
            subgraphs::mha(1, 2, 32, 16),
        ]
    } else {
        vec![
            subgraphs::mlp_stack(4, 256, 64),
            subgraphs::lstm_cell(64, 64),
            subgraphs::softmax(256, 128),
            subgraphs::layernorm(256, 128),
            subgraphs::rmsnorm(256, 128),
            subgraphs::mha(1, 4, 64, 32),
            subgraphs::masked_mha(1, 4, 64, 32),
            subgraphs::mha_decode(1, 4, 128, 32),
            subgraphs::mha_decode(1, 4, 1024, 32),
            subgraphs::deep_reduce(64, 4096),
        ]
    }
}

/// Reduction-bound workloads for the split-K section: tiny spatial
/// grids, deep reduction axes — the shapes where the serialized tile
/// loop leaves the pool idle.
fn split_zoo(quick: bool) -> Vec<Graph> {
    if quick {
        // Big enough that blocks × partitions × reduction depth clears
        // the engine's serial-work cutoff, so the two-dispatch split
        // path actually runs.
        vec![subgraphs::mha_decode(1, 2, 512, 32)]
    } else {
        vec![
            subgraphs::mha_decode(1, 4, 1024, 32),
            subgraphs::mha_decode(1, 4, 128, 32),
            subgraphs::softmax(16, 4096),
            subgraphs::deep_reduce(16, 4096),
            // 64 rows already cover the memory system: the tuner
            // correctly declines to split (factor 1 in the report).
            subgraphs::deep_reduce(64, 4096),
        ]
    }
}

/// Mean wall-clock of `f`, µs: best of three passes, each sized to
/// cover ~100 ms (capped at `iters_hint`). The min-of-means discards
/// scheduler noise, which otherwise dominates sub-millisecond
/// interpreter runs.
fn time_us<T>(iters_hint: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let t = Instant::now();
    std::hint::black_box(f());
    let once = t.elapsed().max(std::time::Duration::from_nanos(50));
    let iters = (100_000_000 / once.as_nanos().max(1)).clamp(1, iters_hint as u128) as u32;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

/// Times two closures with interleaved passes, µs: `(best_f, best_g)`.
///
/// Alternating the measurement passes means slow drift (frequency
/// scaling, background load) biases both sides equally instead of
/// whichever ran second — important because the per-workload gate
/// compares the two numbers at a 5% tolerance.
fn time_pair_us<T>(
    iters_hint: u32,
    mut f: impl FnMut() -> T,
    mut g: impl FnMut() -> T,
) -> (f64, f64) {
    std::hint::black_box(f());
    std::hint::black_box(g());
    let t = Instant::now();
    std::hint::black_box(f());
    let once = t.elapsed().max(std::time::Duration::from_nanos(50));
    let iters = (150_000_000 / once.as_nanos().max(1)).clamp(1, iters_hint as u128) as u32;
    // Many short alternating rounds: a transient stall (preemption,
    // frequency dip) lands inside one round and the min discards it,
    // instead of poisoning one side's entire budget.
    const ROUNDS: u32 = 9;
    let round_iters = (iters / ROUNDS).max(1);
    let (mut best_f, mut best_g) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..round_iters {
            std::hint::black_box(f());
        }
        best_f = best_f.min(t.elapsed().as_secs_f64() * 1e6 / round_iters as f64);
        let t = Instant::now();
        for _ in 0..round_iters {
            std::hint::black_box(g());
        }
        best_g = best_g.min(t.elapsed().as_secs_f64() * 1e6 / round_iters as f64);
    }
    (best_f, best_g)
}

/// Asserts two output lists are bitwise identical.
fn assert_bitwise(name: &str, a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len(), "{name}: output count mismatch");
    for (s, p) in a.iter().zip(b) {
        let same = s.shape() == p.shape()
            && s.data()
                .iter()
                .zip(p.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{name}: outputs diverged");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = sf_bench::quick(&args);
    let gate = args.iter().any(|a| a == "--gate");
    let out_path = sf_bench::arg_value(&args, "--out")
        .unwrap_or_else(|| "results/BENCH_exec.json".to_string());
    let parallel_opts = match sf_bench::arg_value(&args, "--exec-threads").as_deref() {
        None | Some("max") => ExecOptions::default(),
        Some(n) => ExecOptions::with_threads(n.parse().unwrap_or_else(|_| {
            eprintln!("exec_bench: --exec-threads needs a count or 'max'");
            std::process::exit(2);
        })),
    };
    let threads = parallel_opts.effective_threads();
    let iters_hint = if quick { 256 } else { 2_000 };

    println!("== Execution engine: serial vs {threads}-thread blocks ==");
    let serial = ExecOptions::with_threads(1);
    let mut rows = Vec::new();
    for graph in zoo(quick) {
        let bindings = graph.random_bindings(42);
        let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&graph)
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name()));

        let ref_out = program
            .execute_with(&bindings, &serial)
            .expect("serial run");
        let par_out = program
            .execute_with(&bindings, &parallel_opts)
            .expect("parallel run");
        assert_bitwise(graph.name(), &ref_out, &par_out);

        sf_tensor::alloc_stats::reset_allocations();
        program.execute_with(&bindings, &serial).expect("alloc run");
        let allocations = sf_tensor::alloc_stats::allocations();

        let (serial_us, parallel_us) = time_pair_us(
            iters_hint,
            || program.execute_with(&bindings, &serial).expect("serial"),
            || {
                program
                    .execute_with(&bindings, &parallel_opts)
                    .expect("parallel")
            },
        );
        println!(
            "{:<16} serial {serial_us:>10.1} µs   parallel {parallel_us:>10.1} µs   {:>5.2}x   {allocations} allocs",
            graph.name(),
            serial_us / parallel_us
        );
        rows.push(Row {
            name: graph.name().to_string(),
            serial_us,
            parallel_us,
            allocations,
        });
    }

    let agg_serial: f64 = rows.iter().map(|r| r.serial_us).sum();
    let agg_parallel: f64 = rows.iter().map(|r| r.parallel_us).sum();
    let speedup = agg_serial / agg_parallel;
    println!(
        "aggregate: serial {agg_serial:.1} µs, parallel {agg_parallel:.1} µs, {speedup:.2}x at {threads} threads"
    );

    // Batched throughput: a batch of independent binding sets through
    // `execute_many` at 1, 2, and max threads.
    let batch_graph = if quick {
        subgraphs::softmax(64, 48)
    } else {
        subgraphs::softmax(256, 128)
    };
    let batch_n: usize = if quick { 8 } else { 16 };
    let batch_program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
        .compile(&batch_graph)
        .unwrap_or_else(|e| panic!("{}: {e}", batch_graph.name()));
    let batch_sets: Vec<HashMap<String, Tensor>> = (0..batch_n)
        .map(|i| batch_graph.random_bindings(100 + i as u64))
        .collect();
    let batch_ref: Vec<Vec<Tensor>> = batch_sets
        .iter()
        .map(|b| batch_program.execute_with(b, &serial).expect("batch ref"))
        .collect();
    println!(
        "== Batched throughput: {batch_n}x {} via execute_many ==",
        batch_graph.name()
    );
    let mut batch_rows = Vec::new();
    for t in [1usize, 2, 0] {
        let opts = ExecOptions::with_threads(t);
        let outs = batch_program
            .execute_many(&batch_sets, &opts)
            .expect("batched run");
        for (r, o) in batch_ref.iter().zip(&outs) {
            assert_bitwise("batched", r, o);
        }
        let us = time_us(iters_hint, || {
            batch_program
                .execute_many(&batch_sets, &opts)
                .expect("batched")
        });
        let graphs_per_sec = batch_n as f64 * 1e6 / us;
        let label = if t == 0 {
            format!("max ({})", opts.effective_threads())
        } else {
            t.to_string()
        };
        println!("threads {label:<8} {us:>10.1} µs/batch   {graphs_per_sec:>10.0} graphs/s");
        batch_rows.push((t, opts.effective_threads(), us, graphs_per_sec));
    }

    // Split-K: each reduction-bound workload is compiled twice — split
    // schedules enabled (arch defaults) and serialized (the same
    // compiler with `enable_split = false`) — and both run at a
    // multi-worker setting (at least 4 workers, so the split executor
    // engages even on small hosts). The dispatch delta per execution
    // shows the two-launch split path (partial accumulators, then the
    // combine); the serialized build has zero parallel dispatches on
    // these shapes because their spatial grids are below the pool
    // cutoff. Host wall-clock on an oversubscribed box measures
    // overhead, not the win, so the modeled (simulated-GPU) times that
    // drove the tuner's choice are reported alongside.
    println!("== Split-K: partial accumulators vs serialized tile loop ==");
    let split_threads = threads.max(4);
    let split_opts = ExecOptions::with_threads(split_threads);
    let with_split = Compiler::new(Arch::Ampere, CompileOptions::default());
    let no_split = Compiler::new(
        Arch::Ampere,
        CompileOptions {
            slicing: SlicingOptions {
                enable_split: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    struct SplitRow {
        name: String,
        split_factor: usize,
        split_dispatches: u64,
        serialized_dispatches: u64,
        split_us: f64,
        serialized_us: f64,
        model_split_us: f64,
        model_serialized_us: f64,
    }
    let model_us = |p: &spacefusion::pipeline::CompiledProgram| -> f64 {
        p.kernels
            .iter()
            .map(|kp| {
                p.arch
                    .kernel_time_us(&spacefusion::codegen::estimate_cost(kp, p.instances as u64))
            })
            .sum()
    };
    let mut split_rows: Vec<SplitRow> = Vec::new();
    for graph in split_zoo(quick) {
        let bindings = graph.random_bindings(42);
        let split_prog = with_split
            .compile(&graph)
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        let serial_prog = no_split
            .compile(&graph)
            .unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        let split_factor = split_prog
            .kernels
            .iter()
            .filter_map(|kp| kp.schedule.temporal.as_ref())
            .map(|t| t.partitions())
            .max()
            .unwrap_or(1);

        // Same-program determinism across thread counts: the fixed
        // left-to-right combine order makes the split schedule's output
        // independent of how the pool interleaves partitions.
        let one = split_prog
            .execute_with(&bindings, &serial)
            .expect("1-thread split run");
        let par = split_prog
            .execute_with(&bindings, &split_opts)
            .expect("parallel split run");
        assert_bitwise(graph.name(), &one, &par);

        let d0 = split_prog.engine().dispatches();
        split_prog
            .execute_with(&bindings, &split_opts)
            .expect("split dispatch run");
        let split_dispatches = split_prog.engine().dispatches() - d0;
        let d0 = serial_prog.engine().dispatches();
        serial_prog
            .execute_with(&bindings, &split_opts)
            .expect("serialized dispatch run");
        let serialized_dispatches = serial_prog.engine().dispatches() - d0;

        let (split_us, serialized_us) = time_pair_us(
            iters_hint,
            || {
                split_prog
                    .execute_with(&bindings, &split_opts)
                    .expect("split")
            },
            || {
                serial_prog
                    .execute_with(&bindings, &split_opts)
                    .expect("serialized")
            },
        );
        let model_split_us = model_us(&split_prog);
        let model_serialized_us = model_us(&serial_prog);
        println!(
            "{:<24} split {split_factor}   dispatches {split_dispatches} vs {serialized_dispatches}   host {split_us:>8.1} µs vs {serialized_us:>8.1} µs   model {model_split_us:>7.2} µs vs {model_serialized_us:>7.2} µs ({:.2}x)",
            graph.name(),
            model_serialized_us / model_split_us
        );
        split_rows.push(SplitRow {
            name: graph.name().to_string(),
            split_factor,
            split_dispatches,
            serialized_dispatches,
            split_us,
            serialized_us,
            model_split_us,
            model_serialized_us,
        });
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"exec\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_us\": {:.1}, \"parallel_us\": {:.1}, \"speedup\": {:.3}, \"allocations\": {}}}{}\n",
            r.name,
            r.serial_us,
            r.parallel_us,
            r.serial_us / r.parallel_us,
            r.allocations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"batched\": {{\"workload\": \"{}\", \"batch\": {batch_n}, \"rows\": [\n",
        batch_graph.name()
    ));
    for (i, (t, eff, us, gps)) in batch_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"effective_threads\": {eff}, \"time_us\": {us:.1}, \"graphs_per_sec\": {gps:.0}}}{}\n",
            if i + 1 < batch_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"split_k\": {{\"threads\": {split_threads}, \"rows\": [\n"
    ));
    for (i, r) in split_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"split_factor\": {}, \"dispatches\": {}, \"serialized_dispatches\": {}, \"split_us\": {:.1}, \"serialized_us\": {:.1}, \"model_split_us\": {:.2}, \"model_serialized_us\": {:.2}, \"model_speedup\": {:.3}}}{}\n",
            r.name,
            r.split_factor,
            r.split_dispatches,
            r.serialized_dispatches,
            r.split_us,
            r.serialized_us,
            r.model_split_us,
            r.model_serialized_us,
            r.model_serialized_us / r.model_split_us,
            if i + 1 < split_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"aggregate\": {{\"serial_us\": {agg_serial:.1}, \"parallel_us\": {agg_parallel:.1}, \"speedup\": {speedup:.3}}}\n"
    ));
    json.push_str("}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("exec_bench: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    if gate {
        let mut failed = false;
        if agg_parallel > agg_serial * GATE_TOLERANCE {
            eprintln!(
                "exec_bench: GATE FAILED — parallel aggregate {agg_parallel:.1} µs exceeds serial {agg_serial:.1} µs × {GATE_TOLERANCE}"
            );
            failed = true;
        }
        for r in &rows {
            let s = r.serial_us / r.parallel_us;
            if s < WORKLOAD_GATE {
                eprintln!(
                    "exec_bench: GATE FAILED — workload '{}' at {s:.3}x is below the {WORKLOAD_GATE}x floor",
                    r.name
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
