//! Figure 12: fused LayerNorm performance.
//!
//! Speedup over unfused PyTorch for PyTorch Op (fused CUDA), NVIDIA Apex,
//! the Triton LayerNorm, and SpaceFusion, sweeping square inputs
//! `M = N = 1K…16K` (Volta) / `1K…32K` (Ampere, Hopper). Paper: average
//! 7.25× over PyTorch; up to 1.59×/2.46×/4.03× over PyTorch Op / Apex /
//! LN-Triton.
//!
//! Usage: `fig12 [--quick]`

use sf_baselines::{apex_layernorm, pytorch_op_layernorm, triton_layernorm, Engine};
use sf_bench::{engine_subgraph_us, geomean, print_header, print_row, profiled_us, quick};
use sf_gpu_sim::Arch;
use sf_models::subgraphs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    println!("== Figure 12: fused LayerNorm (speedup vs PyTorch) ==");
    let mut sf_speedups = Vec::new();
    for arch in Arch::all() {
        let sizes: Vec<usize> = if q {
            vec![1024, 4096]
        } else if arch == Arch::Volta {
            vec![1024, 2048, 4096, 8192, 16384]
        } else {
            vec![1024, 2048, 4096, 8192, 16384, 32768]
        };
        println!("-- {arch} --");
        print_header(
            "M=N",
            &sizes
                .iter()
                .map(|s| format!("{}K", s / 1024))
                .collect::<Vec<_>>(),
        );
        let mut rows: Vec<(&str, Vec<f64>)> = vec![
            ("PyTorch Op", Vec::new()),
            ("NVIDIA Apex", Vec::new()),
            ("LN Triton", Vec::new()),
            ("SpaceFusion", Vec::new()),
        ];
        for &n in &sizes {
            let g = subgraphs::layernorm(n, n);
            let py = engine_subgraph_us(Engine::PyTorch, arch, &g).expect("pytorch");
            let op = profiled_us(&pytorch_op_layernorm(arch, &g).expect("op"));
            let apex = profiled_us(&apex_layernorm(arch, &g).expect("apex"));
            let triton = profiled_us(&triton_layernorm(arch, &g).expect("triton"));
            let sf = engine_subgraph_us(Engine::SpaceFusion, arch, &g).expect("sf");
            rows[0].1.push(py / op);
            rows[1].1.push(py / apex);
            rows[2].1.push(py / triton);
            rows[3].1.push(py / sf);
            sf_speedups.push(py / sf);
        }
        for (name, vals) in &rows {
            print_row(name, vals);
        }
    }
    println!(
        "\nSpaceFusion vs PyTorch: geomean {:.2}x, max {:.2}x (paper: avg 7.25x)",
        geomean(&sf_speedups),
        sf_speedups.iter().cloned().fold(0.0, f64::max)
    );
}
