//! Load generator for the `sfc serve` daemon.
//!
//! Connects N concurrent clients to a running daemon over its Unix
//! socket and drives a deterministic request mix: `--seeds K` distinct
//! request forms (subgraph variant × fixed binding seed × fusion
//! policy) cycled round-robin. Reports per-phase latency percentiles
//! and throughput at each client count, the daemon's cache hit rate,
//! and degradation/shed counters, writing a `BENCH_serve.json`
//! artifact.
//!
//! Because every form pins its binding seed, the daemon's responses are
//! bit-determined: the `--digest PATH` file (request form → sorted
//! output checksums) is byte-identical across runs, daemons, restarts,
//! and `--exec-threads` settings — verify.sh diffs two runs to prove
//! it.
//!
//! Usage:
//!   loadgen --socket PATH [--clients 1,4,16] [--requests N]
//!           [--seeds K] [--out PATH] [--digest PATH]
//!   loadgen --socket PATH --shutdown     # stop the daemon, no load
//!
//! Stdout ends with `key: value` counter lines (`sheds:`,
//! `warm_loaded:`, `schedule_misses:`, ...) for scripts to grep.

#[cfg(not(unix))]
fn main() {
    eprintln!("loadgen: requires Unix-domain sockets");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    unix::main()
}

#[cfg(unix)]
mod unix {
    use sf_ir::dsl::print_graph;
    use sf_models::subgraphs;
    use spacefusion::pipeline::FusionPolicy;
    use spacefusion::serve::{CompileRequest, Response, RetryPolicy, ServeClient, StatsSnapshot};
    use std::path::{Path, PathBuf};
    use std::time::{Duration, Instant};

    /// One deterministic request form: graph text, policy, binding seed.
    #[derive(Clone)]
    struct Form {
        graph: String,
        policy: FusionPolicy,
        seed: u64,
    }

    /// Builds the `k` request forms: subgraph variants × policies, each
    /// with a pinned binding seed so responses are bit-determined.
    fn forms(k: usize) -> Vec<Form> {
        let variants = [
            print_graph(&subgraphs::softmax(16, 64)),
            print_graph(&subgraphs::layernorm(8, 128)),
            print_graph(&subgraphs::rmsnorm(8, 96)),
            print_graph(&subgraphs::mlp_stack(2, 32, 24)),
            print_graph(&subgraphs::softmax(32, 48)),
            print_graph(&subgraphs::deep_reduce(16, 64)),
        ];
        let policies = [
            FusionPolicy::SpaceFusion,
            FusionPolicy::Unfused,
            FusionPolicy::MiOnly,
        ];
        (0..k)
            .map(|i| Form {
                graph: variants[i % variants.len()].clone(),
                policy: policies[(i / variants.len()) % policies.len()],
                seed: 1000 + i as u64,
            })
            .collect()
    }

    struct Phase {
        clients: usize,
        requests: usize,
        p50_us: f64,
        p99_us: f64,
        throughput_rps: f64,
        retries: usize,
        sheds_recovered: usize,
    }

    fn percentile(sorted_us: &[f64], p: f64) -> f64 {
        if sorted_us.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
        sorted_us[idx.min(sorted_us.len() - 1)]
    }

    /// Runs one phase: `clients` threads × `per_client` requests each,
    /// round-robin over the forms. Returns the phase report and the
    /// per-form checksum lists observed.
    fn run_phase(
        socket: &Path,
        forms: &[Form],
        clients: usize,
        per_client: usize,
    ) -> (Phase, Vec<(usize, Vec<u64>)>) {
        let observed: std::sync::Mutex<Vec<(usize, Vec<u64>)>> = std::sync::Mutex::new(Vec::new());
        let latencies: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
        let retries = std::sync::atomic::AtomicUsize::new(0);
        let sheds_recovered = std::sync::atomic::AtomicUsize::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let observed = &observed;
                let latencies = &latencies;
                let retries = &retries;
                let sheds_recovered = &sheds_recovered;
                s.spawn(move || {
                    let mut client =
                        ServeClient::connect_with_retry(socket, Duration::from_secs(10))
                            .unwrap_or_else(|e| {
                                eprintln!("loadgen: cannot connect to {}: {e}", socket.display());
                                std::process::exit(1);
                            })
                            .with_retry(RetryPolicy {
                                attempts: 8,
                                base_backoff_ms: 2,
                                seed: clients as u64 * 1031 + c as u64,
                            });
                    for i in 0..per_client {
                        let form_idx = (c + i) % forms.len();
                        let form = &forms[form_idx];
                        let req = CompileRequest {
                            id: form_idx as u64,
                            graph: form.graph.clone(),
                            policy: form.policy,
                            seed: form.seed,
                            ..CompileRequest::default()
                        };
                        let t = Instant::now();
                        // `compile_with_retry` absorbs sheds, torn frames,
                        // and dropped connections with seeded jittered
                        // backoff; a shed that outlives the whole budget
                        // comes back as `Retry` and we simply go again —
                        // every loadgen request must complete.
                        loop {
                            match client.compile_with_retry(req.clone()) {
                                Ok(Response::Ok(ok)) => {
                                    latencies
                                        .lock()
                                        .unwrap()
                                        .push(t.elapsed().as_secs_f64() * 1e6);
                                    observed.lock().unwrap().push((
                                        form_idx,
                                        ok.outputs.iter().map(|o| o.checksum).collect(),
                                    ));
                                    break;
                                }
                                Ok(Response::Retry { .. }) => {
                                    // Budget exhausted while the queue is
                                    // saturated: re-enter with a fresh one.
                                }
                                Ok(other) => {
                                    eprintln!("loadgen: request failed: {other:?}");
                                    std::process::exit(1);
                                }
                                Err(e) => {
                                    eprintln!("loadgen: transport error: {e}");
                                    std::process::exit(1);
                                }
                            }
                        }
                    }
                    retries.fetch_add(
                        client.retries() as usize,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    sheds_recovered.fetch_add(
                        client.sheds_recovered() as usize,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let mut lat = latencies.into_inner().unwrap();
        lat.sort_by(f64::total_cmp);
        let total = clients * per_client;
        (
            Phase {
                clients,
                requests: total,
                p50_us: percentile(&lat, 0.50),
                p99_us: percentile(&lat, 0.99),
                throughput_rps: total as f64 / wall_s.max(1e-9),
                retries: retries.into_inner(),
                sheds_recovered: sheds_recovered.into_inner(),
            },
            observed.into_inner().unwrap(),
        )
    }

    fn print_counters(stats: &StatsSnapshot) {
        let probes = stats.program_hits + stats.program_compiles;
        let hit_rate = if probes == 0 {
            0.0
        } else {
            stats.program_hits as f64 / probes as f64
        };
        println!("requests: {}", stats.requests);
        println!("ok: {}", stats.ok);
        println!("errors: {}", stats.errors);
        println!("sheds: {}", stats.sheds);
        println!("program_compiles: {}", stats.program_compiles);
        println!("program_hits: {}", stats.program_hits);
        println!("cache_hit_rate: {hit_rate:.4}");
        println!("schedule_hits: {}", stats.schedule_hits);
        println!("schedule_misses: {}", stats.schedule_misses);
        println!("schedule_entries: {}", stats.schedule_entries);
        println!("warm_loaded: {}", stats.warm_loaded);
        println!("warm_evicted: {}", stats.warm_evicted);
        println!("degradations: {}", stats.degradations);
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let socket = PathBuf::from(sf_bench::arg_value(&args, "--socket").unwrap_or_else(|| {
            eprintln!("loadgen: --socket PATH is required");
            std::process::exit(2);
        }));

        if args.iter().any(|a| a == "--shutdown") {
            let mut client = ServeClient::connect_with_retry(&socket, Duration::from_secs(10))
                .unwrap_or_else(|e| {
                    eprintln!("loadgen: cannot connect to {}: {e}", socket.display());
                    std::process::exit(1);
                });
            client.shutdown().unwrap_or_else(|e| {
                eprintln!("loadgen: shutdown failed: {e}");
                std::process::exit(1);
            });
            println!("shutdown: acknowledged");
            return;
        }

        let clients: Vec<usize> = sf_bench::arg_value(&args, "--clients")
            .unwrap_or_else(|| "1,4,16".into())
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: bad --clients entry '{s}'");
                    std::process::exit(2);
                })
            })
            .collect();
        let seeds: usize = sf_bench::arg_value(&args, "--seeds")
            .map(|s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: --seeds needs a count");
                    std::process::exit(2);
                })
            })
            .unwrap_or(12);
        let per_client: usize = sf_bench::arg_value(&args, "--requests")
            .map(|s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: --requests needs a count");
                    std::process::exit(2);
                })
            })
            .unwrap_or(16);
        let out_path = sf_bench::arg_value(&args, "--out");
        let digest_path = sf_bench::arg_value(&args, "--digest");

        let forms = forms(seeds.max(1));
        println!(
            "== loadgen: {} form(s), phases at {:?} client(s) x {per_client} request(s) ==",
            forms.len(),
            clients
        );

        // Per-form checksums: every observation of a form must agree
        // (bit-identical responses), and the collected set is the
        // deterministic digest.
        let mut digests: Vec<Option<Vec<u64>>> = vec![None; forms.len()];
        let mut phases = Vec::new();
        for &n in &clients {
            let (phase, observed) = run_phase(&socket, &forms, n, per_client);
            for (form_idx, sums) in observed {
                match &digests[form_idx] {
                    None => digests[form_idx] = Some(sums),
                    Some(prev) => {
                        if prev != &sums {
                            eprintln!("loadgen: form {form_idx} diverged across requests");
                            std::process::exit(1);
                        }
                    }
                }
            }
            println!(
                "clients {:>3}  p50 {:>9.1} us  p99 {:>9.1} us  {:>8.1} req/s  retries {}  \
                 sheds-recovered {}",
                phase.clients,
                phase.p50_us,
                phase.p99_us,
                phase.throughput_rps,
                phase.retries,
                phase.sheds_recovered
            );
            phases.push(phase);
        }

        let stats = ServeClient::connect_with_retry(&socket, Duration::from_secs(10))
            .and_then(|mut c| c.stats())
            .unwrap_or_else(|e| {
                eprintln!("loadgen: stats fetch failed: {e}");
                std::process::exit(1);
            });
        print_counters(&stats);
        let total_retries: usize = phases.iter().map(|p| p.retries).sum();
        let total_recovered: usize = phases.iter().map(|p| p.sheds_recovered).sum();
        println!("client_retries: {total_retries}");
        println!("sheds_recovered: {total_recovered}");

        if let Some(path) = digest_path {
            let mut text = String::new();
            for (i, sums) in digests.iter().enumerate() {
                let sums = sums.as_ref().map(Vec::as_slice).unwrap_or(&[]);
                let hex: Vec<String> = sums.iter().map(|s| format!("{s:016x}")).collect();
                text.push_str(&format!("form{i} {}\n", hex.join(" ")));
            }
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("digest: {path}");
        }

        if let Some(path) = out_path {
            let probes = stats.program_hits + stats.program_compiles;
            let hit_rate = if probes == 0 {
                0.0
            } else {
                stats.program_hits as f64 / probes as f64
            };
            let mut json = String::new();
            json.push_str("{\n");
            json.push_str("  \"bench\": \"serve\",\n");
            json.push_str(&format!("  \"forms\": {},\n", forms.len()));
            json.push_str(&format!("  \"requests_per_client\": {per_client},\n"));
            json.push_str("  \"phases\": [\n");
            for (i, p) in phases.iter().enumerate() {
                let comma = if i + 1 < phases.len() { "," } else { "" };
                json.push_str(&format!(
                    "    {{\"clients\": {}, \"requests\": {}, \"p50_us\": {:.1}, \
                     \"p99_us\": {:.1}, \"throughput_rps\": {:.1}, \"retries\": {}, \
                     \"sheds_recovered\": {}}}{comma}\n",
                    p.clients,
                    p.requests,
                    p.p50_us,
                    p.p99_us,
                    p.throughput_rps,
                    p.retries,
                    p.sheds_recovered
                ));
            }
            json.push_str("  ],\n");
            json.push_str("  \"daemon\": {\n");
            json.push_str(&format!("    \"requests\": {},\n", stats.requests));
            json.push_str(&format!("    \"ok\": {},\n", stats.ok));
            json.push_str(&format!("    \"errors\": {},\n", stats.errors));
            json.push_str(&format!("    \"sheds\": {},\n", stats.sheds));
            json.push_str(&format!(
                "    \"program_compiles\": {},\n",
                stats.program_compiles
            ));
            json.push_str(&format!("    \"program_hits\": {},\n", stats.program_hits));
            json.push_str(&format!("    \"cache_hit_rate\": {hit_rate:.4},\n"));
            json.push_str(&format!(
                "    \"schedule_hits\": {},\n",
                stats.schedule_hits
            ));
            json.push_str(&format!(
                "    \"schedule_misses\": {},\n",
                stats.schedule_misses
            ));
            json.push_str(&format!(
                "    \"schedule_entries\": {},\n",
                stats.schedule_entries
            ));
            json.push_str(&format!("    \"warm_loaded\": {},\n", stats.warm_loaded));
            json.push_str(&format!("    \"warm_evicted\": {},\n", stats.warm_evicted));
            json.push_str(&format!("    \"degradations\": {}\n", stats.degradations));
            json.push_str("  }\n");
            json.push_str("}\n");
            if let Some(dir) = Path::new(&path).parent() {
                std::fs::create_dir_all(dir).ok();
            }
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote: {path}");
        }
    }
}
