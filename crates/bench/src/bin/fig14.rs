//! Figure 14: end-to-end Transformer inference.
//!
//! Speedup over Huggingface-on-PyTorch for SpaceFusion, TensorRT, Kernl,
//! BladeDISC and NNFusion on Bert, Albert, T5, ViT and Llama2-7B, at
//! batch sizes 1 and 32, on all three architectures. NNFusion appears on
//! Volta only and BladeDISC not on Hopper, as in the paper. Paper:
//! SpaceFusion max 8.79×, average 3.54× over PyTorch; avg 1.27× over
//! TensorRT, 1.34× over Kernl, 2.27× over BladeDISC, 1.21× over
//! NNFusion (Volta).
//!
//! Usage: `fig14 [--quick] [--seq N]`

use sf_baselines::Engine;
use sf_bench::{arg_value, engine_model_us, geomean, print_header, print_row, quick};
use sf_gpu_sim::Arch;
use sf_models::all_models;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    let seq: usize = arg_value(&args, "--seq")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if q { 128 } else { 512 });
    println!("== Figure 14: end-to-end performance (speedup vs PyTorch, seq={seq}) ==");

    let mut models = all_models();
    if q {
        for m in &mut models {
            m.layers = 2;
        }
    }
    let batches: Vec<usize> = if q { vec![1] } else { vec![1, 32] };
    let engines = [
        Engine::SpaceFusion,
        Engine::TensorRt,
        Engine::Kernl,
        Engine::BladeDisc,
        Engine::NnFusion,
    ];

    let mut sf_speedups = Vec::new();
    // Per competitor: (sf speedup, competitor speedup) on the same point.
    let mut pairs: HashMap<&'static str, Vec<(f64, f64)>> = HashMap::new();

    for batch in &batches {
        println!("\n-- batch size = {batch} --");
        for arch in Arch::all() {
            println!("{arch}:");
            print_header(
                "model",
                &models
                    .iter()
                    .map(|m| m.name.to_string())
                    .collect::<Vec<_>>(),
            );
            let py_times: Vec<f64> = models
                .iter()
                .map(|m| engine_model_us(Engine::PyTorch, arch, m, *batch, seq).expect("py"))
                .collect();
            let sf_row: Vec<f64> = models
                .iter()
                .zip(&py_times)
                .map(|(m, &py)| {
                    py / engine_model_us(Engine::SpaceFusion, arch, m, *batch, seq).expect("sf")
                })
                .collect();
            sf_speedups.extend(sf_row.iter().copied());
            print_row("SpaceFusion", &sf_row);
            for e in engines.iter().skip(1) {
                if !e.supports(arch) {
                    println!("{:<28} (not supported on {arch})", e.name());
                    continue;
                }
                let mut row = Vec::new();
                for ((m, &py), &sf) in models.iter().zip(&py_times).zip(&sf_row) {
                    let su = py / engine_model_us(*e, arch, m, *batch, seq).expect("engine");
                    row.push(su);
                    pairs.entry(e.name()).or_default().push((sf, su));
                }
                print_row(e.name(), &row);
            }
        }
    }

    println!(
        "\nSpaceFusion vs PyTorch: geomean {:.2}x, max {:.2}x (paper: avg 3.54x, max 8.79x)",
        geomean(&sf_speedups),
        sf_speedups.iter().cloned().fold(0.0, f64::max)
    );
    for e in engines.iter().skip(1) {
        if let Some(ps) = pairs.get(e.name()) {
            let ratios: Vec<f64> = ps.iter().map(|(sf, other)| sf / other).collect();
            println!(
                "SpaceFusion vs {:<12} geomean {:.2}x, max {:.2}x",
                e.name(),
                geomean(&ratios),
                ratios.iter().cloned().fold(0.0, f64::max)
            );
        }
    }
}
