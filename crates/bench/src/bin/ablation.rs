//! Ablation benches for the design choices called out in `DESIGN.md`
//! (beyond the paper's own Fig. 16(a) ablation):
//!
//! 1. **Streaming-variance rewrite** (extension): Fig. 10(c) LayerNorm vs
//!    the `E[x²]−E[x]²` form that unlocks temporal slicing.
//! 2. **Staging limit**: how the shared-memory staging threshold in the
//!    memory-hierarchy scheduler affects fused MHA.
//! 3. **Early-quit α**: tuner work saved vs schedule quality.
//! 4. **Two-phase cost**: what output-spanning temporal slicing pays in
//!    re-streamed reads (softmax standalone vs fused into attention).
//!
//! Usage: `ablation [--quick]`

use sf_bench::{print_header, print_row, quick, REPLAY_INSTANCES};
use sf_gpu_sim::Arch;
use sf_models::subgraphs;
use spacefusion::codegen::{estimate_cost, KernelProgram};
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::rewrite::streaming_variance;
use spacefusion::sched::{resource_aware_slicing, SlicingOptions};
use spacefusion::smg::build_smg;
use spacefusion::tune::tune;

fn rewrite_ablation(q: bool) {
    println!("== Ablation 1: streaming-variance rewrite on LayerNorm (Ampere) ==");
    let sizes: Vec<usize> = if q {
        vec![4096]
    } else {
        vec![4096, 16384, 32768, 65536]
    };
    print_header(
        "N (rows=1024)",
        &sizes
            .iter()
            .map(|s| format!("{}K", s / 1024))
            .collect::<Vec<_>>(),
    );
    let arch = Arch::Ampere;
    let mut base_row = Vec::new();
    let mut rw_row = Vec::new();
    let mut kernels_row = Vec::new();
    for &n in &sizes {
        let g = subgraphs::layernorm(1024, n);
        let base = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
            .compile(&g)
            .expect("base compile");
        let r = streaming_variance(&g).expect("pattern");
        let rw = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
            .compile(&r)
            .expect("rewritten compile");
        let tb = base.profile(REPLAY_INSTANCES).time_us;
        let tr = rw.profile(REPLAY_INSTANCES).time_us;
        base_row.push(tb);
        rw_row.push(tr);
        kernels_row.push(base.kernels.len() as f64);
    }
    print_row("baseline (Fig.10c) µs", &base_row);
    print_row("streaming rewrite µs", &rw_row);
    print_row("baseline kernel count", &kernels_row);
    let gain: Vec<f64> = base_row.iter().zip(&rw_row).map(|(b, r)| b / r).collect();
    print_row("rewrite speedup", &gain);
    println!();
}

fn staging_ablation(q: bool) {
    println!("== Ablation 2: shared-memory staging limit (MHA 32x1K, Ampere) ==");
    let g = subgraphs::mha(if q { 4 } else { 32 }, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    let arch = Arch::Ampere.config();
    print_header(
        "staging limit",
        &["smem/16", "smem/8", "smem/4", "smem/2"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    // The staging limit is applied inside resource-aware slicing via the
    // architecture; emulate the sweep by scaling the budget the slicer
    // sees (the divisor is fixed at 4 internally).
    let mut row = Vec::new();
    for div in [16u64, 8, 4, 2] {
        let mut a = arch.clone();
        // Keep the real budget for feasibility but shift the staging
        // threshold by scaling smem_per_block seen by assign_memory.
        a.smem_per_block = arch.smem_per_block * 4 / div;
        let schedules =
            resource_aware_slicing(&g, &smg, &a, &SlicingOptions::default()).expect("slicing");
        let kps: Vec<KernelProgram> = schedules
            .into_iter()
            .map(|s| KernelProgram::new("mha", g.clone(), s))
            .collect();
        let Some(r) = tune(&kps, &arch, g.instances as u64, 0.25) else {
            eprintln!(
                "staging ablation: no feasible schedule at staging budget smem/{div} — \
                 skipping the sweep"
            );
            return;
        };
        row.push(r.best_us);
    }
    print_row("best est. µs", &row);
    println!();
}

fn alpha_ablation(q: bool) {
    println!("== Ablation 3: early-quit α (MHA 32x1K, Ampere) ==");
    let g = subgraphs::mha(if q { 4 } else { 32 }, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    let arch = Arch::Ampere.config();
    let schedules = resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap();
    let kps: Vec<KernelProgram> = schedules
        .into_iter()
        .map(|s| KernelProgram::new("mha", g.clone(), s))
        .collect();
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "alpha", "evaluated", "pruned", "best est. µs"
    );
    for alpha in [1.0f64, 0.5, 0.25, 0.1] {
        let Some(r) = tune(&kps, &arch, g.instances as u64, alpha) else {
            eprintln!("alpha ablation: the slicer produced no tunable candidates — skipping");
            return;
        };
        println!(
            "{alpha:<8} {:>10} {:>10} {:>12.1}",
            r.evaluated, r.pruned, r.best_us
        );
    }
    println!("(the winner never changes; α only trades tuner work)\n");
}

fn two_phase_ablation(q: bool) {
    println!("== Ablation 4: two-phase cost of output-spanning slicing (Ampere) ==");
    let n = if q { 2048 } else { 8192 };
    let arch = Arch::Ampere;
    // The same softmax scheduled two ways at fixed 4-row blocks: flat
    // (whole row on chip, one pass over the input) vs temporally sliced
    // (tiny footprint, but output spans the sliced dim → phase 2 must
    // re-stream the tiles).
    let sm = subgraphs::softmax(1024, n);
    let flat = sf_baselines::compile_fixed(arch, &sm, 4, None).expect("flat");
    let sliced = sf_baselines::compile_fixed(arch, &sm, 4, Some(512)).expect("sliced");
    let input_bytes: u64 = sm
        .values()
        .iter()
        .filter(|v| matches!(v.kind, sf_ir::ValueKind::Input))
        .map(|v| (v.shape.volume() * v.dtype.size_bytes()) as u64)
        .sum();
    for (label, p) in [
        ("flat (row on chip)", &flat),
        ("temporal two-phase", &sliced),
    ] {
        let k = &p.kernels[0];
        let cost = estimate_cost(k, p.instances as u64);
        println!(
            "  {label:<22} two-phase={:<5} smem {:>4} KiB  reads {:.1}x the input",
            k.schedule
                .temporal
                .as_ref()
                .map(|t| t.plan.two_phase)
                .unwrap_or(false),
            k.schedule.smem_per_block(&k.graph) >> 10,
            cost.global_read_bytes as f64 / input_bytes.max(1) as f64,
        );
    }
    println!("  (two-phase trades a 2x read amplification for an O(tile) footprint)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    rewrite_ablation(q);
    staging_ablation(q);
    alpha_ablation(q);
    two_phase_ablation(q);
}
