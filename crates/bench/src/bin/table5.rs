//! Table 5: model compilation time.
//!
//! Wall-clock time to compile Bert, ViT and T5 under the BladeDISC-like,
//! TensorRT-like and SpaceFusion pipelines. The paper's ordering —
//! SpaceFusion compiles ~2.4× faster than both, thanks to lightweight
//! analysis, pruned search spaces and one-shot compilation of repetitive
//! subprograms — is the reproduced property.
//!
//! Usage: `table5 [--quick]`

use sf_baselines::Engine;
use sf_bench::quick;
use sf_gpu_sim::Arch;
use sf_models::{bert, t5, vit, TransformerConfig};
use std::time::Instant;

fn compile_model_s(engine: Engine, model: &TransformerConfig, batch: usize, seq: usize) -> f64 {
    let t0 = Instant::now();
    for w in model.subprograms(batch, seq) {
        let _ = engine.compile(Arch::Ampere, &w.graph).expect("compile");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    let seq = if q { 128 } else { 512 };
    println!("== Table 5: compilation time for models (Ampere, seq={seq}) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "Model", "BladeDISC", "TensorRT", "SpaceFusion"
    );
    let mut models = vec![bert(), vit(), t5()];
    if q {
        for m in &mut models {
            m.layers = 2;
        }
    }
    for m in &models {
        let blade = compile_model_s(Engine::BladeDisc, m, 1, seq);
        let trt = compile_model_s(Engine::TensorRt, m, 1, seq);
        let sf = compile_model_s(Engine::SpaceFusion, m, 1, seq);
        println!(
            "{:<10} {:>12.3} s {:>12.3} s {:>12.3} s",
            m.name, blade, trt, sf
        );
    }
    println!("\n(paper @ GPU: Bert 176.2/141.1/68.4 s — SpaceFusion ~2.4x faster on average)");
}
