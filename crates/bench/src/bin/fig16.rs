//! Figure 16: ablation and sensitivity studies.
//!
//! (a) Ablation on Ampere: Base(SS) (spatial slicing only, expert-fixed
//!     blocks), Base+AS (spatial + auto-scheduling), Base+TS (spatial +
//!     temporal, expert-fixed), and full SpaceFusion, normalized to
//!     SpaceFusion. Paper: Base(SS) ≥ 51%, Base+AS ≤ 79%,
//!     Base+TS 72–89%.
//! (b) Input-size sensitivity (small/medium/large prompts; image sizes
//!     for ViT), normalized to the best per model. Paper: at batch 1
//!     gains shrink with input size; at batch 32 they mostly grow.
//! (c) Architecture sensitivity: SpaceFusion performance and speedup over
//!     PyTorch across Volta/Ampere/Hopper, normalized to Volta. Paper:
//!     perf ratio ≈ 1 : 2.26 : 4.34 at batch 32 (peak ratio 1:2.79:6.75).
//!
//! Usage: `fig16 [--part a|b|c] [--quick]`

use sf_baselines::Engine;
use sf_bench::{arg_value, engine_model_us, options_model_us, print_header, print_row, quick};
use sf_gpu_sim::Arch;
use sf_models::{all_models, vit_seq_for_image, TransformerConfig};
use spacefusion::compiler::CompileOptions;
use spacefusion::sched::SlicingOptions;

fn models(q: bool) -> Vec<TransformerConfig> {
    let mut ms = all_models();
    if q {
        for m in &mut ms {
            m.layers = 1;
        }
        ms.truncate(2);
    }
    ms
}

fn ablation_variants() -> Vec<(&'static str, CompileOptions)> {
    let base_ss = CompileOptions {
        autotune: false,
        slicing: SlicingOptions {
            enable_temporal: false,
            fixed_spatial_block: Some(64),
            ..Default::default()
        },
        ..Default::default()
    };
    let base_as = CompileOptions {
        autotune: true,
        slicing: SlicingOptions {
            enable_temporal: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let base_ts = CompileOptions {
        autotune: false,
        slicing: SlicingOptions {
            enable_temporal: true,
            fixed_spatial_block: Some(64),
            fixed_temporal_block: Some(64),
            ..Default::default()
        },
        ..Default::default()
    };
    vec![
        ("Base(SS)", base_ss),
        ("Base+AS", base_as),
        ("Base+TS", base_ts),
        ("SpaceFusion", CompileOptions::default()),
    ]
}

fn part_a(q: bool) {
    println!("== Figure 16(a): ablation (perf normalized to SpaceFusion, Ampere) ==");
    let arch = Arch::Ampere;
    let seq = if q { 128 } else { 2048 };
    let ms = models(q);
    for batch in if q { vec![1] } else { vec![1, 32] } {
        println!("-- batch size = {batch} --");
        print_header(
            "variant",
            &ms.iter().map(|m| m.name.to_string()).collect::<Vec<_>>(),
        );
        let full: Vec<f64> = ms
            .iter()
            .map(|m| options_model_us(&CompileOptions::default(), arch, m, batch, seq).unwrap())
            .collect();
        for (name, opts) in ablation_variants() {
            let row: Vec<f64> = ms
                .iter()
                .zip(&full)
                .map(|(m, &f)| f / options_model_us(&opts, arch, m, batch, seq).unwrap())
                .collect();
            print_row(name, &row);
        }
    }
}

fn part_b(q: bool) {
    println!("== Figure 16(b): input-size sensitivity (normalized to best, Ampere) ==");
    let arch = Arch::Ampere;
    let ms = models(q);
    let prompts = [("Small", 128usize), ("Medium", 512), ("Large", 1024)];
    let images = [("Small", 224usize), ("Medium", 512), ("Large", 768)];
    for batch in if q { vec![1] } else { vec![1, 32] } {
        println!("-- batch size = {batch} (speedup vs PyTorch, normalized to per-model best) --");
        print_header(
            "size",
            &ms.iter().map(|m| m.name.to_string()).collect::<Vec<_>>(),
        );
        // speedups[model][size]
        let mut speedups: Vec<Vec<f64>> = Vec::new();
        for m in &ms {
            let mut per_size = Vec::new();
            for i in 0..3 {
                let seq = if m.fixed_seq.is_some() {
                    vit_seq_for_image(images[i].1)
                } else {
                    prompts[i].1
                };
                let mut m2 = m.clone();
                m2.fixed_seq = None; // let the requested seq apply (ViT sizes).
                let py = engine_model_us(Engine::PyTorch, arch, &m2, batch, seq).unwrap();
                let sf = engine_model_us(Engine::SpaceFusion, arch, &m2, batch, seq).unwrap();
                per_size.push(py / sf);
            }
            speedups.push(per_size);
        }
        for (i, (label, _)) in prompts.iter().enumerate() {
            let row: Vec<f64> = speedups
                .iter()
                .map(|per_size| {
                    let best = per_size.iter().cloned().fold(0.0, f64::max);
                    per_size[i] / best
                })
                .collect();
            print_row(label, &row);
        }
    }
}

fn part_c(q: bool) {
    println!("== Figure 16(c): architecture sensitivity (normalized to Volta) ==");
    let seq = if q { 128 } else { 512 };
    let ms = models(q);
    for batch in if q { vec![32] } else { vec![1, 32] } {
        println!("-- batch size = {batch} --");
        print_header(
            "metric",
            &ms.iter().map(|m| m.name.to_string()).collect::<Vec<_>>(),
        );
        let mut perf: Vec<Vec<f64>> = Vec::new(); // [arch][model] perf = 1/time.
        let mut su: Vec<Vec<f64>> = Vec::new();
        for arch in Arch::all() {
            let mut p_row = Vec::new();
            let mut s_row = Vec::new();
            for m in &ms {
                let sf = engine_model_us(Engine::SpaceFusion, arch, m, batch, seq).unwrap();
                let py = engine_model_us(Engine::PyTorch, arch, m, batch, seq).unwrap();
                p_row.push(1.0 / sf);
                s_row.push(py / sf);
            }
            perf.push(p_row);
            su.push(s_row);
        }
        for (ai, arch) in Arch::all().iter().enumerate() {
            let row: Vec<f64> = perf[ai].iter().zip(&perf[0]).map(|(p, v)| p / v).collect();
            print_row(&format!("Perf {arch}"), &row);
        }
        for (ai, arch) in Arch::all().iter().enumerate() {
            let row: Vec<f64> = su[ai].iter().zip(&su[0]).map(|(s, v)| s / v).collect();
            print_row(&format!("Su {arch}"), &row);
        }
        let avg: Vec<f64> = (0..3)
            .map(|ai| {
                let r: Vec<f64> = perf[ai].iter().zip(&perf[0]).map(|(p, v)| p / v).collect();
                sf_bench::geomean(&r)
            })
            .collect();
        println!(
            "average perf ratio Volta:Ampere:Hopper = 1 : {:.2} : {:.2} (paper: 1 : 2.26 : 4.34; peak 1 : 2.79 : 6.75)",
            avg[1], avg[2]
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    match arg_value(&args, "--part").as_deref() {
        Some("a") => part_a(q),
        Some("b") => part_b(q),
        Some("c") => part_c(q),
        _ => {
            part_a(q);
            part_b(q);
            part_c(q);
        }
    }
}
