//! Table 4: compilation-time breakdown for MHA.
//!
//! Reports the elapsed time of the auto-scheduling phases
//! (`TS.getPriorDim + TS.slice`, `enumCfg`, `SS.getDims + SS.slice`) and
//! the auto-tuning phase for MHA at (batch 32, seq 256) and (batch 32,
//! seq 1024). In the paper the tuning phase dominates (test runs on the
//! GPU, ~33 s); here candidates are evaluated on the performance model,
//! so the totals are far smaller but the *structure* — analysis is
//! milliseconds, tuning dominates — is preserved.
//!
//! Usage: `table4`

use sf_gpu_sim::Arch;
use sf_models::subgraphs;
use spacefusion::compiler::{CompileOptions, Compiler};

fn main() {
    println!("== Table 4: compilation time break down for MHA (Ampere) ==");
    println!(
        "{:<16} {:>18} {:>12} {:>18} {:>12} {:>12}",
        "Workload", "TS.getPriorDim", "enumCfg", "SS.getDims", "Tuning", "Total"
    );
    println!(
        "{:<16} {:>18} {:>12} {:>18} {:>12} {:>12}",
        "", "+TS.slice", "", "+SS.slice", "", ""
    );
    for (batch, seq) in [(32usize, 1024usize), (32, 256)] {
        let g = subgraphs::mha(batch, 16, seq, 64);
        let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
        let program = compiler.compile(&g).expect("compile");
        let s = &program.stats;
        println!(
            "{:<16} {:>15.2} µs {:>9.2} µs {:>15.2} µs {:>9.2} µs {:>9.2} µs",
            format!("MHA({batch},{seq})"),
            s.temporal_us,
            s.enum_us,
            s.spatial_us,
            s.tune_us,
            s.total_us
        );
        println!(
            "{:<16} configs={}, evaluated={}, early-quit pruned={}",
            "", s.configs, s.evaluated, s.pruned
        );
    }
    println!("\n(paper @ GPU: MHA(32,1024): 17.31 ms / 2.63 ms / 0.23 ms / 33.04 s / 36.33 s)");
}
