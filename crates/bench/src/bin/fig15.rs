//! Figure 15: memory and cache analysis.
//!
//! L1 cache misses, L2 cache misses and device-memory data movement of
//! the fused and unfused baselines, normalized to SpaceFusion (lower is
//! better), for MLP(20,64), MLP(4,128), LN(4K), LN(32K), MHA(32,1K) and
//! MHA(32,2K). The fused baselines are cuBLASLt for MLP, the PyTorch Op
//! kernel for LN and FlashAttention for MHA, as in the paper. Paper:
//! SpaceFusion achieves up to 83.0% fewer L1 misses, 94.1% fewer L2
//! misses and 96.45% less data movement; LN gains more speedup per byte
//! saved than MHA (memory- vs compute-intensity).
//!
//! Usage: `fig15 [--quick]`

use sf_baselines::{flash_attention_v1, pytorch_op_layernorm, Engine};
use sf_bench::{print_header, print_row, quick, REPLAY_INSTANCES};
use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::subgraphs;
use spacefusion::compiler::CompiledProgram;
use spacefusion::compiler::{Compiler, FusionPolicy};

struct Case {
    label: String,
    graph: Graph,
    fused_baseline: Box<dyn Fn(&Graph) -> CompiledProgram>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    let arch = Arch::Ampere;
    println!("== Figure 15: memory & cache analysis on {arch} (normalized to SpaceFusion, lower is better) ==");

    let ln_big = if q { 8192 } else { 32768 };
    let mha_big = if q { 1024 } else { 2048 };
    let cases: Vec<Case> = vec![
        Case {
            label: "MLP(20,64)".into(),
            graph: subgraphs::mlp_stack(20, 64, 256),
            fused_baseline: Box::new(move |g| Engine::TensorRt.compile(arch, g).expect("cublaslt")),
        },
        Case {
            label: "MLP(4,128)".into(),
            graph: subgraphs::mlp_stack(4, 128, 256),
            fused_baseline: Box::new(move |g| Engine::TensorRt.compile(arch, g).expect("cublaslt")),
        },
        Case {
            label: "LN(4K)".into(),
            graph: subgraphs::layernorm(4096, 4096),
            fused_baseline: Box::new(move |g| pytorch_op_layernorm(arch, g).expect("ln op")),
        },
        Case {
            label: format!("LN({}K)", ln_big / 1024),
            graph: subgraphs::layernorm(ln_big, ln_big),
            fused_baseline: Box::new(move |g| pytorch_op_layernorm(arch, g).expect("ln op")),
        },
        Case {
            label: "MHA(32,1K)".into(),
            graph: subgraphs::mha(32, 16, 1024, 64),
            fused_baseline: Box::new(move |g| {
                flash_attention_v1(arch, g).expect("supported").expect("fa")
            }),
        },
        Case {
            label: format!("MHA(32,{}K)", mha_big / 1024),
            graph: subgraphs::mha(32, 16, mha_big, 64),
            fused_baseline: Box::new(move |g| {
                flash_attention_v1(arch, g).expect("supported").expect("fa")
            }),
        },
    ];

    print_header(
        "metric / workload",
        &cases
            .iter()
            .map(|c| c.label.to_string())
            .collect::<Vec<_>>(),
    );

    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("L1 miss (fused base)", Vec::new()),
        ("L1 miss (unfused)", Vec::new()),
        ("L2 miss (fused base)", Vec::new()),
        ("L2 miss (unfused)", Vec::new()),
        ("data mv (fused base)", Vec::new()),
        ("data mv (unfused)", Vec::new()),
    ];
    let mut sf_speedup_vs_unfused: Vec<(String, f64, f64)> = Vec::new();

    for case in &cases {
        let sf = Engine::SpaceFusion.compile(arch, &case.graph).expect("sf");
        let fused = (case.fused_baseline)(&case.graph);
        // MLP's unfused baseline is the manually-tuned cuBLAS sequence
        // (bare launches); LN/MHA baselines are eager PyTorch, as in the
        // paper.
        let unfused = if case.label.starts_with("MLP") {
            Compiler::with_policy(arch, FusionPolicy::Unfused)
                .compile(&case.graph)
                .expect("cublas")
        } else {
            Engine::PyTorch.compile(arch, &case.graph).expect("pytorch")
        };

        let r_sf = sf.profile(REPLAY_INSTANCES);
        let r_fused = fused.profile(REPLAY_INSTANCES);
        let r_un = unfused.profile(REPLAY_INSTANCES);

        let norm = |x: u64, base: u64| x as f64 / base.max(1) as f64;
        rows[0]
            .1
            .push(norm(r_fused.stats.l1_misses, r_sf.stats.l1_misses));
        rows[1]
            .1
            .push(norm(r_un.stats.l1_misses, r_sf.stats.l1_misses));
        rows[2]
            .1
            .push(norm(r_fused.stats.l2_misses, r_sf.stats.l2_misses));
        rows[3]
            .1
            .push(norm(r_un.stats.l2_misses, r_sf.stats.l2_misses));
        rows[4].1.push(norm(
            r_fused.stats.dram_total_bytes(),
            r_sf.stats.dram_total_bytes(),
        ));
        rows[5].1.push(norm(
            r_un.stats.dram_total_bytes(),
            r_sf.stats.dram_total_bytes(),
        ));
        sf_speedup_vs_unfused.push((
            case.label.clone(),
            r_un.time_us / r_sf.time_us,
            r_un.stats.dram_total_bytes() as f64 / r_sf.stats.dram_total_bytes().max(1) as f64,
        ));
    }
    for (name, vals) in &rows {
        print_row(name, vals);
    }

    println!("\nspeedup vs data-movement reduction (unfused baseline):");
    for (label, su, dm) in &sf_speedup_vs_unfused {
        println!("  {label:<12} speedup {su:>6.2}x   data movement reduced {dm:>6.2}x");
    }
    println!("(paper: LN converts traffic savings into speedup more directly than MHA)");
}
