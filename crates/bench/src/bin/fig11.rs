//! Figure 11: fused MLP layer stacks and the fused LSTM cell.
//!
//! (a) Speedup of SpaceFusion over cuBLASLt (GEMM + epilogue fusion) as
//!     the number of fused MLP layers grows from 2 to 20, per
//!     architecture. Paper: max 3.15×, average 2.35×.
//! (b) Speedup of cuBLASLt and SpaceFusion over cuBLAS (fully unfused,
//!     5 kernels) for an LSTM cell at hidden sizes 128–1k. Paper: max
//!     2.87×, average 2.29× for SpaceFusion.
//!
//! Usage: `fig11 [--part a|b] [--quick]`

use sf_baselines::Engine;
use sf_bench::{
    arg_value, engine_subgraph_us, geomean, library_unfused_us, print_header, print_row, quick,
};
use sf_gpu_sim::Arch;
use sf_models::subgraphs;

fn part_a(quick: bool) {
    println!("== Figure 11(a): fused MLP layers (speedup vs cuBLASLt) ==");
    let layer_counts: Vec<usize> = if quick {
        vec![2, 8, 20]
    } else {
        vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    };
    let (m, hidden) = (2048, 256); // the paper's fusable regime: N, K <= 256.
    print_header(
        "layers",
        &layer_counts
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>(),
    );
    let mut all = Vec::new();
    for arch in Arch::all() {
        let mut row = Vec::new();
        for &layers in &layer_counts {
            let g = subgraphs::mlp_stack(layers, m, hidden);
            let base =
                engine_subgraph_us(Engine::TensorRt, arch, &g).expect("cuBLASLt-like compile");
            let sf = engine_subgraph_us(Engine::SpaceFusion, arch, &g).expect("sf compile");
            row.push(base / sf);
        }
        all.extend(row.iter().copied());
        print_row(&format!("{arch}"), &row);
    }
    println!(
        "max speedup {:.2}x, geomean {:.2}x (paper: 3.15x max, 2.35x avg)\n",
        all.iter().cloned().fold(0.0, f64::max),
        geomean(&all)
    );
}

fn part_b(quick: bool) {
    println!("== Figure 11(b): fused LSTM cell (speedup vs cuBLAS) ==");
    let hiddens: Vec<usize> = if quick {
        vec![128, 1024]
    } else {
        vec![128, 256, 512, 1024]
    };
    let batch = 256;
    print_header(
        "hidden",
        &hiddens.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let mut sf_all = Vec::new();
    for arch in Arch::all() {
        let mut lt_row = Vec::new();
        let mut sf_row = Vec::new();
        for &h in &hiddens {
            let g = subgraphs::lstm_cell(batch, h);
            let cublas = library_unfused_us(arch, &g).expect("cuBLAS");
            let cublaslt = engine_subgraph_us(Engine::TensorRt, arch, &g).expect("cuBLASLt");
            let sf = engine_subgraph_us(Engine::SpaceFusion, arch, &g).expect("sf");
            lt_row.push(cublas / cublaslt);
            sf_row.push(cublas / sf);
        }
        sf_all.extend(sf_row.iter().copied());
        print_row(&format!("{arch} cuBLASLt"), &lt_row);
        print_row(&format!("{arch} SpaceFusion"), &sf_row);
    }
    println!(
        "SpaceFusion max {:.2}x, geomean {:.2}x (paper: 2.87x max, 2.29x avg)",
        sf_all.iter().cloned().fold(0.0, f64::max),
        geomean(&sf_all)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    match arg_value(&args, "--part").as_deref() {
        Some("a") => part_a(q),
        Some("b") => part_b(q),
        _ => {
            part_a(q);
            part_b(q);
        }
    }
}
