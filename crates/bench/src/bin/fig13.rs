//! Figure 13: fused multi-head attention performance.
//!
//! Speedup over unfused PyTorch for FlashAttention-in-Triton,
//! FlashAttention (CUDA), FlashAttention 2, and SpaceFusion, at batch
//! sizes 1 and 32 and sequence lengths 64–1k (Volta) / 64–8k (Ampere,
//! Hopper). FlashAttention's CUDA kernels are absent on Volta, as in the
//! paper. Paper: max 10.35×, average 5.40× over the baseline; performance
//! comparable to FlashAttention 2.
//!
//! Usage: `fig13 [--quick]`

use sf_baselines::{flash_attention_triton, flash_attention_v1, flash_attention_v2, Engine};
use sf_bench::{
    arg_value, engine_subgraph_us, geomean, print_header, print_row, profiled_us, quick, Report,
};
use sf_gpu_sim::Arch;
use sf_models::subgraphs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = quick(&args);
    let csv_path = arg_value(&args, "--csv");
    let mut report = Report::with_header(&["batch", "arch", "system", "seq", "speedup"]);
    println!("== Figure 13: fused MHA (speedup vs PyTorch) ==");
    let (heads, head_dim) = (16, 64);
    let mut sf_speedups = Vec::new();
    for batch in [1usize, 32] {
        println!("\n-- batch size = {batch} --");
        for arch in Arch::all() {
            let seqs: Vec<usize> = if q {
                vec![128, 1024]
            } else if arch == Arch::Volta {
                vec![64, 128, 256, 512, 1024]
            } else {
                vec![64, 128, 256, 512, 1024, 2048, 8192]
            };
            println!("{arch}:");
            print_header(
                "seq",
                &seqs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            );
            let mut triton_row = Vec::new();
            let mut fa_row: Vec<f64> = Vec::new();
            let mut fa2_row: Vec<f64> = Vec::new();
            let mut sf_row = Vec::new();
            for &seq in &seqs {
                let g = subgraphs::mha(batch, heads, seq, head_dim);
                let py = engine_subgraph_us(Engine::PyTorch, arch, &g).expect("pytorch");
                let tr = profiled_us(&flash_attention_triton(arch, &g).expect("fa triton"));
                triton_row.push(py / tr);
                if let Some(fa) = flash_attention_v1(arch, &g) {
                    fa_row.push(py / profiled_us(&fa.expect("fa")));
                }
                if let Some(fa2) = flash_attention_v2(arch, &g) {
                    fa2_row.push(py / profiled_us(&fa2.expect("fa2")));
                }
                let sf = engine_subgraph_us(Engine::SpaceFusion, arch, &g).expect("sf");
                sf_row.push(py / sf);
                sf_speedups.push(py / sf);
            }
            for (i, &seq) in seqs.iter().enumerate() {
                report.row(
                    &[
                        &batch.to_string(),
                        &arch.to_string(),
                        "FA-Triton",
                        &seq.to_string(),
                    ],
                    &[triton_row[i]],
                );
                report.row(
                    &[
                        &batch.to_string(),
                        &arch.to_string(),
                        "SpaceFusion",
                        &seq.to_string(),
                    ],
                    &[sf_row[i]],
                );
            }
            print_row("FlashAttn Triton", &triton_row);
            if fa_row.is_empty() {
                println!("{:<28} (not supported on Volta)", "FlashAttention");
                println!("{:<28} (not supported on Volta)", "FlashAttention 2");
            } else {
                print_row("FlashAttention", &fa_row);
                print_row("FlashAttention 2", &fa2_row);
            }
            print_row("SpaceFusion", &sf_row);
        }
    }
    println!(
        "\nSpaceFusion vs PyTorch: geomean {:.2}x, max {:.2}x (paper: avg 5.40x, max 10.35x)",
        geomean(&sf_speedups),
        sf_speedups.iter().cloned().fold(0.0, f64::max)
    );
    if let Some(path) = csv_path {
        report.save(&path).expect("write csv");
        println!("(series written to {path})");
    }
}
