//! Criterion benchmarks of the GPU performance model.
//!
//! The cache simulator must sustain millions of line touches per second
//! for the figure sweeps to be tractable; these benches keep it honest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sf_baselines::Engine;
use sf_gpu_sim::{Cache, GpuArch, Profiler};
use sf_models::subgraphs;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("lru_stream_100k_lines", |b| {
        b.iter(|| {
            let mut cache = Cache::new(40 << 20, 128, 16);
            for i in 0..100_000u64 {
                cache.access_line(std::hint::black_box(i % 400_000));
            }
            cache.misses()
        })
    });
    group.bench_function("lru_hot_set_100k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(40 << 20, 128, 16);
            for i in 0..100_000u64 {
                cache.access_line(std::hint::black_box(i % 1024));
            }
            cache.hits()
        })
    });
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    c.bench_function("profiler/tile_streams", |b| {
        let arch = GpuArch::ampere();
        b.iter(|| {
            let mut p = Profiler::new(&arch);
            let buf = p.alloc(64 << 20);
            p.begin_kernel("stream", 512, 0, 0);
            for blk in 0..512u64 {
                p.begin_block();
                p.load_tile(buf, blk * 65536, 8192, 8, 8192);
            }
            p.end_kernel();
            p.stats().dram_read_bytes
        })
    });
}

fn bench_end_to_end_profile(c: &mut Criterion) {
    let g = subgraphs::mha(4, 8, 512, 64);
    let program = Engine::SpaceFusion
        .compile(sf_gpu_sim::Arch::Ampere, &g)
        .unwrap();
    c.bench_function("profile/fused_mha_512", |b| {
        b.iter(|| program.profile(2).time_us)
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_profiler, bench_end_to_end_profile
);
criterion_main!(benches);
