//! Benchmarks of the GPU performance model.
//!
//! The cache simulator must sustain millions of line touches per second
//! for the figure sweeps to be tractable; these benches keep it honest.

use sf_baselines::Engine;
use sf_bench::timing::{bench, bench_throughput};
use sf_gpu_sim::{Cache, GpuArch, Profiler};
use sf_models::subgraphs;

fn bench_cache() {
    bench_throughput("cache/lru_stream_100k_lines", 100_000, || {
        let mut cache = Cache::new(40 << 20, 128, 16);
        for i in 0..100_000u64 {
            cache.access_line(std::hint::black_box(i % 400_000));
        }
        cache.misses()
    });
    bench_throughput("cache/lru_hot_set_100k", 100_000, || {
        let mut cache = Cache::new(40 << 20, 128, 16);
        for i in 0..100_000u64 {
            cache.access_line(std::hint::black_box(i % 1024));
        }
        cache.hits()
    });
}

fn bench_profiler() {
    let arch = GpuArch::ampere();
    bench("profiler/tile_streams", || {
        let mut p = Profiler::new(&arch);
        let buf = p.alloc(64 << 20);
        p.begin_kernel("stream", 512, 0, 0);
        for blk in 0..512u64 {
            p.begin_block();
            p.load_tile(buf, blk * 65536, 8192, 8, 8192);
        }
        p.end_kernel();
        p.stats().dram_read_bytes
    });
}

fn bench_end_to_end_profile() {
    let g = subgraphs::mha(4, 8, 512, 64);
    let program = Engine::SpaceFusion
        .compile(sf_gpu_sim::Arch::Ampere, &g)
        .unwrap();
    bench("profile/fused_mha_512", || program.profile(2).time_us);
}

fn main() {
    bench_cache();
    bench_profiler();
    bench_end_to_end_profile();
}
