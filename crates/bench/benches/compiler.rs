//! Criterion benchmarks of the compiler hot paths.
//!
//! These quantify the "lightweight analysis" claim of §6.5: SMG
//! construction, slicing analysis, configuration enumeration and the
//! full compile pipeline are all sub-millisecond per subprogram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_gpu_sim::{Arch, GpuArch};
use sf_models::subgraphs;
use spacefusion::compiler::{CompileOptions, Compiler};
use spacefusion::sched::{resource_aware_slicing, SlicingOptions};
use spacefusion::slicer::{eligible_spatial_dims, pick_temporal_dim, plan_temporal};
use spacefusion::smg::build_smg;

fn bench_smg_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("smg_build");
    for (name, g) in [
        ("mha_1k", subgraphs::mha(32, 16, 1024, 64)),
        ("layernorm_4k", subgraphs::layernorm(4096, 4096)),
        ("mlp20", subgraphs::mlp_stack(20, 2048, 256)),
    ] {
        group.bench_function(name, |b| b.iter(|| build_smg(std::hint::black_box(&g)).unwrap()));
    }
    group.finish();
}

fn bench_slicers(c: &mut Criterion) {
    let g = subgraphs::mha(32, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    c.bench_function("spatial_slicer/mha", |b| {
        b.iter(|| eligible_spatial_dims(std::hint::black_box(&g), &smg))
    });
    let spatial = eligible_spatial_dims(&g, &smg);
    c.bench_function("temporal_slicer/mha", |b| {
        b.iter(|| {
            let d = pick_temporal_dim(&g, &smg, &spatial).unwrap();
            plan_temporal(&g, &smg, d).unwrap()
        })
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let g = subgraphs::mha(32, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    let arch = GpuArch::ampere();
    c.bench_function("resource_aware_slicing/mha", |b| {
        b.iter(|| {
            resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap()
        })
    });
}

fn bench_full_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for seq in [256usize, 1024] {
        let g = subgraphs::mha(32, 16, seq, 64);
        group.bench_with_input(BenchmarkId::new("mha", seq), &g, |b, g| {
            b.iter(|| {
                // Fresh compiler: no schedule-cache hits.
                Compiler::new(Arch::Ampere, CompileOptions::default())
                    .compile(g)
                    .unwrap()
            })
        });
    }
    let ln = subgraphs::layernorm(4096, 4096);
    group.bench_function("layernorm_4k", |b| {
        b.iter(|| {
            Compiler::new(Arch::Ampere, CompileOptions::default())
                .compile(&ln)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_smg_construction, bench_slicers, bench_enumeration, bench_full_compile
);
criterion_main!(benches);
