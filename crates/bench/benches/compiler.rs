//! Benchmarks of the compiler hot paths.
//!
//! These quantify the "lightweight analysis" claim of §6.5: SMG
//! construction, slicing analysis, configuration enumeration and the
//! full compile pipeline are all sub-millisecond per subprogram.

use sf_bench::timing::bench;
use sf_gpu_sim::{Arch, GpuArch};
use sf_models::subgraphs;
use spacefusion::compiler::{CompileOptions, Compiler};
use spacefusion::sched::{resource_aware_slicing, SlicingOptions};
use spacefusion::slicer::{eligible_spatial_dims, pick_temporal_dim, plan_temporal};
use spacefusion::smg::build_smg;

fn bench_smg_construction() {
    for (name, g) in [
        ("smg_build/mha_1k", subgraphs::mha(32, 16, 1024, 64)),
        ("smg_build/layernorm_4k", subgraphs::layernorm(4096, 4096)),
        ("smg_build/mlp20", subgraphs::mlp_stack(20, 2048, 256)),
    ] {
        bench(name, || build_smg(std::hint::black_box(&g)).unwrap());
    }
}

fn bench_slicers() {
    let g = subgraphs::mha(32, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    bench("spatial_slicer/mha", || {
        eligible_spatial_dims(std::hint::black_box(&g), &smg)
    });
    let spatial = eligible_spatial_dims(&g, &smg);
    bench("temporal_slicer/mha", || {
        let d = pick_temporal_dim(&g, &smg, &spatial).unwrap();
        plan_temporal(&g, &smg, d).unwrap()
    });
}

fn bench_enumeration() {
    let g = subgraphs::mha(32, 16, 1024, 64);
    let smg = build_smg(&g).unwrap();
    let arch = GpuArch::ampere();
    bench("resource_aware_slicing/mha", || {
        resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap()
    });
}

fn bench_full_compile() {
    for seq in [256usize, 1024] {
        let g = subgraphs::mha(32, 16, seq, 64);
        bench(&format!("compile/mha_{seq}"), || {
            // Fresh compiler: no schedule-cache hits.
            Compiler::new(Arch::Ampere, CompileOptions::default())
                .compile(&g)
                .unwrap()
        });
    }
    let ln = subgraphs::layernorm(4096, 4096);
    bench("compile/layernorm_4k", || {
        Compiler::new(Arch::Ampere, CompileOptions::default())
            .compile(&ln)
            .unwrap()
    });
}

fn bench_session_cache() {
    use spacefusion::pipeline::CompileSession;
    let g = subgraphs::mha(32, 16, 1024, 64);
    let session = CompileSession::new(Arch::Ampere, CompileOptions::default());
    session.compile(&g).unwrap(); // warm the shared schedule cache
    bench("compile/mha_1k_cached", || session.compile(&g).unwrap());
}

fn main() {
    bench_smg_construction();
    bench_slicers();
    bench_enumeration();
    bench_full_compile();
    bench_session_cache();
}
