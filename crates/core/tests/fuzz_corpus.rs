//! Corpus replay: every recorded regression graph under `tests/corpus/`
//! must pass the full differential oracle — all five fusion policies,
//! all thread counts, verifier lint included. Entries are plain `.sfg`
//! DSL files (see `sf_fuzz::corpus`), so a graph that once exposed a
//! bug — or exercises a high-risk motif — stays covered by default
//! `cargo test` forever, independent of the fuzz campaign that found it.

use sf_fuzz::corpus::read_corpus;
use sf_fuzz::{run_oracle, OracleOptions};
use sf_gpu_sim::Arch;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    // crates/core -> workspace root -> tests/corpus
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_entries_parse_and_validate() {
    let entries = read_corpus(&corpus_dir()).expect("read corpus");
    assert!(
        !entries.is_empty(),
        "the checked-in corpus must not be empty (see examples/seed_corpus.rs)"
    );
    for (path, graph) in &entries {
        graph
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid graph: {e}", path.display()));
    }
}

#[test]
fn corpus_entries_pass_the_oracle_on_every_arch() {
    let entries = read_corpus(&corpus_dir()).expect("read corpus");
    for (path, graph) in &entries {
        for arch in [Arch::Volta, Arch::Ampere, Arch::Hopper] {
            let opts = OracleOptions {
                arch,
                binding_seed: 7,
                ..OracleOptions::default()
            };
            let report = run_oracle(graph, &opts);
            assert!(
                report.ok(),
                "{} regressed on {arch:?}:\n{}",
                path.display(),
                report
                    .failures
                    .iter()
                    .map(|f| f.render())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
