//! Structural invariants of the SMG abstraction and the slicers, checked
//! over randomly generated graphs.

// Gated: requires the `proptest` feature (and a proptest
// dev-dependency, which needs registry access to resolve). The
// default offline build skips this suite.
#![cfg(feature = "proptest")]
use proptest::prelude::*;
use sf_ir::{Graph, OpKind, ValueKind};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::slicer::{eligible_spatial_dims, pick_temporal_dim};
use spacefusion::smg::{build_smg, MappingKind, SpaceKind};

#[derive(Debug, Clone)]
enum Step {
    Unary(u8),
    Reduce(u8, bool),
    CombineInput(u8),
    GemmWeight(u8), // gemm with a fresh weight of width 2^k.
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4).prop_map(Step::Unary),
        ((0u8..3), any::<bool>()).prop_map(|(k, c)| Step::Reduce(k, c)),
        (0u8..4).prop_map(Step::CombineInput),
        (3u8..6).prop_map(Step::GemmWeight),
    ]
}

fn build(m: usize, n: usize, steps: &[Step]) -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![m, n]));
    let mut cur = x;
    let mut widx = 0;
    for s in steps {
        cur = match s {
            Step::Unary(u) => g
                .unary(
                    [UnaryOp::Relu, UnaryOp::Tanh, UnaryOp::Sqr, UnaryOp::Sigmoid][*u as usize % 4],
                    cur,
                )
                .unwrap(),
            Step::Reduce(k, cols) => {
                let dim = if *cols { 0 } else { 1 };
                if g.shape(cur).dims()[dim] == 1 {
                    continue;
                }
                g.reduce(
                    [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Mean][*k as usize % 3],
                    cur,
                    dim,
                )
                .unwrap()
            }
            Step::CombineInput(b) => {
                // Only when the current value still broadcasts against x
                // (a preceding GEMM may have changed the width).
                if g.shape(x).broadcast_with(g.shape(cur)).is_err() {
                    continue;
                }
                g.binary(
                    [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Max][*b as usize % 4],
                    x,
                    cur,
                )
                .unwrap()
            }
            Step::GemmWeight(k) => {
                let shape = g.shape(cur).clone();
                if shape.dims()[0] == 1 || shape.dims()[1] == 1 {
                    continue; // Avoid degenerate GEMMs after reductions.
                }
                let w = g.weight(
                    format!("w{widx}"),
                    Shape::new(vec![shape.dims()[1], 1 << k]),
                );
                widx += 1;
                g.gemm(cur, w, false).unwrap()
            }
        };
    }
    g.mark_output(cur);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mapping edges always connect a data space to an iteration space
    /// (or back), never data-to-data; directions always reference real
    /// dims; every op has exactly one iteration space.
    #[test]
    fn smg_structure_is_well_formed(
        m in 2usize..32,
        n in 2usize..32,
        steps in prop::collection::vec(step_strategy(), 1..8),
    ) {
        let g = build(m, n, &steps);
        let Ok(smg) = build_smg(&g) else { return Ok(()) };
        prop_assert_eq!(smg.iter_space.len(), g.ops().len());
        prop_assert_eq!(smg.data_space.len(), g.values().len());
        for mapping in &smg.mappings {
            let src_is_data =
                matches!(smg.spaces[mapping.src.0].kind, SpaceKind::Data { .. });
            let dst_is_data =
                matches!(smg.spaces[mapping.dst.0].kind, SpaceKind::Data { .. });
            prop_assert!(src_is_data != dst_is_data, "data<->iter only");
            if let Some(d) = mapping.kind.dim() {
                prop_assert!(d.0 < smg.dims.len());
                prop_assert!(smg.extent(d) >= 1);
            }
        }
    }

    /// The number of A2O edges equals the number of dims each op reduces
    /// away; element-wise ops contribute none.
    #[test]
    fn a2o_count_matches_reductions(
        m in 2usize..32,
        n in 2usize..32,
        steps in prop::collection::vec(step_strategy(), 1..8),
    ) {
        let g = build(m, n, &steps);
        let Ok(smg) = build_smg(&g) else { return Ok(()) };
        let expected: usize = g
            .ops()
            .iter()
            .map(|op| match op.kind {
                OpKind::Reduce { .. } => 1,
                OpKind::Gemm { .. } => 1,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(smg.a2o_count(), expected);
    }

    /// No spatially eligible dimension ever carries an All-to-One or an
    /// intermediate-sourced One-to-All (the Table 3 contract).
    #[test]
    fn spatial_dims_carry_no_flow_dependencies(
        m in 2usize..48,
        n in 2usize..48,
        steps in prop::collection::vec(step_strategy(), 1..8),
    ) {
        let g = build(m, n, &steps);
        let Ok(smg) = build_smg(&g) else { return Ok(()) };
        for d in eligible_spatial_dims(&g, &smg) {
            for mapping in smg.mappings_in_dim(d) {
                match mapping.kind {
                    MappingKind::AllToOne(_) => prop_assert!(false, "A2O on spatial dim"),
                    MappingKind::OneToAll(_) => {
                        let SpaceKind::Data { value } = smg.spaces[mapping.src.0].kind
                            else { panic!("O2A source must be a data space") };
                        prop_assert!(matches!(
                            g.value(value).kind,
                            ValueKind::Input | ValueKind::Weight
                        ));
                    }
                    MappingKind::OneToOne => {}
                }
            }
        }
    }

    /// The temporal priority dimension is never one of the spatial dims
    /// and always has extent > 1.
    #[test]
    fn temporal_dim_disjoint_from_spatial(
        m in 2usize..48,
        n in 2usize..48,
        steps in prop::collection::vec(step_strategy(), 1..8),
    ) {
        let g = build(m, n, &steps);
        let Ok(smg) = build_smg(&g) else { return Ok(()) };
        let spatial = eligible_spatial_dims(&g, &smg);
        if let Some(t) = pick_temporal_dim(&g, &smg, &spatial) {
            prop_assert!(!spatial.contains(&t));
            prop_assert!(smg.extent(t) > 1);
        }
    }

    /// Dimension alignment is consistent: every tensor axis maps to a
    /// dim whose extent is either the axis extent or broadcastable 1.
    #[test]
    fn alignment_extents_are_consistent(
        m in 2usize..32,
        n in 2usize..32,
        steps in prop::collection::vec(step_strategy(), 1..8),
    ) {
        let g = build(m, n, &steps);
        let Ok(smg) = build_smg(&g) else { return Ok(()) };
        for (vi, v) in g.values().iter().enumerate() {
            for (axis, &e) in v.shape.dims().iter().enumerate() {
                let d = smg.value_axes[vi][axis];
                let ext = smg.extent(d);
                prop_assert!(e == ext || e == 1, "axis {e} vs dim {ext}");
            }
        }
    }
}
