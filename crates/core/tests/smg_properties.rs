//! Structural invariants of the SMG abstraction and the slicers, checked
//! over seeded random graphs from the in-tree generator (`sf_fuzz::gen`).
//!
//! This suite used to be gated behind a `proptest` feature (the
//! dev-dependency needed registry access); the generator made the gate
//! obsolete — the same invariants now run over a deterministic seed
//! sweep in the default offline `cargo test`. The shrunk cases proptest
//! had recorded in `.proptest-regressions` are preserved below as
//! explicit regression tests built with the original step semantics.

use sf_fuzz::{generate, GenConfig};
use sf_ir::{Graph, OpKind, ValueKind};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::slicer::{eligible_spatial_dims, pick_temporal_dim};
use spacefusion::smg::{build_smg, MappingKind, Smg, SpaceKind};

const SEEDS: u64 = 128;

/// All seeded graphs whose whole-graph SMG builds (graphs with layout
/// barriers are split by `segment()` before SMG construction in the
/// real pipeline, so `build_smg` may legitimately reject them here —
/// those are skipped, and `checks_cover_most_seeds` asserts skipping
/// stays the exception).
fn smg_cases() -> Vec<(u64, Graph, Smg)> {
    let cfg = GenConfig::default();
    (0..SEEDS)
        .filter_map(|seed| {
            let g = generate(seed, &cfg)
                .build()
                .unwrap_or_else(|e| panic!("seed {seed} failed to build: {e}"));
            build_smg(&g).ok().map(|smg| (seed, g, smg))
        })
        .collect()
}

#[test]
fn checks_cover_most_seeds() {
    let checked = smg_cases().len() as u64;
    assert!(
        checked >= SEEDS / 2,
        "only {checked}/{SEEDS} seeds produced a whole-graph SMG"
    );
}

/// Mapping edges always connect a data space to an iteration space
/// (or back), never data-to-data; directions always reference real
/// dims; every op has exactly one iteration space.
#[test]
fn smg_structure_is_well_formed() {
    for (seed, g, smg) in smg_cases() {
        assert_eq!(smg.iter_space.len(), g.ops().len(), "seed {seed}");
        assert_eq!(smg.data_space.len(), g.values().len(), "seed {seed}");
        for mapping in &smg.mappings {
            let src_is_data = matches!(smg.spaces[mapping.src.0].kind, SpaceKind::Data { .. });
            let dst_is_data = matches!(smg.spaces[mapping.dst.0].kind, SpaceKind::Data { .. });
            assert!(src_is_data != dst_is_data, "seed {seed}: data<->iter only");
            if let Some(d) = mapping.kind.dim() {
                assert!(d.0 < smg.dims.len(), "seed {seed}");
                assert!(smg.extent(d) >= 1, "seed {seed}");
            }
        }
    }
}

/// The number of A2O edges equals the number of dims each op reduces
/// away; element-wise ops contribute none.
#[test]
fn a2o_count_matches_reductions() {
    for (seed, g, smg) in smg_cases() {
        let expected: usize = g
            .ops()
            .iter()
            .map(|op| match op.kind {
                OpKind::Reduce { .. } => 1,
                OpKind::Gemm { .. } => 1,
                _ => 0,
            })
            .sum();
        assert_eq!(smg.a2o_count(), expected, "seed {seed}");
    }
}

/// No spatially eligible dimension ever carries an All-to-One or an
/// intermediate-sourced One-to-All (the Table 3 contract).
#[test]
fn spatial_dims_carry_no_flow_dependencies() {
    for (seed, g, smg) in smg_cases() {
        for d in eligible_spatial_dims(&g, &smg) {
            for mapping in smg.mappings_in_dim(d) {
                match mapping.kind {
                    MappingKind::AllToOne(_) => panic!("seed {seed}: A2O on spatial dim"),
                    MappingKind::OneToAll(_) => {
                        let SpaceKind::Data { value } = smg.spaces[mapping.src.0].kind else {
                            panic!("seed {seed}: O2A source must be a data space")
                        };
                        assert!(
                            matches!(g.value(value).kind, ValueKind::Input | ValueKind::Weight),
                            "seed {seed}: intermediate-sourced O2A on spatial dim"
                        );
                    }
                    MappingKind::OneToOne => {}
                }
            }
        }
    }
}

/// The temporal priority dimension is never one of the spatial dims
/// and always has extent > 1.
#[test]
fn temporal_dim_disjoint_from_spatial() {
    for (seed, g, smg) in smg_cases() {
        let spatial = eligible_spatial_dims(&g, &smg);
        if let Some(t) = pick_temporal_dim(&g, &smg, &spatial) {
            assert!(!spatial.contains(&t), "seed {seed}");
            assert!(smg.extent(t) > 1, "seed {seed}");
        }
    }
}

/// Dimension alignment is consistent: every tensor axis maps to a
/// dim whose extent is either the axis extent or broadcastable 1.
#[test]
fn alignment_extents_are_consistent() {
    for (seed, g, smg) in smg_cases() {
        for (vi, v) in g.values().iter().enumerate() {
            for (axis, &e) in v.shape.dims().iter().enumerate() {
                let d = smg.value_axes[vi][axis];
                let ext = smg.extent(d);
                assert!(e == ext || e == 1, "seed {seed}: axis {e} vs dim {ext}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Regression cases recorded by the original proptest runs (shrunk
// inputs from `.proptest-regressions`), rebuilt with the original
// builder semantics.
// ---------------------------------------------------------------------

/// `m=2, n=2, [GemmWeight(3), CombineInput(Add)]`: the combine is
/// infeasible after the GEMM widens to 8 columns, leaving a lone GEMM.
fn regression_lone_gemm() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 2]));
    let w = g.weight("w0", Shape::new(vec![2, 8]));
    let mm = g.gemm(x, w, false).unwrap();
    g.mark_output(mm);
    g
}

/// `m=2, n=2, [GemmWeight(3), Reduce(Sum, dim 1), CombineInput(Add)]`:
/// the reduction restores broadcast compatibility with the input.
fn regression_gemm_reduce_combine() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 2]));
    let w = g.weight("w0", Shape::new(vec![2, 8]));
    let mm = g.gemm(x, w, false).unwrap();
    let r = g.reduce(ReduceOp::Sum, mm, 1).unwrap();
    let c = g.binary(BinaryOp::Add, x, r).unwrap();
    g.mark_output(c);
    g
}

/// `m=2, n=16, [GemmWeight(4), Unary(Relu), CombineInput(Add)]`: GEMM
/// keeps the width at 16, so the combine stays feasible.
fn regression_gemm_relu_combine() -> Graph {
    let mut g = Graph::new("random", DType::F16);
    let x = g.input("x", Shape::new(vec![2, 16]));
    let w = g.weight("w0", Shape::new(vec![16, 16]));
    let mm = g.gemm(x, w, false).unwrap();
    let u = g.unary(UnaryOp::Relu, mm).unwrap();
    let c = g.binary(BinaryOp::Add, x, u).unwrap();
    g.mark_output(c);
    g
}

fn assert_invariants(g: &Graph) {
    // Same contract as the seeded sweep: `build_smg` may reject a graph
    // (e.g. a square GEMM whose contraction extent aliases an output
    // extent) — the invariants apply whenever it accepts one. The
    // recorded inputs exercise exactly the code path that used to
    // trip, so a graceful `Err` is a pass and a panic is the failure.
    let Ok(smg) = build_smg(g) else { return };
    assert_eq!(smg.iter_space.len(), g.ops().len());
    assert_eq!(smg.data_space.len(), g.values().len());
    let expected_a2o: usize = g
        .ops()
        .iter()
        .map(|op| match op.kind {
            OpKind::Reduce { .. } | OpKind::Gemm { .. } => 1,
            _ => 0,
        })
        .sum();
    assert_eq!(smg.a2o_count(), expected_a2o);
    let spatial = eligible_spatial_dims(g, &smg);
    for d in &spatial {
        for mapping in smg.mappings_in_dim(*d) {
            assert!(!matches!(mapping.kind, MappingKind::AllToOne(_)));
        }
    }
    if let Some(t) = pick_temporal_dim(g, &smg, &spatial) {
        assert!(!spatial.contains(&t));
        assert!(smg.extent(t) > 1);
    }
    for (vi, v) in g.values().iter().enumerate() {
        for (axis, &e) in v.shape.dims().iter().enumerate() {
            let ext = smg.extent(smg.value_axes[vi][axis]);
            assert!(e == ext || e == 1);
        }
    }
}

#[test]
fn regression_proptest_cases_hold_invariants() {
    assert_invariants(&regression_lone_gemm());
    assert_invariants(&regression_gemm_reduce_combine());
    assert_invariants(&regression_gemm_relu_combine());
}
