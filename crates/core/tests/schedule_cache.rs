//! Schedule-cache semantics and concurrent-compilation determinism.
//!
//! The shared [`ScheduleCache`] is keyed by `(shape key, fusion policy,
//! architecture)`: equal keys must hit, any differing component must
//! miss, and concurrent compilations sharing one session must observe a
//! consistent cache — identical subprograms are tuned exactly once no
//! matter how many threads race. Parallel group scheduling must produce
//! exactly the kernels (and cost estimates) sequential scheduling does.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::compiler::{CompileOptions, CompiledProgram, FusionPolicy};
use spacefusion::pipeline::{CollectingSink, CompileSession, EventDetail, ScheduleCache};
use std::sync::Arc;

fn layernorm(m: usize, n: usize) -> Graph {
    let mut g = Graph::new("ln", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("w", Shape::new(vec![1, n]));
    let b = g.weight("b", Shape::new(vec![1, n]));
    let mean = g.reduce(ReduceOp::Mean, x, 1).unwrap();
    let c = g.binary(BinaryOp::Sub, x, mean).unwrap();
    let sq = g.binary(BinaryOp::Mul, c, c).unwrap();
    let var = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
    let veps = g.scalar(BinaryOp::Add, var, 1e-5).unwrap();
    let std = g.unary(UnaryOp::Sqrt, veps).unwrap();
    let norm = g.binary(BinaryOp::Div, c, std).unwrap();
    let sc = g.binary(BinaryOp::Mul, norm, w).unwrap();
    let y = g.binary(BinaryOp::Add, sc, b).unwrap();
    g.mark_output(y);
    g
}

/// A GEMM+ReLU stack: under `Unfused` it splits into `2 × layers`
/// groups with exactly two distinct cache keys, so group workers race
/// on shared entries.
fn mlp_stack(layers: usize, m: usize, n: usize) -> Graph {
    let mut g = Graph::new("mlp", DType::F32);
    let mut h = g.input("x", Shape::new(vec![m, n]));
    for l in 0..layers {
        let w = g.weight(format!("w{l}"), Shape::new(vec![n, n]));
        let o = g.gemm(h, w, false).unwrap();
        h = g.unary(UnaryOp::Relu, o).unwrap();
    }
    g.mark_output(h);
    g
}

/// Two stages separated by a reshape barrier → two segments.
fn barrier_graph() -> Graph {
    let mut g = Graph::new("two_stage", DType::F32);
    let x = g.input("x", Shape::new(vec![64, 128]));
    let w1 = g.weight("w1", Shape::new(vec![128, 128]));
    let h = g.gemm(x, w1, false).unwrap();
    let h = g.unary(UnaryOp::Relu, h).unwrap();
    let r = g.layout_barrier(h, Shape::new(vec![128, 64])).unwrap();
    let w2 = g.weight("w2", Shape::new(vec![64, 64]));
    let y = g.gemm(r, w2, false).unwrap();
    g.mark_output(y);
    g
}

/// Structural fingerprint of a compiled program, excluding kernel names
/// (a cache-hit rebuild may label partition fragments differently).
fn fingerprint(p: &CompiledProgram) -> Vec<(usize, Vec<usize>, Option<usize>)> {
    p.kernels
        .iter()
        .map(|k| {
            (
                k.graph.ops().len(),
                k.schedule.spatial.iter().map(|&(_, b)| b).collect(),
                k.schedule.temporal.as_ref().map(|t| t.block),
            )
        })
        .collect()
}

#[test]
fn repeat_compilation_hits_cache() {
    let g = layernorm(64, 2048);
    let session = CompileSession::new(Arch::Ampere, CompileOptions::default());
    let p1 = session.compile(&g).unwrap();
    let misses_after_first = session.cache().misses();
    assert!(misses_after_first >= 1);
    assert_eq!(p1.stats.cache_hits, 0);

    let p2 = session.compile(&g).unwrap();
    assert_eq!(
        session.cache().misses(),
        misses_after_first,
        "second compilation must not recompute anything"
    );
    assert!(p2.stats.cache_hits >= 1);
    assert_eq!(fingerprint(&p1), fingerprint(&p2));
    assert!((p1.estimate_us() - p2.estimate_us()).abs() < 1e-9);
}

#[test]
fn differing_policy_misses() {
    let shared = Arc::new(ScheduleCache::new());
    let g = layernorm(32, 512);
    let sf =
        CompileSession::new(Arch::Ampere, CompileOptions::default()).with_cache(shared.clone());
    sf.compile(&g).unwrap();
    let after_sf = shared.misses();

    // Same shapes, same arch, different fusion policy → its schedules
    // are different objects; every group must miss.
    let opts = CompileOptions {
        policy: FusionPolicy::Unfused,
        ..Default::default()
    };
    let unfused = CompileSession::new(Arch::Ampere, opts).with_cache(shared.clone());
    unfused.compile(&g).unwrap();
    // New misses, not pure hits: the SpaceFusion entries don't serve the
    // Unfused groups. (Repeated per-op shapes *within* the Unfused
    // compile may legitimately hit each other.)
    assert!(shared.misses() > after_sf, "policy must be part of the key");
}

#[test]
fn differing_arch_misses() {
    let shared = Arc::new(ScheduleCache::new());
    let g = layernorm(32, 512);
    CompileSession::new(Arch::Ampere, CompileOptions::default())
        .with_cache(shared.clone())
        .compile(&g)
        .unwrap();
    let after_ampere = shared.misses();

    // A *variant* of the same chip — only the launch overhead differs —
    // must not alias: the full GpuArch fingerprint is in the key.
    let mut variant = Arch::Ampere.config();
    variant.launch_overhead_us *= 3.0;
    let p = CompileSession::with_config(variant, CompileOptions::default())
        .with_cache(shared.clone())
        .compile(&g)
        .unwrap();
    assert!(
        shared.misses() > after_ampere,
        "arch must be part of the key"
    );
    assert_eq!(p.stats.cache_hits, 0);
}

#[test]
fn concurrent_compilations_tune_once() {
    const THREADS: usize = 8;
    let g = layernorm(64, 2048);
    let sink = Arc::new(CollectingSink::new());
    let session = Arc::new(
        CompileSession::new(Arch::Ampere, CompileOptions::default()).with_sink(sink.clone()),
    );

    let programs: Vec<CompiledProgram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let session = session.clone();
                let g = &g;
                s.spawn(move || session.compile(g).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The graph fuses into one kernel → one cache key. Exactly one
    // thread computes; the other seven block on the claim and then hit.
    assert_eq!(session.cache().misses(), 1, "one shape, one computation");
    assert_eq!(session.cache().hits(), THREADS - 1);

    // No duplicate tuning: the tuner ran for the single miss only.
    let tune_events = sink
        .events()
        .iter()
        .filter(|e| matches!(e.detail, EventDetail::Tune { .. }))
        .count();
    assert_eq!(tune_events, 1, "identical subprograms must be tuned once");

    // Every thread observed the same program.
    let fp = fingerprint(&programs[0]);
    let est = programs[0].estimate_us();
    for p in &programs[1..] {
        assert_eq!(fingerprint(p), fp);
        assert!((p.estimate_us() - est).abs() < 1e-9);
    }
}

#[test]
fn parallel_matches_sequential_groups() {
    // Unfused on a deep stack → 16 groups, two distinct cache keys:
    // plenty of worker contention.
    let g = mlp_stack(8, 64, 256);
    let opts = CompileOptions {
        policy: FusionPolicy::Unfused,
        ..Default::default()
    };
    let seq = CompileSession::new(Arch::Ampere, opts.clone())
        .with_workers(1)
        .compile(&g)
        .unwrap();
    let par = CompileSession::new(Arch::Ampere, opts)
        .with_workers(8)
        .compile(&g)
        .unwrap();

    assert_eq!(seq.kernels.len(), 16);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
    assert!((seq.estimate_us() - par.estimate_us()).abs() < 1e-9);

    // Numerics agree exactly: both orders execute the same kernels.
    let bindings = g.random_bindings(7);
    let a = seq.execute(&bindings).unwrap();
    let b = par.execute(&bindings).unwrap();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.max_abs_diff(y).unwrap(), 0.0);
    }
}

#[test]
fn parallel_matches_sequential_segments() {
    // Layout barrier → two segments compiled as independent units.
    let g = barrier_graph();
    let seq = CompileSession::new(Arch::Ampere, CompileOptions::default())
        .with_workers(1)
        .compile(&g)
        .unwrap();
    let par = CompileSession::new(Arch::Ampere, CompileOptions::default())
        .with_workers(4)
        .compile(&g)
        .unwrap();

    assert!(
        seq.kernels.len() >= 2,
        "barrier forces at least two kernels"
    );
    assert_eq!(fingerprint(&seq), fingerprint(&par));
    assert!((seq.estimate_us() - par.estimate_us()).abs() < 1e-9);

    let bindings = g.random_bindings(13);
    let reference = g.execute(&bindings).unwrap();
    let a = seq.execute(&bindings).unwrap();
    let b = par.execute(&bindings).unwrap();
    for ((x, y), r) in a.iter().zip(b.iter()).zip(reference.iter()) {
        assert_eq!(x.max_abs_diff(y).unwrap(), 0.0);
        assert!(x.allclose(r, 1e-3), "compiled result must match reference");
    }
}

/// A claimant that panics while holding a `ClaimTicket` must not wedge
/// the cache: unwinding drops the ticket, which abandons the claim and
/// hands the key to the next claimant.
#[test]
fn panicking_claimant_does_not_wedge_waiters() {
    use spacefusion::pipeline::{CacheKey, Claim};

    spacefusion::resilience::silence_injected_panics();
    let cache = Arc::new(ScheduleCache::new());
    let key = CacheKey {
        shape: "hot".into(),
        policy: FusionPolicy::SpaceFusion,
        arch: "test".into(),
    };

    // The claimant takes the Miss, then dies mid-computation.
    let c = cache.clone();
    let k = key.clone();
    let claimant = std::thread::spawn(move || match c.claim(&k) {
        Claim::Miss(_ticket) => panic!("injected claimant crash"),
        Claim::Hit(_) => panic!("empty cache cannot hit"),
    });
    assert!(claimant.join().is_err(), "claimant must have panicked");

    // The key must be claimable again — a Miss, not a deadlock and not
    // a phantom Hit.
    match cache.claim(&key) {
        Claim::Miss(_) => {}
        Claim::Hit(_) => panic!("abandoned claim must not publish an entry"),
    };
}

/// Same, but with waiters already blocked on the condition variable
/// when the claimant dies: one of them must wake, take over the claim,
/// and fulfill it for the rest.
#[test]
fn waiters_take_over_after_claimant_panic() {
    use spacefusion::pipeline::{CacheEntry, CacheKey, Claim, SavedConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    spacefusion::resilience::silence_injected_panics();
    let cache = ScheduleCache::new();
    let key = CacheKey {
        shape: "hot".into(),
        policy: FusionPolicy::SpaceFusion,
        arch: "test".into(),
    };
    let entry = CacheEntry {
        piece_lens: vec![1],
        configs: vec![SavedConfig {
            spatial: vec![8],
            temporal: None,
            split: None,
        }],
    };
    let claimed = Barrier::new(5);
    let computed = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // The doomed first claimant: grabs the Miss, lets the waiters
        // pile onto the condvar, then panics with the ticket in hand.
        let doomed = s.spawn(|| match cache.claim(&key) {
            Claim::Miss(_ticket) => {
                claimed.wait();
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("injected claimant crash");
            }
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        });
        for _ in 0..4 {
            s.spawn(|| {
                claimed.wait();
                match cache.claim(&key) {
                    Claim::Miss(t) => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        t.fulfill(entry.clone());
                    }
                    Claim::Hit(e) => {
                        assert_eq!(e, entry);
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        // Consume the intentional panic so the scope does not re-raise
        // it on join.
        assert!(doomed.join().is_err(), "claimant must have panicked");
    });

    assert_eq!(
        computed.load(Ordering::SeqCst),
        1,
        "exactly one waiter takes over the abandoned claim"
    );
    assert_eq!(hits.load(Ordering::SeqCst), 3);
}
