//! Parallel execution determinism: the multi-threaded block engine must
//! be *bit-identical* to serial execution. Spatial blocks write disjoint
//! output regions (Table 3 legality), so no thread count, scheduling
//! order, or scratch-pool reuse pattern may change a single bit of any
//! output. The whole model zoo is checked under every fusion policy and
//! architecture at `exec-threads` ∈ {1, 2, 8}.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::subgraphs;
use sf_tensor::assert_tensors_bitwise;
use spacefusion::codegen::ExecOptions;
use spacefusion::compiler::{Compiler, FusionPolicy};

/// Small-size zoo instances: every subgraph family from Fig. 10.
fn zoo() -> Vec<Graph> {
    vec![
        subgraphs::mlp_stack(2, 24, 16),
        subgraphs::lstm_cell(8, 16),
        subgraphs::softmax(32, 24),
        subgraphs::layernorm(24, 16),
        subgraphs::rmsnorm(24, 16),
        subgraphs::mha(1, 2, 16, 8),
        subgraphs::masked_mha(1, 2, 16, 8),
        subgraphs::mha_decode(1, 2, 16, 8),
    ]
}

const POLICIES: [FusionPolicy; 5] = [
    FusionPolicy::SpaceFusion,
    FusionPolicy::Unfused,
    FusionPolicy::EpilogueOnly,
    FusionPolicy::MiOnly,
    FusionPolicy::TileGraph,
];

const ARCHS: [Arch; 3] = [Arch::Volta, Arch::Ampere, Arch::Hopper];

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    for graph in zoo() {
        let bindings = graph.random_bindings(7);
        for arch in ARCHS {
            for policy in POLICIES {
                let program = Compiler::with_policy(arch, policy)
                    .compile(&graph)
                    .unwrap_or_else(|e| panic!("{}/{arch:?}/{policy:?}: {e}", graph.name()));
                let serial = program
                    .execute_with(&bindings, &ExecOptions::with_threads(1))
                    .unwrap_or_else(|e| panic!("{}/{arch:?}/{policy:?}: {e}", graph.name()));
                for threads in [2usize, 8] {
                    let parallel = program
                        .execute_with(&bindings, &ExecOptions::with_threads(threads))
                        .unwrap_or_else(|e| {
                            panic!("{}/{arch:?}/{policy:?}/t{threads}: {e}", graph.name())
                        });
                    assert_eq!(serial.len(), parallel.len());
                    for (s, p) in serial.iter().zip(&parallel) {
                        // Bitwise, not approximate: identical FP operation
                        // order is a hard requirement of the engine.
                        assert_tensors_bitwise(
                            &format!("{}/{arch:?}/{policy:?} at {threads} threads", graph.name()),
                            p,
                            s,
                        );
                    }
                }
            }
        }
    }
}

/// Scratch-buffer reuse must cut fresh allocations well below the naive
/// engine's bound of one (or more) fresh buffer per op per tile per
/// block. The acceptance bar from the issue is a ≥5× reduction on the
/// attention subgraph.
#[test]
fn attention_allocations_reduced_by_scratch_reuse() {
    let graph = subgraphs::mha(1, 4, 64, 32);
    let bindings = graph.random_bindings(11);
    let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
        .compile(&graph)
        .expect("compile mha");

    // Naive bound: the pre-reuse engine materialized a fresh tensor per
    // input extraction and per op output, for every (block, tile) pair.
    // Count op evaluations the same way the engine walks the schedule.
    let mut naive: u64 = 0;
    for kernel in &program.kernels {
        let s = &kernel.schedule;
        let blocks: u64 = s
            .spatial
            .iter()
            .map(|&(d, b)| s.smg.extent(d).max(1).div_ceil(b.max(1)) as u64)
            .product();
        let tiles: u64 = s.temporal.as_ref().map_or(1, |t| {
            s.smg.extent(t.plan.dim).max(1).div_ceil(t.block.max(1)) as u64
        });
        let per_tile: u64 = kernel
            .graph
            .ops()
            .iter()
            .map(|op| 1 + op.inputs.len() as u64)
            .sum();
        naive += blocks * tiles * per_tile.max(1);
    }

    sf_tensor::alloc_stats::reset_allocations();
    program
        .execute_with(&bindings, &ExecOptions::with_threads(1))
        .expect("execute mha");
    let actual = sf_tensor::alloc_stats::allocations();

    assert!(actual > 0, "counter must observe the run");
    assert!(
        actual * 5 <= naive,
        "expected ≥5x allocation reduction: naive bound {naive}, actual {actual}"
    );
}
