//! Parallel execution determinism: the multi-threaded block engine must
//! be *bit-identical* to serial execution. Spatial blocks write disjoint
//! output regions (Table 3 legality), so no thread count, scheduling
//! order, scratch-pool reuse pattern, or worker-pool reuse across calls
//! may change a single bit of any output. The whole model zoo is checked
//! under every fusion policy and architecture at `exec-threads` ∈
//! {1, 2, 8, max}, through both the single (`execute_with`) and batched
//! (`execute_many`) entry points, on engines reused across hundreds of
//! calls.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::subgraphs;
use sf_tensor::{assert_tensors_bitwise, Tensor};
use spacefusion::codegen::{ExecEngine, ExecOptions};
use spacefusion::compiler::{CompileOptions, Compiler, FusionPolicy};
use spacefusion::pipeline::CompileSession;
use spacefusion::resilience::{silence_injected_panics, FaultKind, FaultPlan, FaultStage, Rung};
use spacefusion::FaultInjector;
use std::collections::HashMap;
use std::sync::Arc;

/// Small-size zoo instances: every subgraph family from Fig. 10.
fn zoo() -> Vec<Graph> {
    vec![
        subgraphs::mlp_stack(2, 24, 16),
        subgraphs::lstm_cell(8, 16),
        subgraphs::softmax(32, 24),
        subgraphs::layernorm(24, 16),
        subgraphs::rmsnorm(24, 16),
        subgraphs::mha(1, 2, 16, 8),
        subgraphs::masked_mha(1, 2, 16, 8),
        subgraphs::mha_decode(1, 2, 16, 8),
    ]
}

const POLICIES: [FusionPolicy; 5] = [
    FusionPolicy::SpaceFusion,
    FusionPolicy::Unfused,
    FusionPolicy::EpilogueOnly,
    FusionPolicy::MiOnly,
    FusionPolicy::TileGraph,
];

const ARCHS: [Arch; 3] = [Arch::Volta, Arch::Ampere, Arch::Hopper];

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    for graph in zoo() {
        let bindings = graph.random_bindings(7);
        for arch in ARCHS {
            for policy in POLICIES {
                let program = Compiler::with_policy(arch, policy)
                    .compile(&graph)
                    .unwrap_or_else(|e| panic!("{}/{arch:?}/{policy:?}: {e}", graph.name()));
                let serial = program
                    .execute_with(&bindings, &ExecOptions::with_threads(1))
                    .unwrap_or_else(|e| panic!("{}/{arch:?}/{policy:?}: {e}", graph.name()));
                for threads in [2usize, 8, 0] {
                    let parallel = program
                        .execute_with(&bindings, &ExecOptions::with_threads(threads))
                        .unwrap_or_else(|e| {
                            panic!("{}/{arch:?}/{policy:?}/t{threads}: {e}", graph.name())
                        });
                    assert_eq!(serial.len(), parallel.len());
                    for (s, p) in serial.iter().zip(&parallel) {
                        // Bitwise, not approximate: identical FP operation
                        // order is a hard requirement of the engine.
                        assert_tensors_bitwise(
                            &format!("{}/{arch:?}/{policy:?} at {threads} threads", graph.name()),
                            p,
                            s,
                        );
                    }
                }
            }
        }
    }
}

/// Scratch-buffer reuse must cut fresh allocations well below the naive
/// engine's bound of one (or more) fresh buffer per op per tile per
/// block. The acceptance bar from the issue is a ≥5× reduction on the
/// attention subgraph.
#[test]
fn attention_allocations_reduced_by_scratch_reuse() {
    let graph = subgraphs::mha(1, 4, 64, 32);
    let bindings = graph.random_bindings(11);
    let program = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
        .compile(&graph)
        .expect("compile mha");

    // Naive bound: the pre-reuse engine materialized a fresh tensor per
    // input extraction and per op output, for every (block, tile) pair.
    // Count op evaluations the same way the engine walks the schedule.
    let mut naive: u64 = 0;
    for kernel in &program.kernels {
        let s = &kernel.schedule;
        let blocks: u64 = s
            .spatial
            .iter()
            .map(|&(d, b)| s.smg.extent(d).max(1).div_ceil(b.max(1)) as u64)
            .product();
        let tiles: u64 = s.temporal.as_ref().map_or(1, |t| {
            s.smg.extent(t.plan.dim).max(1).div_ceil(t.block.max(1)) as u64
        });
        let per_tile: u64 = kernel
            .graph
            .ops()
            .iter()
            .map(|op| 1 + op.inputs.len() as u64)
            .sum();
        naive += blocks * tiles * per_tile.max(1);
    }

    sf_tensor::alloc_stats::reset_allocations();
    program
        .execute_with(&bindings, &ExecOptions::with_threads(1))
        .expect("execute mha");
    let actual = sf_tensor::alloc_stats::allocations();

    assert!(actual > 0, "counter must observe the run");
    assert!(
        actual * 5 <= naive,
        "expected ≥5x allocation reduction: naive bound {naive}, actual {actual}"
    );
}

/// Compiles `graph` onto a private engine, so pool/counter assertions
/// are not perturbed by concurrently running tests.
fn compile_on(
    graph: &Graph,
    engine: &Arc<ExecEngine>,
    policy: FusionPolicy,
) -> spacefusion::CompiledProgram {
    CompileSession::new(
        Arch::Ampere,
        CompileOptions {
            policy,
            ..Default::default()
        },
    )
    .with_engine(Arc::clone(engine))
    .compile(graph)
    .unwrap_or_else(|e| panic!("{}: {e}", graph.name()))
}

fn assert_outputs_bitwise(label: &str, got: &[Tensor], want: &[Tensor]) {
    assert_eq!(got.len(), want.len(), "{label}: output count");
    for (g, w) in got.iter().zip(want) {
        assert_tensors_bitwise(label, g, w);
    }
}

/// A reused engine must stay bit-identical to serial no matter how many
/// executions (sequential and batched, at shifting thread counts) have
/// warmed its worker pool and scratch arenas. 100 sequential runs plus
/// batched runs over every thread setting, all against the same serial
/// reference.
#[test]
fn engine_reuse_stays_bit_identical_over_hundreds_of_runs() {
    let graph = subgraphs::masked_mha(1, 2, 32, 16);
    let engine = Arc::new(ExecEngine::new());
    let program = compile_on(&graph, &engine, FusionPolicy::SpaceFusion);

    let sets: Vec<HashMap<String, Tensor>> =
        (0..8).map(|i| graph.random_bindings(50 + i)).collect();
    let refs: Vec<Vec<Tensor>> = sets
        .iter()
        .map(|b| {
            program
                .execute_with(b, &ExecOptions::with_threads(1))
                .expect("serial reference")
        })
        .collect();

    for i in 0..100 {
        let threads = [1usize, 2, 8, 0][i % 4];
        let out = program
            .execute_with(&sets[i % sets.len()], &ExecOptions::with_threads(threads))
            .unwrap_or_else(|e| panic!("run {i} at {threads} threads: {e}"));
        assert_outputs_bitwise(
            &format!("sequential run {i} at {threads} threads"),
            &out,
            &refs[i % sets.len()],
        );
    }

    for threads in [1usize, 2, 8, 0] {
        let outs = program
            .execute_many(&sets, &ExecOptions::with_threads(threads))
            .unwrap_or_else(|e| panic!("batched at {threads} threads: {e}"));
        assert_eq!(outs.len(), sets.len());
        for (i, (out, want)) in outs.iter().zip(&refs).enumerate() {
            assert_outputs_bitwise(&format!("batched item {i} at {threads} threads"), out, want);
        }
    }
}

/// A worker crash inside the pool must not kill the pool: the crashed
/// kernel falls back to the reference interpreter (resilience ladder),
/// and the *same* engine keeps executing parallel kernels correctly
/// afterwards without respawning threads.
#[test]
fn pool_survives_worker_crash_and_keeps_executing() {
    silence_injected_panics();
    // Large enough to clear the serial cutoff so the crash happens on a
    // real pool worker, not the inline serial path.
    let graph = subgraphs::softmax(128, 256);
    let engine = Arc::new(ExecEngine::new());
    let program = compile_on(&graph, &engine, FusionPolicy::SpaceFusion);
    let bindings = graph.random_bindings(3);
    let want = program
        .execute_with(&bindings, &ExecOptions::with_threads(1))
        .expect("serial reference");

    let opts = ExecOptions::with_threads(2);
    let dispatches_before = engine.dispatches();
    program.execute_with(&bindings, &opts).expect("warm-up");
    assert!(
        engine.dispatches() > dispatches_before,
        "workload must be large enough to dispatch to the pool"
    );
    let workers = engine.pool_workers();
    assert!(workers >= 2, "pool must have spawned workers");

    let inj = FaultInjector::new(FaultPlan::single(
        FaultStage::ExecBlock,
        FaultKind::CrashWorker,
    ));
    let (got, report) = program
        .execute_resilient(&bindings, &opts, Some(&inj))
        .expect("crashed kernel must fall back, not abort");
    assert_eq!(inj.fired().len(), 1, "the injected crash must fire");
    assert_eq!(report.len(), 1, "{}", report.render());
    assert_eq!(report.steps[0].rung, Rung::Unfused);
    assert_outputs_bitwise("fallback output", &got, &want);

    // The pool survived: same worker threads, and parallel execution on
    // this engine is still bit-identical.
    assert_eq!(
        engine.pool_workers(),
        workers,
        "crash must not kill or respawn pool threads"
    );
    for _ in 0..3 {
        let again = program
            .execute_with(&bindings, &opts)
            .expect("pool must stay usable after a crash");
        assert_outputs_bitwise("post-crash run", &again, &want);
    }
}

/// Cross-call scratch reuse: once the engine is warm, repeated
/// executions must serve at least 90% of scratch-buffer requests from
/// recycled storage (the pools are pinned to the engine and its worker
/// threads, so buffers survive between calls).
#[test]
fn warm_engine_reuses_at_least_90_percent_of_scratch() {
    let graph = subgraphs::mha(1, 4, 64, 32);
    let engine = Arc::new(ExecEngine::new());
    let program = compile_on(&graph, &engine, FusionPolicy::SpaceFusion);
    let bindings = graph.random_bindings(11);

    // Warm-up: first calls populate the arenas (their misses are the
    // allocations being amortized).
    for threads in [1usize, 2] {
        program
            .execute_with(&bindings, &ExecOptions::with_threads(threads))
            .expect("warm-up");
    }

    let hits0 = sf_tensor::alloc_stats::pool_hits();
    let misses0 = sf_tensor::alloc_stats::pool_misses();
    for i in 0..50 {
        let threads = [1usize, 2][i % 2];
        program
            .execute_with(&bindings, &ExecOptions::with_threads(threads))
            .expect("measured run");
    }
    let hits = sf_tensor::alloc_stats::pool_hits() - hits0;
    let misses = sf_tensor::alloc_stats::pool_misses() - misses0;
    let total = hits + misses;
    assert!(total > 0, "runs must go through the scratch pools");
    let ratio = hits as f64 / total as f64;
    assert!(
        ratio >= 0.90,
        "cross-call scratch reuse {ratio:.3} below 90% ({hits} hits / {misses} misses)"
    );
}

/// The serial cutoff routes tiny kernels (single-row decode) away from
/// the pool even at high thread counts, while large kernels dispatch.
#[test]
fn tiny_kernels_run_serially_large_kernels_dispatch() {
    let engine = Arc::new(ExecEngine::new());

    // mha_decode: one query row — far below the cutoff.
    let tiny = subgraphs::mha_decode(1, 2, 64, 16);
    let program = compile_on(&tiny, &engine, FusionPolicy::SpaceFusion);
    let bindings = tiny.random_bindings(9);
    program
        .execute_with(&bindings, &ExecOptions::with_threads(8))
        .expect("tiny kernel");
    assert_eq!(
        engine.dispatches(),
        0,
        "decode must stay on the serial path"
    );
    assert!(engine.serial_runs() > 0);
    assert_eq!(engine.pool_workers(), 0, "no threads for serial work");

    // A big softmax clears the cutoff and dispatches.
    let big = subgraphs::softmax(256, 256);
    let program = compile_on(&big, &engine, FusionPolicy::SpaceFusion);
    let bindings = big.random_bindings(9);
    program
        .execute_with(&bindings, &ExecOptions::with_threads(2))
        .expect("big kernel");
    assert!(engine.dispatches() > 0, "big kernel must use the pool");
}
