//! Split-K end-to-end guarantees: the tuner selects split schedules on
//! reduction-bound shapes, execution is bit-identical across worker
//! counts (the combine fold is fixed-order), the split path really is
//! two pool dispatches, and the partition count survives the schedule
//! cache.

use sf_gpu_sim::Arch;
use sf_models::subgraphs;
use sf_tensor::Tensor;
use spacefusion::codegen::{ExecEngine, ExecOptions};
use spacefusion::compiler::{CompileOptions, CompiledProgram, Compiler};
use spacefusion::CompileSession;

fn split_partitions(program: &CompiledProgram) -> Vec<usize> {
    program
        .kernels
        .iter()
        .filter_map(|kp| {
            kp.schedule
                .temporal
                .as_ref()
                .and_then(|t| t.split.as_ref().map(|s| s.partitions))
        })
        .collect()
}

fn bits(outs: &[Tensor]) -> Vec<Vec<u32>> {
    outs.iter()
        .map(|t| t.data().iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// The decode-shaped zoo workloads must auto-select split-K at default
/// options — no pinned blocks, plain cost-model arbitration.
#[test]
fn tuner_selects_split_k_on_reduction_bound_shapes() {
    for (graph, why) in [
        (
            subgraphs::mha_decode(1, 4, 1024, 32),
            "single query row vs 1024-token KV cache",
        ),
        (
            subgraphs::deep_reduce(16, 4096),
            "16 spatial rows vs a 4096-wide reduction",
        ),
        (subgraphs::softmax(16, 4096), "occupancy-starved softmax"),
    ] {
        let program = Compiler::new(Arch::Ampere, CompileOptions::default())
            .compile(&graph)
            .expect("compile");
        let parts = split_partitions(&program);
        assert!(
            parts.iter().any(|&p| p >= 2),
            "{} ({why}): expected a split-K schedule, got partitions {parts:?}",
            graph.name()
        );
    }
}

/// A shape with ample spatial parallelism must NOT split: the combine
/// phase costs extra state traffic that only pays off when the grid is
/// too small to occupy the machine.
#[test]
fn tuner_declines_split_k_when_spatially_saturated() {
    let graph = subgraphs::deep_reduce(64, 4096);
    let program = Compiler::new(Arch::Ampere, CompileOptions::default())
        .compile(&graph)
        .expect("compile");
    assert!(
        split_partitions(&program).is_empty(),
        "64 spatial rows already occupy the grid; splitting only adds combine traffic"
    );
}

/// The combine fold runs in partition order regardless of which worker
/// finished first, so outputs are bitwise identical across 1/2/8
/// threads — the same determinism contract the spatial executor holds.
#[test]
fn split_outputs_are_bit_identical_across_thread_counts() {
    for graph in [
        subgraphs::mha_decode(1, 4, 1024, 32),
        subgraphs::deep_reduce(16, 4096),
    ] {
        let bindings = graph.random_bindings(7);
        let program = Compiler::new(Arch::Ampere, CompileOptions::default())
            .compile(&graph)
            .expect("compile");
        assert!(
            split_partitions(&program).iter().any(|&p| p >= 2),
            "{} must exercise the split path",
            graph.name()
        );
        let reference = bits(
            &program
                .execute_with(&bindings, &ExecOptions::with_threads(1))
                .expect("1 thread"),
        );
        for threads in [2, 8] {
            let outs = program
                .execute_with(&bindings, &ExecOptions::with_threads(threads))
                .expect("threaded run");
            assert_eq!(
                reference,
                bits(&outs),
                "{}: outputs drifted at {threads} threads",
                graph.name()
            );
        }
    }
}

/// At ≥ 2 workers a split kernel is exactly two pool dispatches
/// (accumulate + combine) where the serialized schedule has at most
/// one per kernel.
#[test]
fn split_execution_is_two_pool_dispatches() {
    let graph = subgraphs::mha_decode(1, 4, 1024, 32);
    let bindings = graph.random_bindings(7);
    // Isolated engine: the process-wide shared pool's dispatch counter
    // moves under concurrent tests, so count on a private one.
    let engine = std::sync::Arc::new(ExecEngine::new());
    let program = CompileSession::new(Arch::Ampere, CompileOptions::default())
        .with_engine(engine)
        .compile(&graph)
        .expect("compile");
    assert_eq!(split_partitions(&program), vec![8]);

    let opts = ExecOptions::with_threads(4);
    let before = program.engine().dispatches();
    program.execute_with(&bindings, &opts).expect("split run");
    let split_dispatches = program.engine().dispatches() - before;
    assert_eq!(
        split_dispatches,
        2 * program.kernels.len() as u64,
        "each split kernel must dispatch an accumulate pass and a combine pass"
    );

    // One worker collapses to the serial path: partitions fold in a
    // plain loop, no pool round-trips at all.
    let before = program.engine().dispatches();
    program
        .execute_with(&bindings, &ExecOptions::with_threads(1))
        .expect("serial run");
    assert_eq!(program.engine().dispatches() - before, 0);
}

/// The partition count is part of the saved scheduling decision: a
/// cache hit must rebuild the same split schedule the tuner chose,
/// not silently fall back to the serial variant.
#[test]
fn split_partition_count_round_trips_through_the_schedule_cache() {
    let graph = subgraphs::mha_decode(1, 4, 1024, 32);
    let session = CompileSession::new(Arch::Ampere, CompileOptions::default());
    let first = session.compile(&graph).expect("cold compile");
    let second = session.compile(&graph).expect("cached compile");
    let parts = split_partitions(&first);
    assert!(parts.iter().any(|&p| p >= 2));
    assert_eq!(parts, split_partitions(&second));
    assert!(
        second.stats.cache_hits >= 1,
        "second compile should hit the schedule cache"
    );
}
