//! Cross-checks of the static disjoint-write race prover against the
//! dynamic executor.
//!
//! Three claims tie the prover (`verify::races`) to the lock-free
//! engine it licenses:
//!
//! 1. **Coverage** — every kernel the compiler emits for the model zoo,
//!    under every fusion policy and architecture, is statically proven
//!    disjoint (zero `RACE` diagnostics). The lock-free executor never
//!    runs on faith.
//! 2. **Agreement** — statically proven kernels execute in parallel
//!    without tripping the debug claim bitmap (the dynamic overlap
//!    oracle in `OutputSlot`), bit-identically to serial execution.
//! 3. **Gate** — a kernel whose proof is withheld is pinned to the
//!    serial fallback path: the engine counts the fallback, never
//!    fans the kernel out over the pool, and still produces
//!    bit-identical results.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_models::subgraphs;
use sf_tensor::assert_tensors_bitwise;
use spacefusion::codegen::{ExecEngine, ExecOptions};
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::pipeline::{CompileOptions, CompileSession};
use spacefusion::verify::{verify_kernel, DisjointProof};
use std::sync::Arc;

/// Small-size zoo instances: every subgraph family from Fig. 10.
fn zoo() -> Vec<Graph> {
    vec![
        subgraphs::mlp_stack(2, 24, 16),
        subgraphs::lstm_cell(8, 16),
        subgraphs::softmax(32, 24),
        subgraphs::layernorm(24, 16),
        subgraphs::rmsnorm(24, 16),
        subgraphs::mha(1, 2, 16, 8),
        subgraphs::masked_mha(1, 2, 16, 8),
        subgraphs::mha_decode(1, 2, 16, 8),
    ]
}

const POLICIES: [FusionPolicy; 5] = [
    FusionPolicy::SpaceFusion,
    FusionPolicy::Unfused,
    FusionPolicy::EpilogueOnly,
    FusionPolicy::MiOnly,
    FusionPolicy::TileGraph,
];

const ARCHS: [Arch; 3] = [Arch::Volta, Arch::Ampere, Arch::Hopper];

#[test]
fn zoo_is_statically_proven_disjoint_under_every_policy_and_arch() {
    let mut kernels = 0usize;
    for graph in zoo() {
        for arch in ARCHS {
            for policy in POLICIES {
                let program = Compiler::with_policy(arch, policy)
                    .compile(&graph)
                    .unwrap_or_else(|e| panic!("{}/{arch:?}/{policy:?}: {e}", graph.name()));
                for kp in &program.kernels {
                    assert!(
                        kp.disjoint.is_proven(),
                        "{}/{arch:?}/{policy:?}: kernel '{}' not proven disjoint: {:?}",
                        graph.name(),
                        kp.name,
                        kp.disjoint
                    );
                    let races: Vec<_> = verify_kernel(kp, &program.arch)
                        .into_iter()
                        .filter(|d| d.code.code().starts_with("RACE"))
                        .collect();
                    assert!(
                        races.is_empty(),
                        "{}/{arch:?}/{policy:?}: kernel '{}' has race diagnostics: {races:?}",
                        graph.name(),
                        kp.name
                    );
                    kernels += 1;
                }
            }
        }
    }
    // The matrix must actually cover a real kernel population.
    assert!(kernels > 100, "only {kernels} kernels checked");
}

#[test]
fn proven_kernels_execute_lock_free_without_tripping_the_claim_bitmap() {
    // Debug builds re-check the prover's verdict dynamically: region
    // hand-out panics if any element is claimed twice. Executing the
    // statically proven zoo in parallel therefore cross-validates the
    // symbolic footprints against the interpreter's real ones; bitwise
    // serial equality pins the result too.
    for graph in zoo() {
        let bindings = graph.random_bindings(13);
        for arch in ARCHS {
            let program = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
                .compile(&graph)
                .unwrap_or_else(|e| panic!("{}/{arch:?}: {e}", graph.name()));
            assert!(program.kernels.iter().all(|k| k.disjoint.is_proven()));
            let serial = program
                .execute_with(&bindings, &ExecOptions::with_threads(1))
                .unwrap();
            let parallel = program
                .execute_with(&bindings, &ExecOptions::with_threads(4))
                .unwrap();
            for (s, p) in serial.iter().zip(&parallel) {
                assert_tensors_bitwise(&format!("{}/{arch:?}", graph.name()), p, s);
            }
        }
    }
}

#[test]
fn unproven_kernel_is_pinned_to_the_serial_fallback_bit_identically() {
    let graph = subgraphs::mha(1, 2, 16, 8);
    let bindings = graph.random_bindings(11);
    // Isolated engine: the shared one's counters are polluted by
    // concurrent tests.
    let engine = Arc::new(ExecEngine::new());
    let session =
        CompileSession::new(Arch::Volta, CompileOptions::default()).with_engine(engine.clone());
    let mut program = session.compile(&graph).expect("mha compiles");
    let baseline = program
        .execute_with(&bindings, &ExecOptions::with_threads(4))
        .expect("baseline run");
    assert_eq!(
        engine.race_fallbacks(),
        0,
        "proven kernels must not take the race fallback"
    );
    let dispatches_before = engine.dispatches();

    // Withhold the proof, as the prover does for a RACE505 kernel.
    for kp in &mut program.kernels {
        kp.disjoint = DisjointProof::Unproven("withheld for the fallback test".into());
    }
    let fallback = program
        .execute_with(&bindings, &ExecOptions::with_threads(4))
        .expect("fallback run");

    assert_eq!(
        engine.race_fallbacks(),
        program.kernels.len() as u64,
        "every unproven kernel execution must be counted as a fallback"
    );
    assert_eq!(
        engine.dispatches(),
        dispatches_before,
        "an unproven kernel must never be dispatched to the lock-free pool"
    );
    assert_eq!(baseline.len(), fallback.len());
    for (b, f) in baseline.iter().zip(&fallback) {
        assert_tensors_bitwise("serial fallback vs lock-free", f, b);
    }
}
