//! Mutation-style negative tests for the static verifier.
//!
//! Each test takes a known-good compiled kernel (MHA with a long
//! sequence: temporal slicing, UTA, staged loads — every analyzer has
//! something to look at), corrupts exactly one invariant, and asserts
//! the verifier reports the expected diagnostic code. Together with the
//! clean-baseline test this pins down both directions: real kernels
//! lint clean, every seeded violation is caught.

use sf_gpu_sim::{Arch, GpuArch};
use sf_ir::{Graph, OpId};
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{DType, Shape};
use spacefusion::codegen::{lower_instructions, AxisWrite, Instr, KernelProgram, MemSpace};
use spacefusion::compiler::{Compiler, FusionPolicy};
use spacefusion::sched::SplitK;
use spacefusion::slicer::derive_combine;
use spacefusion::slicer::AggKind;
use spacefusion::smg::{DimId, Mapping, MappingKind};
use spacefusion::verify::{
    check_instructions, check_partial_aggregate, check_races, verify_kernel, DiagCode,
};

fn mha(l: usize) -> Graph {
    let mut g = Graph::new("mha", DType::F16);
    let q = g.input("Q", Shape::new(vec![256, 64]));
    let k = g.input("K", Shape::new(vec![l, 64]));
    let v = g.input("V", Shape::new(vec![l, 64]));
    let qk = g.gemm(q, k, true).unwrap();
    let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
    let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, sub).unwrap();
    let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, s).unwrap();
    let out = g.gemm(d, v, false).unwrap();
    g.mark_output(out);
    g
}

/// A temporally sliced MHA kernel (UTA accumulators, staged loads) plus
/// its target architecture.
fn mha_kernel() -> (KernelProgram, GpuArch) {
    let p = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
        .compile(&mha(8192))
        .unwrap();
    assert_eq!(p.kernels.len(), 1, "MHA should fuse into one kernel");
    let kp = p.kernels.into_iter().next().unwrap();
    assert!(
        kp.schedule.temporal.is_some(),
        "long-L MHA should slice temporally"
    );
    (kp, p.arch)
}

fn codes(kp: &KernelProgram, arch: &GpuArch) -> Vec<DiagCode> {
    verify_kernel(kp, arch)
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[track_caller]
fn assert_flags(kp: &KernelProgram, arch: &GpuArch, expected: DiagCode) {
    let found = codes(kp, arch);
    assert!(
        found.contains(&expected),
        "expected {expected:?} ({}), got {found:?}",
        expected.code()
    );
}

#[test]
fn baseline_kernel_is_clean() {
    let (kp, arch) = mha_kernel();
    assert_eq!(codes(&kp, &arch), Vec::new());
}

#[test]
fn smg001_reclassified_reduction_mapping() {
    let (mut kp, arch) = mha_kernel();
    let mi = kp
        .schedule
        .smg
        .mappings
        .iter()
        .position(|m| matches!(m.kind, MappingKind::AllToOne(_)))
        .unwrap();
    kp.schedule.smg.mappings[mi].kind = MappingKind::OneToOne;
    assert_flags(&kp, &arch, DiagCode::SmgMappingClass);
}

#[test]
fn smg002_dangling_direction_dimension() {
    let (mut kp, arch) = mha_kernel();
    let mi = kp
        .schedule
        .smg
        .mappings
        .iter()
        .position(|m| m.kind.dim().is_some())
        .unwrap();
    kp.schedule.smg.mappings[mi].kind = MappingKind::AllToOne(DimId(999));
    assert_flags(&kp, &arch, DiagCode::SmgDirectionDim);
}

#[test]
fn smg003_extent_mismatch_after_dimension_corruption() {
    let (mut kp, arch) = mha_kernel();
    let d = kp.schedule.smg.value_axes[0][0]; // Q's row dimension.
    kp.schedule.smg.dims[d.0].extent += 5;
    assert_flags(&kp, &arch, DiagCode::SmgDimAlignment);
}

#[test]
fn smg004_cycle_through_reversed_edge() {
    let (mut kp, arch) = mha_kernel();
    let m = kp.schedule.smg.mappings[0];
    kp.schedule.smg.mappings.push(Mapping {
        src: m.dst,
        dst: m.src,
        kind: MappingKind::OneToOne,
    });
    assert_flags(&kp, &arch, DiagCode::SmgCycle);
}

#[test]
fn slc101_spatial_slice_of_a_reduction_dimension() {
    let (mut kp, arch) = mha_kernel();
    // Q's column dimension is the first GEMM's contraction: it carries
    // an All-to-One, so slicing it spatially splits a flow dependency.
    let k_dim = kp.schedule.smg.value_axes[0][1];
    assert!(kp
        .schedule
        .smg
        .mappings_in_dim(k_dim)
        .iter()
        .any(|m| matches!(m.kind, MappingKind::AllToOne(_))));
    kp.schedule.spatial.push((k_dim, 16));
    assert_flags(&kp, &arch, DiagCode::SlcIllegalSpatialDim);
}

#[test]
fn slc102_sliced_op_is_not_a_reduction_along_the_dim() {
    let (mut kp, arch) = mha_kernel();
    // Op #2 is the element-wise `sub`: no All-to-One along L.
    kp.schedule.temporal.as_mut().unwrap().plan.sliced[0].op = OpId(2);
    assert_flags(&kp, &arch, DiagCode::SlcNotASlicedReduction);
}

#[test]
fn slc103_broken_uta_chain() {
    let (mut kp, arch) = mha_kernel();
    let t = kp.schedule.temporal.as_mut().unwrap();
    // The running sum depends on the running max (exp(-Max) factor);
    // declaring it Simple Aggregate silently drops the rescale.
    let sum = t
        .plan
        .sliced
        .iter_mut()
        .find(|s| matches!(s.agg, AggKind::Uta(_)))
        .expect("MHA has UTA reductions");
    sum.agg = AggKind::Simple;
    assert_flags(&kp, &arch, DiagCode::SlcUpdateChain);
}

#[test]
fn res201_and_res203_shared_memory_over_a_tiny_budget() {
    let (kp, mut arch) = mha_kernel();
    arch.smem_per_block = 1 << 10; // 1 KiB: nothing fits.
    let found = codes(&kp, &arch);
    assert!(found.contains(&DiagCode::ResSmemOverBudget), "{found:?}");
    assert!(found.contains(&DiagCode::ResZeroOccupancy), "{found:?}");
}

#[test]
fn res202_registers_over_a_tiny_budget() {
    let (kp, mut arch) = mha_kernel();
    arch.regs_per_block = 1 << 10;
    assert_flags(&kp, &arch, DiagCode::ResRegsOverBudget);
}

#[test]
fn mem301_cross_thread_value_forced_into_registers() {
    let (mut kp, arch) = mha_kernel();
    // The softmax numerator `exp(...)` feeds the second GEMM across a
    // One-to-All; demote it from shared memory to registers.
    let vi = kp
        .graph
        .values()
        .iter()
        .enumerate()
        .position(|(vi, v)| {
            v.kind == sf_ir::ValueKind::Intermediate
                && kp.schedule.mem.level[vi] == spacefusion::sched::MemLevel::Shared
        })
        .expect("MHA keeps a communicating intermediate in shared memory");
    kp.schedule.mem.level[vi] = spacefusion::sched::MemLevel::Register;
    assert_flags(&kp, &arch, DiagCode::MemCrossThreadRegister);
}

#[test]
fn bar401_dropped_barriers_expose_the_race() {
    let (kp, _arch) = mha_kernel();
    let instrs: Vec<Instr> = lower_instructions(&kp)
        .into_iter()
        .filter(|i| !matches!(i, Instr::Barrier))
        .collect();
    let diags = check_instructions(&kp, &instrs);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::BarMissingBarrier),
        "{diags:?}"
    );
}

#[test]
fn mem302_dropped_loads_leave_reads_unplaced() {
    let (kp, _arch) = mha_kernel();
    let instrs: Vec<Instr> = lower_instructions(&kp)
        .into_iter()
        .filter(|i| !matches!(i, Instr::LoadBlock { .. } | Instr::LoadTile { .. }))
        .collect();
    let diags = check_instructions(&kp, &instrs);
    assert!(
        diags.iter().any(|d| d.code == DiagCode::MemReadUnplaced),
        "{diags:?}"
    );
}

#[test]
fn bnd402_oversized_and_unknown_tile_restrictions() {
    let (mut kp, arch) = mha_kernel();
    let (d, _) = kp.schedule.spatial[0];
    kp.schedule.spatial[0] = (d, kp.schedule.smg.extent(d) * 2);
    assert_flags(&kp, &arch, DiagCode::BndTileOutOfBounds);

    let (mut kp, arch) = mha_kernel();
    kp.schedule.spatial.push((DimId(99), 8));
    assert_flags(&kp, &arch, DiagCode::BndTileOutOfBounds);
}

#[test]
fn lowered_stream_passes_the_race_scan_unmodified() {
    let (kp, _arch) = mha_kernel();
    let instrs = lower_instructions(&kp);
    assert_eq!(check_instructions(&kp, &instrs), Vec::new());
}

/// Seeds one corruption into the lowered stream and asserts the race
/// prover reports exactly the expected code family.
#[track_caller]
fn assert_race(kp: &KernelProgram, instrs: &[Instr], expected: DiagCode) {
    let found: Vec<DiagCode> = check_races(kp, instrs)
        .into_iter()
        .map(|d| d.code)
        .collect();
    assert!(
        found.contains(&expected),
        "expected {expected:?} ({}), got {found:?}",
        expected.code()
    );
}

/// Mutates every `Tiled` axis of every store in the stream.
fn mutate_tiled(instrs: &mut [Instr], f: impl Fn(&mut usize, &mut usize, &mut usize, &mut usize)) {
    let mut hit = false;
    for i in instrs.iter_mut() {
        if let Instr::Store { region, .. } = i {
            for a in region.iter_mut() {
                if let AxisWrite::Tiled {
                    block,
                    span,
                    clamp,
                    extent,
                    ..
                } = a
                {
                    f(block, span, clamp, extent);
                    hit = true;
                }
            }
        }
    }
    assert!(hit, "the kernel should have at least one tiled store axis");
}

/// The MHA kernel with a 4-way split-K partitioning of its tile loop
/// (combine algebra derived from the graph, as the slicer would).
fn split_mha_kernel() -> (KernelProgram, GpuArch) {
    let (mut kp, arch) = mha_kernel();
    let t = kp.schedule.temporal.as_mut().unwrap();
    let combine = derive_combine(&kp.graph, &t.plan).expect("MHA combine algebra derives");
    t.split = Some(SplitK {
        partitions: 4,
        combine,
    });
    (kp, arch)
}

#[test]
fn split_baseline_kernel_is_clean() {
    let (kp, arch) = split_mha_kernel();
    assert_eq!(codes(&kp, &arch), Vec::new());
}

/// Seeds one corruption into the lowered stream and asserts the
/// partial-aggregate check reports `SLC104`.
#[track_caller]
fn assert_partial(kp: &KernelProgram, instrs: &[Instr]) {
    let found: Vec<DiagCode> = check_partial_aggregate(kp, instrs)
        .into_iter()
        .map(|d| d.code)
        .collect();
    assert!(
        found.contains(&DiagCode::SlcPartialAggregate),
        "expected SlcPartialAggregate (SLC104), got {found:?}"
    );
}

#[test]
fn slc104_dropped_partition_in_combine() {
    let (kp, _arch) = split_mha_kernel();
    let mut instrs = lower_instructions(&kp);
    // The combine folds one partition fewer than the schedule
    // dispatches: one partial accumulator is silently dropped.
    let mut hit = false;
    for i in instrs.iter_mut() {
        if let Instr::Combine { partitions, .. } = i {
            *partitions -= 1;
            hit = true;
        }
    }
    assert!(hit, "split kernel should lower Combine instructions");
    assert_partial(&kp, &instrs);
}

#[test]
fn slc104_wrong_combine_operator() {
    let (kp, _arch) = split_mha_kernel();
    let mut instrs = lower_instructions(&kp);
    // Sum partials folded with Max (or max partials with Add): the
    // merge no longer matches the reduction's algebra.
    let c = instrs
        .iter_mut()
        .find_map(|i| match i {
            Instr::Combine { combine, .. } => Some(combine),
            _ => None,
        })
        .expect("split kernel should lower Combine instructions");
    *c = if *c == BinaryOp::Add {
        BinaryOp::Max
    } else {
        BinaryOp::Add
    };
    assert_partial(&kp, &instrs);
}

#[test]
fn slc104_non_rescaled_softmax_partial() {
    let (kp, _arch) = split_mha_kernel();
    let mut instrs = lower_instructions(&kp);
    // The running softmax sum is a UTA partial: merging it without the
    // exp(m_p − m) rescale against the combined max is the classic
    // split-softmax bug.
    let r = instrs
        .iter_mut()
        .find_map(|i| match i {
            Instr::Combine {
                rescaled: r @ true, ..
            } => Some(r),
            _ => None,
        })
        .expect("MHA's UTA reductions need rescaled combines");
    *r = false;
    assert_partial(&kp, &instrs);
}

#[test]
fn slc104_dropped_store_partial() {
    let (kp, _arch) = split_mha_kernel();
    let instrs: Vec<Instr> = lower_instructions(&kp)
        .into_iter()
        .filter(|i| !matches!(i, Instr::StorePartial { .. }))
        .collect();
    assert_partial(&kp, &instrs);
}

#[test]
fn slc104_partial_aggregate_without_a_split_schedule() {
    // The corruption can also run the other way: a stream that parks
    // and folds partials under a schedule that never declared a split.
    let (split_kp, _) = split_mha_kernel();
    let instrs = lower_instructions(&split_kp);
    let (kp, _arch) = mha_kernel();
    assert_partial(&kp, &instrs);
}

#[test]
fn slc104_schedule_combine_drift_is_caught_end_to_end() {
    // Corrupt the *schedule's* declared algebra (not the stream): the
    // lowering propagates it into the Combine instruction and the
    // verifier's independent re-derivation from the graph flags it.
    let (mut kp, arch) = split_mha_kernel();
    let split = kp
        .schedule
        .temporal
        .as_mut()
        .unwrap()
        .split
        .as_mut()
        .unwrap();
    let spec = split.combine.first_mut().expect("split has combine specs");
    spec.op = if spec.op == BinaryOp::Add {
        BinaryOp::Max
    } else {
        BinaryOp::Add
    };
    assert_flags(&kp, &arch, DiagCode::SlcPartialAggregate);
}

#[test]
fn race501_widened_tile_span_overlaps_neighbour_blocks() {
    let (kp, _arch) = mha_kernel();
    let mut instrs = lower_instructions(&kp);
    // Each block now claims twice its stride: block i and block i+1
    // collide on the second half of i's span.
    mutate_tiled(&mut instrs, |block, span, _, _| *span = *block * 2);
    assert_race(&kp, &instrs, DiagCode::RaceOverlappingWrites);
}

#[test]
fn race502_clamp_beyond_the_axis_extent_escapes_the_slot() {
    let (kp, _arch) = mha_kernel();
    let mut instrs = lower_instructions(&kp);
    // The final block's range is cut at `clamp`; pushing the clamp past
    // the axis extent makes it write outside the output slot's storage.
    mutate_tiled(&mut instrs, |_, _, clamp, extent| *clamp = *extent + 7);
    assert_race(&kp, &instrs, DiagCode::RaceWriteEscapesExtent);
}

#[test]
fn race503_compute_write_retargeted_at_global_scratch() {
    let (kp, _arch) = mha_kernel();
    let mut instrs = lower_instructions(&kp);
    let c = instrs
        .iter_mut()
        .find_map(|i| match i {
            Instr::Compute { write, .. } => Some(write),
            _ => None,
        })
        .expect("the kernel computes something");
    // Intermediates live in shared/registers (block-private); a global
    // intermediate would be one buffer shared by all workers.
    c.1 = MemSpace::Global;
    assert_race(&kp, &instrs, DiagCode::RaceScratchAliasing);
}

#[test]
fn race504_readback_of_a_parallel_written_output() {
    let (kp, _arch) = mha_kernel();
    let mut instrs = lower_instructions(&kp);
    let v = instrs
        .iter()
        .find_map(|i| match i {
            Instr::Store { value, .. } => Some(*value),
            _ => None,
        })
        .expect("the kernel stores an output");
    // No grid-wide barrier exists: other blocks' stores are not yet
    // visible, so loading a stored output back is a read of in-flight
    // parallel writes.
    instrs.push(Instr::LoadBlock { value: v });
    assert_race(&kp, &instrs, DiagCode::RaceReadAfterParallelWrite);
}

#[test]
fn race505_opaque_footprint_is_unprovable() {
    let (kp, _arch) = mha_kernel();
    let mut instrs = lower_instructions(&kp);
    let region = instrs
        .iter_mut()
        .find_map(|i| match i {
            Instr::Store { region, .. } => Some(region),
            _ => None,
        })
        .expect("the kernel stores an output");
    region[0] = AxisWrite::Opaque;
    assert_race(&kp, &instrs, DiagCode::RaceUnprovableFootprint);
}
