//! Serve-layer chaos battery: the seeded campaign end-to-end, plus
//! targeted drills for each defense — session watchdog reaping, panic
//! isolation, torn-frame retry, bounded retry budgets, and the
//! bind-probe that refuses to hijack a live daemon.

#![cfg(unix)]

use sf_ir::dsl::print_graph;
use spacefusion::resilience::{
    silence_injected_panics, FaultInjector, FaultKind, FaultPlan, FaultStage,
};
use spacefusion::serve::{
    chaos, CompileRequest, Response, RetryPolicy, ServeClient, ServeConfig, Server,
};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sock_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-chaos-{}-{name}.sock", std::process::id()))
}

fn softmax_req(id: u64) -> CompileRequest {
    CompileRequest {
        id,
        graph: print_graph(&sf_models::subgraphs::softmax(8, 32)),
        seed: 5,
        ..CompileRequest::default()
    }
}

/// The campaign over 10 seeds covers all five serve fault kinds and
/// must finish with zero hangs, zero daemon aborts, zero checksum
/// mismatches, zero snapshot corruptions — and a deterministic report.
#[test]
fn chaos_campaign_is_clean_and_deterministic() {
    let opts = chaos::ChaosOptions {
        socket: sock_path("campaign"),
        seeds: 10,
        seed0: 0,
        clients: 3,
        requests: 4,
        session_timeout_ms: 200,
    };
    let a = chaos::run(&opts).unwrap();
    assert_eq!(a.hangs, 0, "{}", a.text);
    assert_eq!(a.aborts, 0, "{}", a.text);
    assert_eq!(a.mismatches, 0, "{}", a.text);
    assert_eq!(a.snapshot_corruptions, 0, "{}", a.text);
    for kind in [
        "torn-frame",
        "stall-client",
        "drop-connection",
        "crash-session",
        "kill-during-snapshot",
    ] {
        assert!(
            a.text.contains(kind),
            "10 seeds must exercise '{kind}':\n{}",
            a.text
        );
    }
    let b = chaos::run(&opts).unwrap();
    assert_eq!(a.text, b.text, "chaos report must be deterministic");
}

/// A client that stalls mid-frame is reaped within the session timeout
/// while another client keeps completing requests with bounded latency
/// — the slowloris defense.
#[test]
fn stalled_client_is_reaped_while_others_complete() {
    let sock = sock_path("stall");
    let timeout_ms = 200u64;
    let server = Server::bind(
        &sock,
        ServeConfig {
            workers: 2,
            session_timeout_ms: timeout_ms,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let daemon = std::thread::spawn(move || server.run());

    // The staller: two bytes of length prefix, then silence.
    let staller = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&sock).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            stream.write_all(&[0u8, 0u8]).unwrap();
            let start = Instant::now();
            let mut buf = [0u8; 1];
            use std::io::Read as _;
            let n = stream.read(&mut buf).unwrap_or(1);
            (n, start.elapsed())
        })
    };

    // Meanwhile a healthy client completes a burst of requests.
    let mut client = ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();
    let mut worst = Duration::ZERO;
    for i in 0..6 {
        let t = Instant::now();
        match client.compile(softmax_req(i)).unwrap() {
            Response::Ok(_) => {}
            other => panic!("healthy client failed: {other:?}"),
        }
        worst = worst.max(t.elapsed());
    }

    let (n, reap_elapsed) = staller.join().unwrap();
    assert_eq!(n, 0, "the reap must surface as EOF to the staller");
    assert!(
        reap_elapsed >= Duration::from_millis(timeout_ms / 2),
        "reaped suspiciously early: {reap_elapsed:?}"
    );
    assert!(
        reap_elapsed <= Duration::from_millis(timeout_ms * 50),
        "reap took too long: {reap_elapsed:?}"
    );
    // Bounded worst-case latency for the healthy client: generous, but
    // rules out the pre-watchdog failure mode (pinned forever).
    assert!(worst <= Duration::from_secs(20), "worst latency {worst:?}");

    let mut ctl = ServeClient::connect(&sock).unwrap();
    let stats = ctl.stats().unwrap();
    // The staller for sure; the healthy client may also be reaped for
    // idling once its burst is done — that's the idle reaper working.
    assert!(stats.sessions_reaped >= 1, "{stats:?}");
    assert_eq!(stats.ok, 6);
    ctl.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

/// `Server::bind` must refuse to hijack a live daemon (`AddrInUse`) but
/// still replace a genuinely stale socket file.
#[test]
fn bind_refuses_live_daemon_but_replaces_stale_socket() {
    let sock = sock_path("hijack");
    let server = Server::bind(&sock, ServeConfig::default()).unwrap();
    let core = server.core().clone();
    let daemon = std::thread::spawn(move || server.run());
    // Wait until the daemon accepts connections.
    ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();

    match Server::bind(&sock, ServeConfig::default()) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}"),
        Ok(_) => panic!("bind must refuse to hijack a live daemon"),
    }

    core.request_shutdown();
    daemon.join().unwrap().unwrap();
    assert!(!sock.exists());

    // A stale socket file — a listener died without unlinking it — is
    // replaced silently.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "dropped listener leaves the file behind");
    let server = Server::bind(&sock, ServeConfig::default()).unwrap();
    let core = server.core().clone();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();
    assert!(matches!(
        client.compile(softmax_req(1)).unwrap(),
        Response::Ok(_)
    ));
    core.request_shutdown();
    daemon.join().unwrap().unwrap();
}

/// An injected session panic is isolated: counted, connection severed,
/// daemon healthy — and the client recovers through its retry budget.
#[test]
fn session_crash_is_isolated_and_client_recovers() {
    silence_injected_panics();
    let sock = sock_path("crash");
    let faults = Arc::new(FaultInjector::new(FaultPlan::single(
        FaultStage::ServeSession,
        FaultKind::CrashSession,
    )));
    let server = Server::bind(
        &sock,
        ServeConfig {
            workers: 2,
            faults: Some(Arc::clone(&faults)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect_with_retry(&sock, Duration::from_secs(5))
        .unwrap()
        .with_retry(RetryPolicy {
            attempts: 4,
            base_backoff_ms: 2,
            seed: 1,
        });
    match client.compile_with_retry(softmax_req(3)).unwrap() {
        Response::Ok(ok) => assert_eq!(ok.id, 3),
        other => panic!("retry must recover from the crash: {other:?}"),
    }
    assert_eq!(client.retries(), 1, "exactly one resend");
    assert_eq!(faults.fired().len(), 1);

    let mut ctl = ServeClient::connect(&sock).unwrap();
    let stats = ctl.stats().unwrap();
    assert_eq!(stats.sessions_crashed, 1, "{stats:?}");
    assert_eq!(stats.ok, 1);
    ctl.shutdown().unwrap();
    let final_stats = daemon.join().unwrap().unwrap();
    assert_eq!(final_stats.sessions_crashed, 1);
}

/// A torn response frame (truncated at the seeded byte offset) is
/// detected as a typed transport error and recovered by reconnect +
/// resend — with bit-identical results.
#[test]
fn torn_frame_recovers_with_identical_bits() {
    let sock = sock_path("torn");
    let mut plan = FaultPlan::single(FaultStage::ServeWrite, FaultKind::TornFrame);
    plan.faults[0].block = 37;
    let faults = Arc::new(FaultInjector::new(plan));
    let server = Server::bind(
        &sock,
        ServeConfig {
            workers: 2,
            faults: Some(Arc::clone(&faults)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let core = server.core().clone();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect_with_retry(&sock, Duration::from_secs(5))
        .unwrap()
        .with_retry(RetryPolicy::default());
    let first = match client.compile_with_retry(softmax_req(8)).unwrap() {
        Response::Ok(ok) => ok,
        other => panic!("retry must recover from the torn frame: {other:?}"),
    };
    assert_eq!(client.retries(), 1);
    // The recovered answer matches an untouched second request bitwise.
    let second = match client.compile_with_retry(softmax_req(8)).unwrap() {
        Response::Ok(ok) => ok,
        other => panic!("{other:?}"),
    };
    assert_eq!(first.outputs, second.outputs);
    assert_eq!(client.retries(), 1, "no further retries needed");

    core.request_shutdown();
    daemon.join().unwrap().unwrap();
}

/// The retry budget is bounded: a client hammering a full queue gets
/// its shed back (typed, not a hang) once the attempts run out.
#[test]
fn retry_budget_is_bounded_on_persistent_sheds() {
    let sock = sock_path("budget");
    let server = Server::bind(
        &sock,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let core = server.core().clone();
    let daemon = std::thread::spawn(move || server.run());

    // Pin the single worker on a held gate and fill the one queue slot.
    let held = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut c = ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();
            let mut req = softmax_req(100);
            req.hold = Some("g".into());
            c.compile(req)
        })
    };
    while core.in_flight() != 1 {
        std::thread::yield_now();
    }
    let queued = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut c = ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();
            c.compile(softmax_req(101))
        })
    };
    while core.queued() != 1 {
        std::thread::yield_now();
    }

    // Every attempt sheds; the budget must surface the shed, bounded.
    let mut client = ServeClient::connect(&sock)
        .unwrap()
        .with_retry(RetryPolicy {
            attempts: 3,
            base_backoff_ms: 1,
            seed: 9,
        });
    match client.compile_with_retry(softmax_req(102)).unwrap() {
        Response::Retry { id, .. } => assert_eq!(id, 102),
        other => panic!("expected the shed back after the budget: {other:?}"),
    }
    assert_eq!(client.retries(), 2, "attempts - 1 retries");

    core.release_gate("g");
    assert!(matches!(held.join().unwrap(), Ok(Response::Ok(_))));
    assert!(matches!(queued.join().unwrap(), Ok(Response::Ok(_))));
    core.request_shutdown();
    let stats = daemon.join().unwrap().unwrap();
    assert_eq!(stats.ok, 2);
    assert!(stats.sheds >= 3, "{stats:?}");
}
