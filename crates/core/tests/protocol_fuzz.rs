//! Hostile-bytes fuzzing for the serve wire layer: `read_frame` and
//! `Request::from_json` must survive arbitrary input without panicking,
//! without allocating past `MAX_FRAME_BYTES`, and always surfacing a
//! typed `io::Error` (or a clean EOF) — never undefined behavior.

use sf_tensor::rng::XorShiftRng;
use spacefusion::serve::json::{self, Json};
use spacefusion::serve::protocol::{read_frame, Request, MAX_FRAME_BYTES};
use std::io::{self, Read};

/// A reader that serves a fixed prefix and counts how many bytes the
/// consumer actually pulled — the oracle for "rejected before the body
/// was read".
struct CountingReader {
    data: Vec<u8>,
    pos: usize,
}

impl CountingReader {
    fn new(data: Vec<u8>) -> Self {
        CountingReader { data, pos: 0 }
    }
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A big-endian length-prefixed frame around `body`.
fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

/// Seeded random byte streams: `read_frame` never panics; every outcome
/// is a typed error, a clean EOF, or a (rare) well-formed frame.
#[test]
fn random_byte_streams_never_panic() {
    let mut rng = XorShiftRng::seed_from_u64(0xF022_0001);
    for _ in 0..500 {
        let len = rng.below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let mut r = CountingReader::new(bytes);
        match read_frame(&mut r) {
            Ok(None) | Ok(Some(_)) => {}
            Err(e) => {
                // Typed: every error carries a kind and a message.
                let _ = (e.kind(), e.to_string());
            }
        }
    }
}

/// Truncating a valid frame at every byte offset yields a clean EOF
/// (offset 0) or a typed `UnexpectedEof` — never a hang or panic.
#[test]
fn truncation_sweep_is_typed() {
    let whole = frame(br#"{"op":"stats"}"#);
    for cut in 0..whole.len() {
        let mut r = CountingReader::new(whole[..cut].to_vec());
        match read_frame(&mut r) {
            Ok(None) => assert_eq!(cut, 0, "clean EOF only before any byte"),
            Ok(Some(_)) => panic!("cut={cut}: truncated frame parsed whole"),
            Err(e) => {
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}: {e}");
            }
        }
    }
    // And the untouched frame still parses whole.
    let mut r = CountingReader::new(whole);
    let doc = read_frame(&mut r).unwrap().unwrap();
    assert!(Request::from_json(&doc).is_ok());
}

/// An oversized length prefix is rejected *before* the body is read —
/// no multi-gigabyte allocation on a 4-byte lie.
#[test]
fn oversized_length_prefix_rejected_before_body() {
    let mut bytes = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
    bytes.extend_from_slice(&[b'x'; 64]);
    let mut r = CountingReader::new(bytes);
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert_eq!(r.pos, 4, "only the prefix may be consumed: {}", r.pos);

    // u32::MAX likewise: typed rejection, not an allocation attempt.
    let mut r = CountingReader::new(u32::MAX.to_be_bytes().to_vec());
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert_eq!(r.pos, 4);
}

/// A prefix claiming more body than the peer delivers reads only what
/// arrived (incremental `take`-bounded allocation) and errors typed.
#[test]
fn short_body_is_unexpected_eof() {
    let mut bytes = 1024u32.to_be_bytes().to_vec();
    bytes.extend_from_slice(b"only ten b");
    let mut r = CountingReader::new(bytes);
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    assert_eq!(r.pos, 14, "everything sent was read, nothing more");
}

/// Non-UTF-8 bytes in a well-formed frame are a typed `InvalidData`.
#[test]
fn non_utf8_body_is_invalid_data() {
    let mut r = CountingReader::new(frame(&[0xFF, 0xFE, 0x80, 0x81]));
    let err = read_frame(&mut r).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
}

/// Seeded random JSON-ish documents through the full pipeline
/// (`json::parse` then `Request::from_json`): no panics, typed errors.
#[test]
fn random_json_documents_never_panic() {
    let alphabet: &[u8] = br#"{}[]",:0123456789.eE+-truefalsenulabc\"#;
    let mut rng = XorShiftRng::seed_from_u64(0xD0C5_0002);
    let mut parsed = 0u32;
    for _ in 0..2000 {
        let len = rng.below(80) as usize;
        let doc: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize] as char)
            .collect();
        if let Ok(v) = json::parse(&doc) {
            parsed += 1;
            // A parse success may still be a malformed request.
            let _ = Request::from_json(&v);
        }
    }
    assert!(parsed > 0, "the alphabet must produce some valid documents");
}

/// Structurally valid JSON that is semantically hostile: wrong types,
/// missing fields, absurd values — `Request::from_json` errors typed,
/// with a human-readable message.
#[test]
fn hostile_request_shapes_error_cleanly() {
    for doc in [
        r#"{}"#,
        r#"{"op":"unknown-verb"}"#,
        r#"{"op":"compile"}"#,
        r#"{"op":"compile","id":1,"graph":[1,2,3]}"#,
        r#"{"op":"compile","graph":"g","arch":"not-an-arch"}"#,
        r#"{"op":"compile","graph":"g","policy":"not-a-policy"}"#,
        r#"{"op":"compile","graph":"g","deadline_ms":"soon"}"#,
        r#"[1,2,3]"#,
        r#""just a string""#,
    ] {
        let v = match json::parse(doc) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let err = Request::from_json(&v).unwrap_err();
        assert!(!err.is_empty(), "error for {doc} must carry a message");
    }
}

/// Deeply nested arrays hit the parser depth cap as a typed error —
/// not a stack overflow.
#[test]
fn deep_nesting_is_capped_not_overflowed() {
    let deep = "[".repeat(json::MAX_JSON_DEPTH * 8);
    assert!(json::parse(&deep).is_err());
    // Just under the cap still parses.
    let ok_depth =
        "[".repeat(json::MAX_JSON_DEPTH - 1) + "1" + &"]".repeat(json::MAX_JSON_DEPTH - 1);
    assert!(matches!(json::parse(&ok_depth), Ok(Json::Arr(_))));
}
