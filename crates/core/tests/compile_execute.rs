//! End-to-end compiler correctness: compile → execute must reproduce the
//! unfused reference numerics for every policy and workload shape.

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{assert_tensors_close, DType, Shape, Tolerance};
use spacefusion::compiler::{CompileOptions, Compiler, FusionPolicy};

/// The historical per-test absolute tolerances, upgraded to the shared
/// comparator: the absolute value keeps its role as cancellation floor,
/// and a 256-ULP relative budget covers re-associated reductions on
/// large-magnitude values (a GEMM row of extent 4096 re-summed in
/// blocks drifts by ~extent ULPs in the worst case).
fn tol(abs: f32) -> Tolerance {
    Tolerance::new(abs, 256)
}

fn softmax_graph(m: usize, n: usize) -> Graph {
    let mut g = Graph::new("softmax", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
    let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, s).unwrap();
    let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, z).unwrap();
    g.mark_output(d);
    g
}

fn mha_graph(m: usize, l: usize, k: usize) -> Graph {
    let mut g = Graph::new("mha", DType::F32);
    let q = g.input("q", Shape::new(vec![m, k]));
    let kk = g.input("k", Shape::new(vec![l, k]));
    let v = g.input("v", Shape::new(vec![l, k]));
    let qk = g.gemm(q, kk, true).unwrap();
    let sc = g
        .scalar(BinaryOp::Mul, qk, 1.0 / (k as f32).sqrt())
        .unwrap();
    let mx = g.reduce(ReduceOp::Max, sc, 1).unwrap();
    let sub = g.binary(BinaryOp::Sub, sc, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, sub).unwrap();
    let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, s).unwrap();
    let out = g.gemm(d, v, false).unwrap();
    g.mark_output(out);
    g
}

fn mlp_graph(layers: usize, m: usize, h: usize) -> Graph {
    let mut g = Graph::new("mlp", DType::F32);
    let mut x = g.input("x", Shape::new(vec![m, h]));
    for i in 0..layers {
        let w = g.weight(format!("w{i}"), Shape::new(vec![h, h]));
        let b = g.weight(format!("b{i}"), Shape::new(vec![1, h]));
        let t = g.gemm(x, w, false).unwrap();
        let t = g.binary(BinaryOp::Add, t, b).unwrap();
        x = g.unary(UnaryOp::Relu, t).unwrap();
    }
    g.mark_output(x);
    g
}

fn layernorm_graph(m: usize, n: usize) -> Graph {
    let mut g = Graph::new("layernorm", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("w", Shape::new(vec![1, n]));
    let b = g.weight("b", Shape::new(vec![1, n]));
    let mean = g.reduce(ReduceOp::Mean, x, 1).unwrap();
    let c = g.binary(BinaryOp::Sub, x, mean).unwrap();
    let sq = g.unary(UnaryOp::Sqr, c).unwrap();
    let var = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
    let veps = g.scalar(BinaryOp::Add, var, 1e-5).unwrap();
    let std = g.unary(UnaryOp::Sqrt, veps).unwrap();
    let norm = g.binary(BinaryOp::Div, c, std).unwrap();
    let sc = g.binary(BinaryOp::Mul, norm, w).unwrap();
    let y = g.binary(BinaryOp::Add, sc, b).unwrap();
    g.mark_output(y);
    g
}

fn rmsnorm_graph(m: usize, n: usize) -> Graph {
    let mut g = Graph::new("rmsnorm", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let w = g.weight("w", Shape::new(vec![1, n]));
    let sq = g.unary(UnaryOp::Sqr, x).unwrap();
    let ms = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
    let eps = g.scalar(BinaryOp::Add, ms, 1e-5).unwrap();
    let rms = g.unary(UnaryOp::Sqrt, eps).unwrap();
    let n1 = g.binary(BinaryOp::Div, x, rms).unwrap();
    let y = g.binary(BinaryOp::Mul, n1, w).unwrap();
    g.mark_output(y);
    g
}

/// Compiles under a policy and checks numerics against the reference.
fn check(g: &Graph, policy: FusionPolicy, arch: Arch, seed: u64, tol: Tolerance) {
    let compiler = Compiler::with_policy(arch, policy);
    let program = compiler
        .compile(g)
        .unwrap_or_else(|e| panic!("compile failed for {} under {policy:?}: {e}", g.name()));
    let bindings = g.random_bindings(seed);
    let expect = g.execute(&bindings).unwrap();
    let got = program
        .execute(&bindings)
        .unwrap_or_else(|e| panic!("execute failed for {} under {policy:?}: {e}", g.name()));
    assert_eq!(got.len(), expect.len());
    for (i, (a, b)) in got.iter().zip(expect.iter()).enumerate() {
        assert_tensors_close(
            &format!("{} under {policy:?}, output {i}", g.name()),
            a,
            b,
            tol,
        );
    }
}

#[test]
fn softmax_fused_matches_reference() {
    check(
        &softmax_graph(64, 256),
        FusionPolicy::SpaceFusion,
        Arch::Ampere,
        1,
        tol(1e-5),
    );
}

#[test]
fn softmax_with_uneven_tiles_matches() {
    // Extents that do not divide the block sizes exercise edge clamping.
    check(
        &softmax_graph(37, 100),
        FusionPolicy::SpaceFusion,
        Arch::Ampere,
        2,
        tol(1e-5),
    );
}

#[test]
fn softmax_unfused_matches_reference() {
    check(
        &softmax_graph(64, 256),
        FusionPolicy::Unfused,
        Arch::Ampere,
        3,
        tol(1e-5),
    );
}

#[test]
fn mha_flash_attention_schedule_matches() {
    // Long sequence forces the temporal slicer + UTA: this is the
    // mechanically derived FlashAttention, validated numerically.
    let g = mha_graph(64, 2048, 64);
    let compiler = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(program.kernels.len(), 1, "MHA must fuse into one kernel");
    assert!(
        program.kernels[0].schedule.temporal.is_some(),
        "long-sequence MHA must be temporally sliced"
    );
    check(&g, FusionPolicy::SpaceFusion, Arch::Volta, 4, tol(1e-3));
}

#[test]
fn mha_short_sequence_matches() {
    check(
        &mha_graph(32, 64, 32),
        FusionPolicy::SpaceFusion,
        Arch::Hopper,
        5,
        tol(1e-4),
    );
}

#[test]
fn mha_all_policies_match() {
    let g = mha_graph(32, 128, 32);
    for policy in [
        FusionPolicy::SpaceFusion,
        FusionPolicy::Unfused,
        FusionPolicy::EpilogueOnly,
        FusionPolicy::MiOnly,
        FusionPolicy::TileGraph,
    ] {
        check(&g, policy, Arch::Ampere, 6, tol(1e-4));
    }
}

#[test]
fn mlp_stack_fuses_and_matches() {
    let g = mlp_graph(4, 64, 64);
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(
        program.kernels.len(),
        1,
        "small MLP stack should fully fuse"
    );
    check(&g, FusionPolicy::SpaceFusion, Arch::Ampere, 7, tol(1e-3));
}

#[test]
fn mlp_unfused_has_one_kernel_per_op() {
    let g = mlp_graph(3, 32, 32);
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::Unfused);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(program.kernels.len(), 9);
    check(&g, FusionPolicy::Unfused, Arch::Ampere, 8, tol(1e-4));
}

#[test]
fn mlp_epilogue_policy_groups_gemm_plus_epilogue() {
    let g = mlp_graph(3, 32, 32);
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::EpilogueOnly);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(program.kernels.len(), 3, "one kernel per gemm+bias+relu");
    check(&g, FusionPolicy::EpilogueOnly, Arch::Ampere, 9, tol(1e-4));
}

#[test]
fn layernorm_fuses_to_one_kernel_and_matches() {
    let g = layernorm_graph(128, 256);
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(program.kernels.len(), 1);
    check(&g, FusionPolicy::SpaceFusion, Arch::Ampere, 10, tol(1e-4));
}

#[test]
fn layernorm_mi_only_also_fuses() {
    // LayerNorm is all memory-intensive ops: the AStitch-like policy
    // fuses it too (paper Table 6: MI fusion is where BladeDISC works).
    let g = layernorm_graph(64, 128);
    let compiler = Compiler::with_policy(Arch::Ampere, FusionPolicy::MiOnly);
    let program = compiler.compile(&g).unwrap();
    assert_eq!(program.kernels.len(), 1);
    check(&g, FusionPolicy::MiOnly, Arch::Ampere, 11, tol(1e-4));
}

#[test]
fn rmsnorm_streams_with_simple_aggregate() {
    let g = rmsnorm_graph(64, 512);
    check(&g, FusionPolicy::SpaceFusion, Arch::Ampere, 12, tol(1e-4));
}

#[test]
fn welder_policy_partitions_long_mha() {
    // Without UTA the fused MHA is unschedulable at long sequence
    // lengths; the tile-graph policy must fall back to multiple kernels
    // (the paper's "NNFusion fails to fuse MHA with long sequence
    // lengths") while staying numerically correct.
    let g = mha_graph(64, 4096, 64);
    let compiler = Compiler::with_policy(Arch::Volta, FusionPolicy::TileGraph);
    let program = compiler.compile(&g).unwrap();
    assert!(
        program.kernels.len() > 1,
        "tile-graph policy should have split long MHA"
    );
    let sf = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion);
    let sf_program = sf.compile(&g).unwrap();
    assert_eq!(sf_program.kernels.len(), 1, "SpaceFusion keeps one kernel");
    check(&g, FusionPolicy::TileGraph, Arch::Volta, 13, tol(1e-3));
}

#[test]
fn compile_stats_record_search_space() {
    let g = mha_graph(128, 512, 64);
    let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
    let program = compiler.compile(&g).unwrap();
    assert!(program.stats.configs > 1);
    assert_eq!(
        program.stats.evaluated + program.stats.pruned,
        program.stats.configs
    );
    assert!(program.stats.total_us > 0.0);
    // MHA has 4 A2O mappings: it must appear in the fusion census.
    assert_eq!(program.stats.fusion_patterns.len(), 1);
}

#[test]
fn schedule_cache_hits_on_repeated_shapes() {
    let g = softmax_graph(64, 256);
    let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
    let p1 = compiler.compile(&g).unwrap();
    assert_eq!(p1.stats.cache_hits, 0);
    let p2 = compiler.compile(&g).unwrap();
    assert_eq!(p2.stats.cache_hits, 1);
    // Cached compilation still executes correctly.
    let bindings = g.random_bindings(14);
    let expect = g.execute(&bindings).unwrap();
    let got = p2.execute(&bindings).unwrap();
    assert_tensors_close("cached softmax", &got[0], &expect[0], tol(1e-5));
}

#[test]
fn profile_reports_cache_and_dram_counters() {
    let g = mha_graph(128, 512, 64);
    let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
    let fused = compiler.compile(&g).unwrap();
    let unfused = Compiler::with_policy(Arch::Ampere, FusionPolicy::Unfused)
        .compile(&g)
        .unwrap();
    let fr = fused.profile(1);
    let ur = unfused.profile(1);
    assert!(fr.stats.dram_total_bytes() > 0);
    // Fusion must reduce DRAM traffic and simulated time.
    assert!(
        fr.stats.dram_total_bytes() < ur.stats.dram_total_bytes(),
        "fused {} vs unfused {}",
        fr.stats.dram_total_bytes(),
        ur.stats.dram_total_bytes()
    );
    assert!(fr.time_us < ur.time_us);
    assert_eq!(ur.stats.kernels as usize, unfused.kernels.len());
}

#[test]
fn batched_instances_scale_profile() {
    let mut g = mha_graph(128, 256, 64);
    g.instances = 8;
    let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
    let p = compiler.compile(&g).unwrap();
    let r1 = {
        let mut g1 = mha_graph(128, 256, 64);
        g1.instances = 1;
        compiler.compile(&g1).unwrap().profile(1)
    };
    let r8 = p.profile(2);
    // Eight instances move ~8x the data.
    let ratio = r8.stats.dram_total_bytes() as f64 / r1.stats.dram_total_bytes() as f64;
    assert!((4.0..=12.0).contains(&ratio), "ratio {ratio}");
}
