//! End-to-end resilience: every injected fault either recovers
//! transparently or degrades down the ladder to output bit-identical
//! to the unfused reference interpreter.
//!
//! Fault kinds covered: scheduler panics (pass isolation +
//! `SfError::Internal`), forced resource infeasibility (absorbed by
//! the Alg.-2 fallback — a recovery, not a degradation), injected
//! deadline expiry (`SfError::Timeout` → ladder), cache poisoning
//! (validation on rebuild → invalidate + recompute), and worker
//! crashes (block isolation → per-kernel reference fallback in
//! `execute_resilient`).

use sf_gpu_sim::Arch;
use sf_ir::Graph;
use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{assert_tensors_bitwise, DType, Shape};
use spacefusion::codegen::ExecOptions;
use spacefusion::compiler::{CompileOptions, FusionPolicy};
use spacefusion::pipeline::{CollectingSink, CompileSession, PassId};
use spacefusion::resilience::{
    silence_injected_panics, Fault, FaultInjector, FaultKind, FaultPlan, FaultStage, Rung,
};
use spacefusion::sched::SlicingOptions;
use spacefusion::SfError;
use std::sync::Arc;

/// Options for compiles whose outputs are asserted bit-identical to the
/// unfused reference interpreter. Split-K schedules fold per-partition
/// partial accumulators, which re-associates the sliced reduction: the
/// result is deterministic at every thread count but differs from the
/// reference's serial association by rounding, so the ladder's bit-exact
/// contract is only checkable with split-K off.
fn reference_exact_options() -> CompileOptions {
    CompileOptions {
        slicing: SlicingOptions {
            enable_split: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn softmax(m: usize, n: usize) -> Graph {
    let mut g = Graph::new("softmax", DType::F32);
    let x = g.input("x", Shape::new(vec![m, n]));
    let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
    let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
    let e = g.unary(UnaryOp::Exp, s).unwrap();
    let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
    let d = g.binary(BinaryOp::Div, e, z).unwrap();
    g.mark_output(d);
    g
}

fn session_with(plan: FaultPlan) -> (CompileSession, Arc<FaultInjector>) {
    silence_injected_panics();
    let inj = Arc::new(FaultInjector::new(plan));
    let session = CompileSession::new(Arch::Ampere, reference_exact_options())
        .with_workers(1)
        .with_faults(inj.clone());
    (session, inj)
}

/// Compiles under `plan`, executes, and asserts the outputs are
/// bit-identical to the reference interpreter. Returns the recorded
/// compile-time degradation steps.
fn compile_execute_check(plan: FaultPlan) -> Vec<spacefusion::resilience::DegradationStep> {
    let g = softmax(64, 256);
    let (session, _inj) = session_with(plan);
    let program = session.compile(&g).expect("resilient compile must succeed");
    let bindings = g.random_bindings(7);
    let want = g.execute(&bindings).unwrap();
    let got = program.execute(&bindings).unwrap();
    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
        assert_tensors_bitwise(&format!("output {i}"), a, b);
    }
    program.stats.degradations.clone()
}

#[test]
fn injected_panic_degrades_and_stays_bit_exact() {
    let steps = compile_execute_check(FaultPlan::single(FaultStage::Schedule, FaultKind::Panic));
    assert!(!steps.is_empty(), "a caught panic must be recorded");
    assert!(steps[0].rung >= Rung::Partitioned);
    assert!(
        steps[0].reason.contains("injected panic"),
        "reason must name the fault: {}",
        steps[0].reason
    );
}

#[test]
fn forced_infeasibility_recovers_via_partitioning_fallback() {
    let g = softmax(64, 256);
    let (session, inj) = session_with(FaultPlan::single(
        FaultStage::Schedule,
        FaultKind::ForceInfeasible,
    ));
    let program = session.compile(&g).expect("Alg.-2 fallback must absorb it");
    assert_eq!(inj.fired().len(), 1, "the fault must actually fire");
    // ResourceInfeasible is handled by the paper's own partitioning
    // fallback inside the primary rung: a recovery, not a degradation.
    assert!(
        program.stats.degradations.is_empty(),
        "{:?}",
        program.stats.degradations
    );
    let bindings = g.random_bindings(9);
    let want = g.execute(&bindings).unwrap();
    let got = program.execute(&bindings).unwrap();
    for (a, b) in got.iter().zip(want.iter()) {
        assert_tensors_bitwise("out", a, b);
    }
}

#[test]
fn injected_deadline_expiry_degrades_with_timeout_reason() {
    let steps = compile_execute_check(FaultPlan::single(
        FaultStage::Schedule,
        FaultKind::ExpireDeadline,
    ));
    assert!(!steps.is_empty());
    assert!(
        steps[0].reason.contains("deadline"),
        "reason must mention the deadline: {}",
        steps[0].reason
    );
}

#[test]
fn zero_budget_still_compiles_best_so_far() {
    // A zero budget expires immediately, but the first candidate is
    // always evaluated: expiry narrows the search, it never fails a
    // graph that has any feasible schedule.
    let g = softmax(64, 256);
    let opts = CompileOptions {
        schedule_budget_ms: Some(0),
        ..reference_exact_options()
    };
    let program = CompileSession::new(Arch::Ampere, opts)
        .compile(&g)
        .expect("zero budget must still produce a program");
    assert!(program.stats.degradations.is_empty());
    let bindings = g.random_bindings(3);
    let want = g.execute(&bindings).unwrap();
    let got = program.execute(&bindings).unwrap();
    for (a, b) in got.iter().zip(want.iter()) {
        assert_tensors_bitwise("out", a, b);
    }
}

#[test]
fn poisoned_cache_entry_is_detected_and_recomputed() {
    let g = softmax(64, 256);
    let (session, inj) = session_with(FaultPlan::single(
        FaultStage::CachePublish,
        FaultKind::PoisonCache,
    ));
    // First compile publishes the poisoned entry; its own kernels were
    // scheduled before publication and are good.
    let first = session.compile(&g).expect("first compile");
    assert_eq!(inj.fired().len(), 1);
    assert!(first.stats.degradations.is_empty());
    // Second compile hits the poisoned entry, detects the corruption on
    // rebuild, evicts it, and recomputes in place (a Primary-rung
    // recovery step).
    let second = session.compile(&g).expect("second compile must recover");
    let steps = &second.stats.degradations;
    assert_eq!(steps.len(), 1, "{steps:?}");
    assert_eq!(steps[0].rung, Rung::Primary);
    assert!(
        steps[0].reason.contains("evicted and recomputed"),
        "{}",
        steps[0].reason
    );
    let bindings = g.random_bindings(11);
    let want = g.execute(&bindings).unwrap();
    for p in [&first, &second] {
        let got = p.execute(&bindings).unwrap();
        for (a, b) in got.iter().zip(want.iter()) {
            assert_tensors_bitwise("out", a, b);
        }
    }
}

#[test]
fn worker_crash_falls_back_to_reference_kernel() {
    silence_injected_panics();
    let g = softmax(64, 256);
    let program = CompileSession::new(Arch::Ampere, reference_exact_options())
        .compile(&g)
        .unwrap();
    let inj = FaultInjector::new(FaultPlan::single(
        FaultStage::ExecBlock,
        FaultKind::CrashWorker,
    ));
    let bindings = g.random_bindings(5);
    let want = g.execute(&bindings).unwrap();
    let (got, report) = program
        .execute_resilient(&bindings, &ExecOptions::with_threads(2), Some(&inj))
        .expect("crashed kernel must fall back, not abort");
    assert_eq!(inj.fired().len(), 1);
    assert_eq!(report.len(), 1, "{}", report.render());
    assert_eq!(report.steps[0].rung, Rung::Unfused);
    assert!(
        report.steps[0].reason.contains("injected"),
        "{}",
        report.steps[0].reason
    );
    // The fallback re-runs the kernel on the reference interpreter, so
    // the result is exactly the reference result.
    for (a, b) in got.iter().zip(want.iter()) {
        assert_tensors_bitwise("out", a, b);
    }
}

#[test]
fn non_resilient_mode_surfaces_the_panic_as_internal_error() {
    silence_injected_panics();
    let inj = Arc::new(FaultInjector::new(FaultPlan::single(
        FaultStage::Schedule,
        FaultKind::Panic,
    )));
    let opts = CompileOptions {
        resilient: false,
        ..Default::default()
    };
    let session = CompileSession::new(Arch::Ampere, opts)
        .with_workers(1)
        .with_faults(inj);
    match session.compile(&softmax(64, 256)) {
        Err(SfError::Internal { pass, payload }) => {
            assert!(pass.starts_with("schedule:"), "{pass}");
            assert!(payload.contains("injected panic"), "{payload}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }
}

#[test]
fn degradation_steps_surface_as_events() {
    silence_injected_panics();
    let g = softmax(64, 256);
    let sink = Arc::new(CollectingSink::new());
    let inj = Arc::new(FaultInjector::new(FaultPlan::single(
        FaultStage::Schedule,
        FaultKind::Panic,
    )));
    let session = CompileSession::new(Arch::Ampere, CompileOptions::default())
        .with_workers(1)
        .with_faults(inj)
        .with_sink(sink.clone());
    session.compile(&g).unwrap();
    let events = sink.events();
    assert!(
        events.iter().any(|e| e.pass == PassId::Degrade),
        "a Degrade event must reach the sink"
    );
}

#[test]
fn bottom_rung_failure_is_retried_once() {
    // Two ForceInfeasible faults against a single-op graph: the first
    // exhausts the primary rung (a one-op graph cannot be Alg.-2
    // partitioned, so the built-in fallback fails too), the second
    // fires inside the *bottom* rung, where there is no next rung to
    // fall to. The ladder must retry the bottom rung once — single-op
    // kernels are feasible by construction, so the failure is
    // transient — instead of aborting the compilation.
    let mut g = Graph::new("single", DType::F32);
    let x = g.input("x", Shape::new(vec![32, 64]));
    let y = g.unary(UnaryOp::Relu, x).unwrap();
    g.mark_output(y);
    let infeasible = Fault {
        stage: FaultStage::Schedule,
        kind: FaultKind::ForceInfeasible,
        unit: String::new(),
        block: 0,
    };
    let plan = FaultPlan {
        seed: 0,
        faults: vec![infeasible.clone(), infeasible],
    };
    let (session, inj) = session_with(plan);
    let program = session
        .compile(&g)
        .expect("bottom-rung retry must absorb the second fault");
    assert_eq!(inj.fired().len(), 2, "{:?}", inj.fired());
    let steps = &program.stats.degradations;
    assert!(
        steps
            .last()
            .is_some_and(|s| s.reason.contains("bottom rung retried")),
        "{steps:?}"
    );
    let bindings = g.random_bindings(17);
    let want = g.execute(&bindings).unwrap();
    let got = program.execute(&bindings).unwrap();
    for (a, b) in got.iter().zip(want.iter()) {
        assert_tensors_bitwise("out", a, b);
    }
}

#[test]
fn unfused_policy_ladder_still_terminates() {
    // Bottom-rung sanity: even when the primary policy *is* unfused, a
    // panic walks the ladder (partitioned, then unfused again) and the
    // second attempt — fault already spent — succeeds.
    let g = softmax(64, 256);
    silence_injected_panics();
    let inj = Arc::new(FaultInjector::new(FaultPlan::single(
        FaultStage::Schedule,
        FaultKind::Panic,
    )));
    let opts = CompileOptions {
        policy: FusionPolicy::Unfused,
        ..reference_exact_options()
    };
    let session = CompileSession::new(Arch::Ampere, opts)
        .with_workers(1)
        .with_faults(inj);
    let program = session.compile(&g).expect("ladder must terminate");
    assert!(!program.stats.degradations.is_empty());
    let bindings = g.random_bindings(13);
    let want = g.execute(&bindings).unwrap();
    let got = program.execute(&bindings).unwrap();
    for (a, b) in got.iter().zip(want.iter()) {
        assert_tensors_bitwise("out", a, b);
    }
}

#[test]
fn serve_zero_deadline_degrades_instead_of_hanging() {
    // Serve-level deadline flow: a request with `deadline_ms: 0` pushes
    // the compiler's schedule budget to zero. The degradation ladder
    // guarantees forward progress (best-so-far schedules), so the
    // request must answer Ok — never hang, never error.
    use sf_ir::dsl::print_graph;
    use spacefusion::serve::{CompileRequest, Response, ServeConfig, ServeCore};

    let core = ServeCore::start(ServeConfig::default()).unwrap();
    let req = CompileRequest {
        id: 1,
        graph: print_graph(&softmax(64, 256)),
        deadline_ms: Some(0),
        seed: 11,
        ..CompileRequest::default()
    };
    match core.submit(req.clone()) {
        Response::Ok(ok) => assert!(!ok.outputs.is_empty()),
        other => panic!("zero-deadline request must answer Ok, got {other:?}"),
    }
    // An unconstrained request for the same bucket piggybacks on the
    // degraded-but-published program rather than recompiling.
    let relaxed = CompileRequest {
        id: 2,
        deadline_ms: None,
        ..req
    };
    assert!(matches!(core.submit(relaxed), Response::Ok(_)));
    let stats = core.shutdown().unwrap();
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.program_compiles, 1);
}
