//! Exhaustive-interleaving model check of the [`WorkerPool`] condvar /
//! epoch protocol (`crates/core/src/codegen/engine.rs`).
//!
//! The pool's soundness story has two load-bearing claims that no unit
//! test can establish by sampling schedules:
//!
//! 1. **drain-before-return** — `WorkerPool::run` must not return while
//!    any worker still executes the (lifetime-erased) task, or the
//!    `RawTask` borrow dangles;
//! 2. **liveness** — no interleaving of claims, completions and
//!    submissions loses a wakeup (a worker asleep while a job wants its
//!    slot, or a submitter asleep after its job completed).
//!
//! This file model-checks both by exhaustive enumeration, hermetically
//! (no loom, no external dependency). The protocol is transcribed into
//! an explicit state machine whose transitions are exactly the mutex
//! critical sections of `run` / `worker_loop`; a DFS over every
//! reachable interleaving of 2 workers × 2 jobs asserts:
//!
//! * no reachable deadlock with pending work (no lost wakeups),
//! * installed job epochs are never reused,
//! * no worker claims two slots of the same epoch,
//! * a completion never decrements another epoch's job,
//! * a submitter only returns after its job executed on exactly
//!   `slots` workers (drain-before-return),
//! * terminally, every installed job ran to completion.
//!
//! Condvars are modeled precisely: a waiter parks in a waiting location
//! and moves only when a notify transition targets it — no spurious
//! wakeups, otherwise genuine lost-wakeup bugs would be masked. Task
//! execution happens outside the lock and touches no shared protocol
//! state, so it is soundly merged into the completion critical section.
//!
//! To show the checker actually has teeth (and to pin down *why* each
//! piece of the protocol exists), seeded protocol mutations — dropped
//! notifies, `notify_one` instead of `notify_all`, a skipped epoch
//! guard, epoch reuse — must each be caught.
//!
//! **Keep this model in sync with any change to the claim or completion
//! logic in engine.rs** (the module doc there points back here).

use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Where one worker thread is in `worker_loop`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum WLoc {
    /// Holds the lock and checks for a claimable job slot.
    Check,
    /// Parked on the `work` condvar.
    WaitWork,
    /// Executing a claimed slot of the given epoch (outside the lock).
    Exec(u64),
}

/// Where one submitter is in `WorkerPool::run`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum SLoc {
    /// Holds the lock; installs its job if the slot is free.
    Start,
    /// Parked on `done`, queued behind an in-flight job.
    WaitSlot,
    /// Holds the lock; checks its job for completion.
    Await,
    /// Parked on `done`, waiting for its job to complete.
    WaitDone,
    /// Returned from `run` (all of its jobs submitted and drained).
    Done,
}

/// The in-flight job, mirroring `engine::Job` (the fields the protocol
/// reads; the task pointer and panic flag play no scheduling role).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MJob {
    slots: usize,
    taken: usize,
    active: usize,
    epoch: u64,
}

/// One global protocol state (plus assertion bookkeeping).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    job: Option<MJob>,
    /// The pool's monotone epoch counter (`PoolState::epoch`).
    next_epoch: u64,
    w: Vec<WLoc>,
    /// Per-worker `last_epoch`.
    last: Vec<u64>,
    s: Vec<SLoc>,
    /// Jobs each submitter still has to run (sequentially).
    jobs_left: Vec<usize>,
    /// Epoch of each submitter's currently in-flight job.
    sub_epoch: Vec<u64>,
    /// Every epoch ever installed, in order (assert: strictly fresh).
    installed: Vec<u64>,
    /// Executions recorded per epoch.
    execs: BTreeMap<u64, usize>,
    /// (worker, epoch) claims (assert: at most one per pair).
    claims: BTreeSet<(usize, u64)>,
}

/// Seeded protocol mutations the checker must catch.
#[derive(Clone, Copy, Default)]
struct Variant {
    /// Submitter installs the job but never notifies `work`.
    skip_install_notify: bool,
    /// Submitter uses `notify_one` instead of `notify_all` on `work`.
    notify_one_install: bool,
    /// The last finishing worker skips its `done` notify.
    skip_done_notify: bool,
    /// The submitter clears the job slot but never notifies `done`.
    skip_clear_notify: bool,
    /// Worker claim drops the `epoch > last_epoch` freshness guard.
    skip_epoch_guard: bool,
    /// Submitter reuses the previous epoch instead of bumping.
    reuse_epoch: bool,
}

struct Config {
    workers: usize,
    submitters: usize,
    jobs_each: usize,
    /// `slots` requested per job (`run(workers, ..)` in engine.rs).
    slots: usize,
    variant: Variant,
}

/// `done.notify_all()`: wakes completion waiters *and* queued
/// submitters (both park on the same condvar in engine.rs).
fn wake_done_all(st: &mut State) {
    for l in st.s.iter_mut() {
        match l {
            SLoc::WaitDone => *l = SLoc::Await,
            SLoc::WaitSlot => *l = SLoc::Start,
            _ => {}
        }
    }
}

/// `work.notify_all()`: wakes every parked worker.
fn wake_work_all(st: &mut State) {
    for l in st.w.iter_mut() {
        if *l == WLoc::WaitWork {
            *l = WLoc::Check;
        }
    }
}

/// All successor states of `st` (one per enabled atomic transition,
/// branching over nondeterministic notify targets), or a protocol
/// violation.
fn successors(st: &State, cfg: &Config) -> Result<Vec<State>, String> {
    let mut out = Vec::new();

    for i in 0..cfg.workers {
        match st.w[i] {
            // The claim critical section of `worker_loop`.
            WLoc::Check => {
                let mut n = st.clone();
                let mut claimed = false;
                if let Some(job) = n.job.as_mut() {
                    let fresh = job.epoch > n.last[i] || cfg.variant.skip_epoch_guard;
                    if fresh && job.taken < job.slots {
                        job.taken += 1;
                        job.active += 1;
                        let e = job.epoch;
                        if !n.claims.insert((i, e)) {
                            return Err(format!(
                                "worker {i} claimed two slots of epoch {e} (double execution)"
                            ));
                        }
                        n.last[i] = e;
                        n.w[i] = WLoc::Exec(e);
                        claimed = true;
                    }
                }
                if !claimed {
                    n.w[i] = WLoc::WaitWork;
                }
                out.push(n);
            }
            // Task execution (lock-free, no shared protocol state)
            // merged with the completion critical section.
            WLoc::Exec(e) => {
                let mut n = st.clone();
                *n.execs.entry(e).or_insert(0) += 1;
                match n.job.as_mut() {
                    None => {
                        return Err(format!(
                            "job of epoch {e} vanished while worker {i} was still executing \
                             (drain-before-return violated)"
                        ))
                    }
                    Some(job) => {
                        if job.epoch != e {
                            return Err(format!(
                                "completion for epoch {e} would decrement the job of epoch {} \
                                 (epoch misattribution)",
                                job.epoch
                            ));
                        }
                        job.active -= 1;
                        if job.taken == job.slots
                            && job.active == 0
                            && !cfg.variant.skip_done_notify
                        {
                            wake_done_all(&mut n);
                        }
                    }
                }
                n.w[i] = WLoc::Check;
                out.push(n);
            }
            WLoc::WaitWork => {}
        }
    }

    for si in 0..cfg.submitters {
        match st.s[si] {
            // Head of `run`: queue behind an in-flight job, or install.
            SLoc::Start => {
                if st.job.is_some() {
                    let mut n = st.clone();
                    n.s[si] = SLoc::WaitSlot;
                    out.push(n);
                } else {
                    let mut n = st.clone();
                    let e = if cfg.variant.reuse_epoch && !n.installed.is_empty() {
                        n.next_epoch
                    } else {
                        n.next_epoch += 1;
                        n.next_epoch
                    };
                    if n.installed.contains(&e) {
                        return Err(format!("epoch {e} reused for a second job"));
                    }
                    n.installed.push(e);
                    n.job = Some(MJob {
                        slots: cfg.slots,
                        taken: 0,
                        active: 0,
                        epoch: e,
                    });
                    n.sub_epoch[si] = e;
                    n.s[si] = SLoc::Await;
                    if cfg.variant.skip_install_notify {
                        out.push(n);
                    } else if cfg.variant.notify_one_install {
                        // `notify_one` wakes an arbitrary parked worker:
                        // branch over every choice.
                        let waiting: Vec<usize> = (0..cfg.workers)
                            .filter(|&j| n.w[j] == WLoc::WaitWork)
                            .collect();
                        if waiting.is_empty() {
                            out.push(n);
                        } else {
                            for j in waiting {
                                let mut m = n.clone();
                                m.w[j] = WLoc::Check;
                                out.push(m);
                            }
                        }
                    } else {
                        wake_work_all(&mut n);
                        out.push(n);
                    }
                }
            }
            // The completion-wait loop of `run`.
            SLoc::Await => {
                let mut n = st.clone();
                let e = n.sub_epoch[si];
                let complete = matches!(
                    &n.job,
                    Some(j) if j.epoch == e && j.taken == j.slots && j.active == 0
                );
                if complete {
                    let ran = n.execs.get(&e).copied().unwrap_or(0);
                    if ran != cfg.slots {
                        return Err(format!(
                            "submitter returned from epoch {e} after {ran}/{} executions \
                             (drain-before-return violated)",
                            cfg.slots
                        ));
                    }
                    n.job = None;
                    if !cfg.variant.skip_clear_notify {
                        wake_done_all(&mut n);
                    }
                    n.jobs_left[si] -= 1;
                    n.s[si] = if n.jobs_left[si] == 0 {
                        SLoc::Done
                    } else {
                        SLoc::Start
                    };
                } else {
                    n.s[si] = SLoc::WaitDone;
                }
                out.push(n);
            }
            SLoc::WaitSlot | SLoc::WaitDone | SLoc::Done => {}
        }
    }
    Ok(out)
}

/// Explores every reachable interleaving; returns the number of
/// distinct states on success.
fn model_check(cfg: &Config) -> Result<usize, String> {
    let init = State {
        job: None,
        next_epoch: 0,
        w: vec![WLoc::Check; cfg.workers],
        last: vec![0; cfg.workers],
        s: vec![SLoc::Start; cfg.submitters],
        jobs_left: vec![cfg.jobs_each; cfg.submitters],
        sub_epoch: vec![0; cfg.submitters],
        installed: Vec::new(),
        execs: BTreeMap::new(),
        claims: BTreeSet::new(),
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![init.clone()];
    visited.insert(init);
    let mut terminals = 0usize;
    while let Some(st) = stack.pop() {
        let succ = successors(&st, cfg)?;
        if succ.is_empty() {
            // Quiescent: every worker parked, every submitter blocked
            // or done. With work pending this is a lost wakeup.
            if !st.s.iter().all(|l| *l == SLoc::Done) {
                return Err(format!("lost wakeup: deadlock with pending work in {st:?}"));
            }
            if st.job.is_some() {
                return Err(format!(
                    "job left installed after all submitters returned: {st:?}"
                ));
            }
            for e in &st.installed {
                if st.execs.get(e).copied().unwrap_or(0) != cfg.slots {
                    return Err(format!("epoch {e} never ran to completion: {st:?}"));
                }
            }
            terminals += 1;
        }
        for n in succ {
            if visited.insert(n.clone()) {
                stack.push(n.clone());
            }
        }
    }
    assert!(terminals > 0, "exploration never reached a terminal state");
    Ok(visited.len())
}

fn cfg(submitters: usize, jobs_each: usize, slots: usize, variant: Variant) -> Config {
    Config {
        workers: 2,
        submitters,
        jobs_each,
        slots,
        variant,
    }
}

#[test]
fn protocol_has_no_lost_wakeups_for_two_sequential_jobs() {
    // One submitter runs two jobs back to back on 2 workers: the shape
    // of every repeated `execute_kernel` call on the shared engine.
    let states = model_check(&cfg(1, 2, 2, Variant::default())).expect("protocol violation");
    // The space must be non-trivial, or the enumeration proves nothing.
    assert!(states > 50, "suspiciously small state space: {states}");
}

#[test]
fn protocol_has_no_lost_wakeups_for_concurrent_submitters() {
    // Two submitters race for the single job slot (queue-behind-in-
    // flight path) — 2 workers × 2 jobs, concurrently this time.
    let states = model_check(&cfg(2, 1, 2, Variant::default())).expect("protocol violation");
    assert!(states > 100, "suspiciously small state space: {states}");
}

#[test]
fn protocol_is_sound_when_pool_is_larger_than_the_job() {
    // slots=1 on a 2-worker pool: one worker must stay parked and the
    // job still completes (partial-claim path of the guard
    // `taken < slots`).
    model_check(&cfg(2, 2, 1, Variant::default())).expect("protocol violation");
}

#[test]
fn dropped_install_notify_is_caught_as_lost_wakeup() {
    let err = model_check(&cfg(
        1,
        2,
        2,
        Variant {
            skip_install_notify: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("lost wakeup"), "{err}");
}

#[test]
fn notify_one_instead_of_notify_all_is_caught() {
    // With two parked workers and two slots, waking only one worker
    // strands the job at taken == 1 forever on some interleaving.
    let err = model_check(&cfg(
        1,
        1,
        2,
        Variant {
            notify_one_install: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("lost wakeup"), "{err}");
}

#[test]
fn dropped_completion_notify_is_caught() {
    let err = model_check(&cfg(
        1,
        1,
        2,
        Variant {
            skip_done_notify: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("lost wakeup"), "{err}");
}

#[test]
fn dropped_slot_free_notify_strands_queued_submitters() {
    let err = model_check(&cfg(
        2,
        1,
        2,
        Variant {
            skip_clear_notify: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("lost wakeup"), "{err}");
}

#[test]
fn skipped_epoch_guard_is_caught_as_double_claim() {
    // Without `epoch > last_epoch`, a worker that finishes early
    // re-claims a slot of the same job and executes it twice.
    let err = model_check(&cfg(
        1,
        1,
        2,
        Variant {
            skip_epoch_guard: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("two slots of epoch"), "{err}");
}

#[test]
fn epoch_reuse_is_caught() {
    let err = model_check(&cfg(
        1,
        2,
        2,
        Variant {
            reuse_epoch: true,
            ..Default::default()
        },
    ))
    .unwrap_err();
    assert!(err.contains("reused"), "{err}");
}
