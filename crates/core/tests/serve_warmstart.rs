//! Warm-start round trips: serve → snapshot → restart → zero schedule
//! recomputation, plus corrupt-snapshot recovery. All assertions go
//! through `CompileStats` and cache counters — never timing.

use sf_gpu_sim::Arch;
use sf_ir::dsl::print_graph;
use sf_ir::Graph;
use spacefusion::pipeline::{CompileOptions, CompileSession, ScheduleCache};
use spacefusion::serve::{snapshot, CompileRequest, Response, ServeConfig, ServeCore};
use std::path::PathBuf;
use std::sync::Arc;

fn graphs() -> Vec<Graph> {
    vec![
        sf_models::subgraphs::softmax(16, 64),
        sf_models::subgraphs::layernorm(8, 128),
        sf_models::subgraphs::rmsnorm(8, 96),
    ]
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-warm-{}-{name}", std::process::id()))
}

/// Compiles every zoo graph against `cache`, returning the summed
/// tuner evaluations (0 means every schedule came from the cache).
fn compile_all(cache: &Arc<ScheduleCache>) -> usize {
    let mut evaluated = 0;
    for g in graphs() {
        let session = CompileSession::new(Arch::Ampere, CompileOptions::default())
            .with_cache(Arc::clone(cache));
        let program = session.compile(&g).expect("zoo graph compiles");
        evaluated += program.stats.evaluated;
    }
    evaluated
}

#[test]
fn snapshot_round_trip_compiles_nothing_on_reload() {
    let cold = Arc::new(ScheduleCache::new());
    let cold_evaluated = compile_all(&cold);
    assert!(cold_evaluated > 0, "cold compiles must tune something");
    assert!(!cold.is_empty());

    let text = snapshot::render(&cold);
    let warm = Arc::new(ScheduleCache::new());
    let report = snapshot::load_str(&warm, &text);
    assert_eq!(report.loaded, cold.len());
    assert_eq!(report.evicted, 0);

    // Every schedule comes from the warm cache: zero tuner evaluations,
    // zero cache misses. (CompileStats, not timing.)
    let warm_evaluated = compile_all(&warm);
    assert_eq!(warm_evaluated, 0, "warm start must not re-tune");
    assert_eq!(warm.misses(), 0, "warm start must not miss");
    assert!(warm.hits() > 0);
}

#[test]
fn bit_flipped_entry_is_evicted_and_recompiled_in_place() {
    let cold = Arc::new(ScheduleCache::new());
    compile_all(&cold);
    let entries = cold.len();
    let text = snapshot::render(&cold);

    // Flip bits inside one entry's body: its checksum no longer
    // matches, so exactly that entry is evicted on load.
    let target = text.find("spatial=").expect("snapshot has a config line");
    let mut corrupt = text.into_bytes();
    corrupt[target + "spatial=".len()] ^= 0x01;
    let corrupt = String::from_utf8(corrupt).unwrap();

    let warm = Arc::new(ScheduleCache::new());
    let report = snapshot::load_str(&warm, &corrupt);
    assert_eq!(report.evicted, 1, "only the flipped entry is dropped");
    assert_eq!(report.loaded, entries - 1);

    // Recompiled in place: only the evicted schedule misses; afterwards
    // the cache is whole again.
    let evaluated = compile_all(&warm);
    assert!(evaluated > 0, "the evicted entry must re-tune");
    assert_eq!(warm.misses(), 1, "exactly the evicted key recomputes");
    assert_eq!(warm.len(), entries, "cache is whole after recompilation");
}

#[test]
fn truncated_snapshot_drops_only_the_trailing_entry() {
    let cold = Arc::new(ScheduleCache::new());
    compile_all(&cold);
    let entries = cold.len();
    let text = snapshot::render(&cold);

    // Cut the file mid-way through the last entry's body.
    let cut = text.rfind("config").expect("snapshot has config lines");
    let warm = Arc::new(ScheduleCache::new());
    let report = snapshot::load_str(&warm, &text[..cut]);
    assert_eq!(report.evicted, 1, "the partial trailing entry is dropped");
    assert_eq!(report.loaded, entries - 1);

    let evaluated = compile_all(&warm);
    assert!(evaluated > 0);
    assert_eq!(warm.misses(), 1);
    assert_eq!(warm.len(), entries);
}

#[test]
fn serve_restart_warm_starts_from_disk() {
    let snap = tmp_path("restart.sfcache");
    std::fs::remove_file(&snap).ok();
    let reqs: Vec<CompileRequest> = graphs()
        .iter()
        .enumerate()
        .map(|(i, g)| CompileRequest {
            id: i as u64,
            graph: print_graph(g),
            seed: 40 + i as u64,
            ..CompileRequest::default()
        })
        .collect();

    // First daemon lifetime: cold compiles, snapshot saved at shutdown.
    let core = ServeCore::start(ServeConfig {
        workers: 2,
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let first: Vec<Response> = reqs.iter().map(|r| core.submit(r.clone())).collect();
    let cold_stats = core.shutdown().unwrap();
    assert_eq!(cold_stats.warm_loaded, 0);
    assert!(cold_stats.schedule_misses > 0);
    assert!(snap.exists(), "shutdown persisted the snapshot");

    // Second daemon lifetime: every schedule is served warm — zero
    // schedule-cache misses across all (re)compiles.
    let core = ServeCore::start(ServeConfig {
        workers: 2,
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    assert!(core.stats().warm_loaded >= 1);
    assert_eq!(core.stats().warm_evicted, 0);
    let second: Vec<Response> = reqs.iter().map(|r| core.submit(r.clone())).collect();
    let warm_stats = core.shutdown().unwrap();
    assert_eq!(
        warm_stats.schedule_misses, 0,
        "restart must serve every schedule from the snapshot: {warm_stats:?}"
    );
    assert!(warm_stats.schedule_hits > 0);
    assert_eq!(warm_stats.ok, reqs.len() as u64);

    // And the answers are bitwise identical across the restart.
    for (a, b) in first.iter().zip(&second) {
        match (a, b) {
            (Response::Ok(a), Response::Ok(b)) => assert_eq!(a.outputs, b.outputs),
            other => panic!("unexpected response pair {other:?}"),
        }
    }
    std::fs::remove_file(&snap).ok();
}

#[test]
fn serve_restart_recovers_from_corrupt_snapshot() {
    let snap = tmp_path("corrupt.sfcache");
    std::fs::remove_file(&snap).ok();
    let req = CompileRequest {
        id: 0,
        graph: print_graph(&sf_models::subgraphs::softmax(16, 64)),
        seed: 9,
        ..CompileRequest::default()
    };

    let core = ServeCore::start(ServeConfig {
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    core.submit(req.clone());
    core.shutdown().unwrap();

    // Flip a bit inside the snapshot on disk.
    let text = std::fs::read_to_string(&snap).unwrap();
    let target = text.find("pieces").expect("snapshot has a pieces line");
    let mut bytes = text.into_bytes();
    bytes[target + "pieces ".len()] ^= 0x02;
    std::fs::write(&snap, bytes).unwrap();

    // Restart: the corrupt entry is evicted at load (visible in stats),
    // the request recompiles cleanly, and shutdown rewrites a healthy
    // snapshot.
    let core = ServeCore::start(ServeConfig {
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    assert!(core.stats().warm_evicted >= 1);
    match core.submit(req) {
        Response::Ok(_) => {}
        other => panic!("recompile after eviction failed: {other:?}"),
    }
    let stats = core.shutdown().unwrap();
    assert!(stats.schedule_misses > 0, "evicted schedule recomputed");

    // Third lifetime: the rewritten snapshot is whole again.
    let core = ServeCore::start(ServeConfig {
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let stats = core.stats();
    assert!(stats.warm_loaded >= 1);
    assert_eq!(stats.warm_evicted, 0);
    core.shutdown().unwrap();
    std::fs::remove_file(&snap).ok();
}

/// Crash-consistency: a daemon killed *during* the snapshot write — at
/// any seeded byte offset — leaves the previous snapshot intact,
/// because the write goes to a temp file and the rename never happens.
/// The next lifetime warm-starts from the old file with zero evictions.
#[test]
fn kill_during_snapshot_always_leaves_old_snapshot_intact() {
    use spacefusion::resilience::{FaultInjector, FaultKind, FaultPlan, FaultStage};

    let snap = tmp_path("killsnap.sfcache");
    std::fs::remove_file(&snap).ok();
    let reqs: Vec<CompileRequest> = graphs()
        .iter()
        .enumerate()
        .map(|(i, g)| CompileRequest {
            id: i as u64,
            graph: print_graph(g),
            seed: 70 + i as u64,
            ..CompileRequest::default()
        })
        .collect();

    // Lifetime 0: clean shutdown establishes the "old" snapshot.
    let core = ServeCore::start(ServeConfig {
        workers: 2,
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    for r in &reqs {
        core.submit(r.clone());
    }
    core.shutdown().unwrap();
    let old_text = std::fs::read_to_string(&snap).unwrap();
    let old_loaded = {
        let warm = Arc::new(ScheduleCache::new());
        snapshot::load_str(&warm, &old_text).loaded
    };
    assert!(old_loaded >= 1);

    // Kill the snapshot write at a sweep of seeded byte offsets. Every
    // lifetime k: warm-start must load the *old* file whole (proving
    // the previous kill never clobbered it), then die mid-save again.
    for offset_seed in 0..8u64 {
        let mut plan = FaultPlan::single(FaultStage::ServeSnapshot, FaultKind::KillDuringSnapshot);
        plan.faults[0].block = (offset_seed * 997 + 13) as usize;
        let core = ServeCore::start(ServeConfig {
            workers: 2,
            snapshot_path: Some(snap.clone()),
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..ServeConfig::default()
        })
        .unwrap();
        let stats = core.stats();
        assert_eq!(
            stats.warm_evicted, 0,
            "offset {offset_seed}: old snapshot must be intact"
        );
        assert_eq!(stats.warm_loaded as usize, old_loaded);
        for r in &reqs {
            core.submit(r.clone());
        }
        core.shutdown().unwrap();
        // The kill left the old file byte-identical; the partial write
        // only ever reached the temp file.
        assert_eq!(std::fs::read_to_string(&snap).unwrap(), old_text);
    }

    // One clean lifetime at the end: still warm, and shutdown replaces
    // the temp-file debris with a healthy snapshot.
    let core = ServeCore::start(ServeConfig {
        workers: 2,
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let stats = core.shutdown().unwrap();
    assert_eq!(stats.warm_evicted, 0);
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(snap.with_extension("tmp")).ok();
}
