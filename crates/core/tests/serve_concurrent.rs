//! Concurrency soak battery for the serve core: exactly-one-compile
//! bucketing under heavy client fan-in, bitwise-identical responses
//! across clients and execution thread counts, admission-control
//! determinism, and fault resilience mid-compile.

use sf_ir::dsl::print_graph;
use spacefusion::pipeline::FusionPolicy;
use spacefusion::resilience::{
    silence_injected_panics, FaultInjector, FaultKind, FaultPlan, FaultStage,
};
use spacefusion::serve::{CacheOutcome, CompileRequest, Response, ServeConfig, ServeCore};
use std::collections::HashMap;
use std::sync::Mutex;

/// The request zoo: four distinct buckets over two graphs × two
/// policies. Each bucket pins one binding seed so every response for it
/// must be bitwise identical.
fn zoo() -> Vec<CompileRequest> {
    let softmax = print_graph(&sf_models::subgraphs::softmax(16, 64));
    let layernorm = print_graph(&sf_models::subgraphs::layernorm(8, 128));
    let buckets = [
        (softmax.clone(), FusionPolicy::SpaceFusion),
        (softmax, FusionPolicy::Unfused),
        (layernorm.clone(), FusionPolicy::SpaceFusion),
        (layernorm, FusionPolicy::MiOnly),
    ];
    buckets
        .into_iter()
        .enumerate()
        .map(|(k, (graph, policy))| CompileRequest {
            id: k as u64,
            graph,
            policy,
            seed: 1000 + k as u64,
            ..CompileRequest::default()
        })
        .collect()
}

/// Hammers a core with 16 threads × 50 requests round-robining over the
/// zoo and returns the per-bucket response checksums observed.
fn soak(core: &ServeCore, threads: usize, per_thread: usize) -> HashMap<u64, Vec<Vec<u64>>> {
    let reqs = zoo();
    let observed: Mutex<HashMap<u64, Vec<Vec<u64>>>> = Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let reqs = &reqs;
            let observed = &observed;
            let core = core.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let req = reqs[(t + i) % reqs.len()].clone();
                    let id = req.id;
                    match core.submit(req) {
                        Response::Ok(ok) => {
                            assert_eq!(ok.id, id);
                            let sums: Vec<u64> = ok.outputs.iter().map(|o| o.checksum).collect();
                            assert!(!sums.is_empty(), "bucket {id} returned no outputs");
                            observed.lock().unwrap().entry(id).or_default().push(sums);
                        }
                        other => panic!("bucket {id}: unexpected response {other:?}"),
                    }
                }
            });
        }
    });
    observed.into_inner().unwrap()
}

#[test]
fn sixteen_clients_compile_each_bucket_exactly_once() {
    let core = ServeCore::start(ServeConfig {
        workers: 8,
        queue_depth: 1024,
        ..ServeConfig::default()
    })
    .unwrap();
    let observed = soak(&core, 16, 50);
    let stats = core.shutdown().unwrap();
    assert_eq!(stats.requests, 16 * 50);
    assert_eq!(stats.ok, 16 * 50);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.sheds, 0, "queue is deep enough for the soak");
    assert_eq!(
        stats.program_compiles, 4,
        "exactly one compile per bucket, {} requests notwithstanding",
        stats.requests
    );
    assert_eq!(stats.program_hits, 16 * 50 - 4);
    // Every response within a bucket is bitwise identical.
    assert_eq!(observed.len(), 4, "all four buckets served");
    for (bucket, runs) in &observed {
        assert_eq!(runs.len(), 16 * 50 / 4);
        for run in runs {
            assert_eq!(run, &runs[0], "bucket {bucket} diverged across clients");
        }
    }
}

#[test]
fn responses_are_bitwise_identical_across_exec_thread_counts() {
    let mut per_core: Vec<HashMap<u64, Vec<u64>>> = Vec::new();
    for exec_threads in [1, 2, 8] {
        let core = ServeCore::start(ServeConfig {
            workers: 4,
            exec_threads,
            ..ServeConfig::default()
        })
        .unwrap();
        let observed = soak(&core, 8, 8);
        core.shutdown().unwrap();
        per_core.push(
            observed
                .into_iter()
                .map(|(bucket, mut runs)| (bucket, runs.pop().unwrap()))
                .collect(),
        );
    }
    let baseline = &per_core[0];
    for (i, other) in per_core.iter().enumerate().skip(1) {
        assert_eq!(
            baseline, other,
            "exec-thread count #{i} changed response bits"
        );
    }
}

#[test]
fn admission_control_sheds_deterministically_lowest_index_wins() {
    let core = ServeCore::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let softmax = print_graph(&sf_models::subgraphs::softmax(8, 32));
    // A: occupies the single worker, held on a named gate.
    let a = {
        let core = core.clone();
        let graph = softmax.clone();
        std::thread::spawn(move || {
            core.submit(CompileRequest {
                id: 100,
                graph,
                hold: Some("g".into()),
                seed: 1,
                ..CompileRequest::default()
            })
        })
    };
    while core.in_flight() != 1 {
        std::thread::yield_now();
    }
    // B: fills the one queue slot.
    let b = {
        let core = core.clone();
        let graph = softmax.clone();
        std::thread::spawn(move || {
            core.submit(CompileRequest {
                id: 101,
                graph,
                seed: 1,
                ..CompileRequest::default()
            })
        })
    };
    while core.queued() != 1 {
        std::thread::yield_now();
    }
    // C: arrives third — the queue is full at its arrival instant, so it
    // is shed with the next admission index. Lowest index won the slot.
    let c = core.submit(CompileRequest {
        id: 102,
        graph: softmax,
        seed: 1,
        ..CompileRequest::default()
    });
    match c {
        Response::Retry { id, index } => {
            assert_eq!(id, 102);
            assert_eq!(index, 2, "C is the third admission (indices 0, 1, 2)");
        }
        other => panic!("expected retry, got {other:?}"),
    }
    core.release_gate("g");
    let (a, b) = (a.join().unwrap(), b.join().unwrap());
    assert!(matches!(a, Response::Ok(ref ok) if ok.index == 0), "{a:?}");
    assert!(matches!(b, Response::Ok(ref ok) if ok.index == 1), "{b:?}");
    let stats = core.shutdown().unwrap();
    assert_eq!(stats.sheds, 1);
    assert_eq!(stats.ok, 2);
}

#[test]
fn seeded_mid_compile_panic_degrades_and_leaves_no_poison() {
    silence_injected_panics();
    // The injector fires exactly once: the first compile absorbs a
    // schedule-stage panic through the degradation ladder.
    let faults = FaultInjector::new(FaultPlan::single(FaultStage::Schedule, FaultKind::Panic));
    let core = ServeCore::start(ServeConfig {
        workers: 4,
        faults: Some(faults.into()),
        ..ServeConfig::default()
    })
    .unwrap();
    let observed = soak(&core, 16, 10);
    let stats = core.shutdown().unwrap();
    assert_eq!(stats.ok, 160, "every request succeeds despite the fault");
    assert_eq!(stats.errors, 0);
    assert!(
        stats.degradations >= 1,
        "the injected panic must be visible as a degradation, got {stats:?}"
    );
    // The faulted bucket still answers consistently after recovery.
    for runs in observed.values() {
        for run in runs {
            assert_eq!(run, &runs[0]);
        }
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    use spacefusion::serve::{ServeClient, Server};
    use std::time::Duration;

    let sock = std::env::temp_dir().join(format!("sfc-serve-test-{}.sock", std::process::id()));
    let server = Server::bind(
        &sock,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    let mut client = ServeClient::connect_with_retry(&sock, Duration::from_secs(5)).unwrap();
    let req = CompileRequest {
        id: 7,
        graph: print_graph(&sf_models::subgraphs::softmax(8, 32)),
        seed: 3,
        want_data: true,
        ..CompileRequest::default()
    };
    let first = match client.compile(req.clone()).unwrap() {
        Response::Ok(ok) => {
            assert_eq!(ok.id, 7);
            assert_eq!(ok.cache, CacheOutcome::Miss);
            assert!(!ok.outputs.is_empty());
            assert!(ok.outputs[0].data.is_some(), "want_data inlines bits");
            ok
        }
        other => panic!("unexpected response {other:?}"),
    };
    // A second client sees a bucket hit with identical bits.
    let mut client2 = ServeClient::connect(&sock).unwrap();
    match client2.compile(req).unwrap() {
        Response::Ok(ok) => {
            assert_eq!(ok.cache, CacheOutcome::Hit);
            assert_eq!(
                ok.outputs, first.outputs,
                "bitwise identical across clients"
            );
        }
        other => panic!("unexpected response {other:?}"),
    }
    let stats = client2.stats().unwrap();
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.program_compiles, 1);
    client2.shutdown().unwrap();
    let final_stats = daemon.join().unwrap();
    assert_eq!(final_stats.ok, 2);
    assert!(!sock.exists(), "socket file removed at shutdown");
}
