//! SpaceFusion: operator fusion via Space-Mapping Graphs.
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`smg`] — the Space-Mapping Graph abstraction (§4.1): computational
//!   spaces (data + iteration) as nodes, One-to-One / One-to-All /
//!   All-to-One mappings as directed edges with geometric direction
//!   dimensions, built from an operator DFG via dimension alignment.
//! * [`slicer`] — the spatial slicer (§4.2) that carves an SMG into
//!   independent, parallel SMG blocks, and the temporal slicer (§4.3)
//!   that serializes a block into intra-blocks, handling sliced
//!   reductions with Simple Aggregate or Update-then-Aggregate (UTA)
//!   derived through Broadcast Postposition.
//! * [`sched`] — resource-aware slicing (Alg. 1), SMG partitioning
//!   (Alg. 2 + §5.3 candidate exploration) and memory-hierarchy
//!   assignment (§5.4).
//! * [`codegen`] — lowering of scheduled SMGs to tile-level kernel
//!   programs, with a numeric interpreter (correctness) and an
//!   access-stream tracer feeding the `sf-gpu-sim` profiler
//!   (performance). This substitutes for the paper's Triton backend.
//! * [`tune`] — block-size auto-tuning over the enumerated search space
//!   with the paper's early-quit mechanism (§6.5).
//! * [`pipeline`] — the end-to-end pipeline of Fig. 9 as explicit named
//!   passes over a [`pipeline::CompileSession`]: a shared thread-safe
//!   schedule cache (repetitive subprograms compile once, across
//!   threads), concurrent scheduling of independent fusion groups with
//!   deterministic merge order, structured instrumentation events
//!   ([`pipeline::PassEvent`]) delivered to a pluggable
//!   [`pipeline::EventSink`], and the restricted fusion policies used
//!   to model the baseline systems (unfused, epilogue-only,
//!   memory-intensive-only, tile-graph).
//! * [`resilience`] — the degradation ladder (current policy → Alg.-2
//!   partitioned → per-op unfused), `catch_unwind` panic isolation
//!   feeding [`SfError::Internal`], compilation [`resilience::Deadline`]
//!   budgets, and the deterministic fault-injection harness behind
//!   `sfc faultsim`.
//! * [`compiler`] — the thin convenience facade over [`pipeline`]:
//!   `Compiler::new(arch, opts).compile(&graph)`.
//!
//! # Quickstart
//!
//! ```
//! use sf_ir::Graph;
//! use sf_gpu_sim::Arch;
//! use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
//! use sf_tensor::{DType, Shape};
//! use spacefusion::compiler::{CompileOptions, Compiler};
//!
//! // Build a softmax subprogram.
//! let mut g = Graph::new("softmax", DType::F16);
//! let x = g.input("x", Shape::new(vec![128, 256]));
//! let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
//! let s = g.binary(BinaryOp::Sub, x, m).unwrap();
//! let e = g.unary(UnaryOp::Exp, s).unwrap();
//! let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
//! let d = g.binary(BinaryOp::Div, e, z).unwrap();
//! g.mark_output(d);
//!
//! // Compile for A100 and check it fused into a single kernel.
//! let compiler = Compiler::new(Arch::Ampere, CompileOptions::default());
//! let program = compiler.compile(&g).unwrap();
//! assert_eq!(program.kernels.len(), 1);
//! ```

// Every `unsafe` block in the executor must carry a `// SAFETY:`
// justification (audited; enforced by verify.sh).
#[deny(clippy::undocumented_unsafe_blocks)]
pub mod codegen;
pub mod compiler;
pub mod error;
// The no-new-unwrap gate: panics in the pipeline and resilience layers
// are bugs by construction (the whole point is to degrade, not abort),
// so `unwrap`/`expect` are denied outright. Test modules opt back in
// locally with `#[allow]`.
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod pipeline;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod resilience;
pub mod rewrite;
// The serving layer runs unattended: a stray panic there is an outage,
// so the same deny gate applies.
pub mod sched;
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod serve;
pub mod slicer;
pub mod smg;
pub mod tune;
pub mod verify;

pub use compiler::{CompileOptions, CompiledProgram, Compiler, FusionPolicy};
pub use error::{Result, SfError};
pub use pipeline::{CompileSession, ScheduleCache};
pub use resilience::{Deadline, DegradationReport, FaultInjector, FaultPlan};
pub use smg::{DimId, Mapping, MappingKind, Smg, SpaceId, SpaceKind};
