//! Kernel code generation (the paper's Triton-backend substitute).
//!
//! A scheduled SMG lowers to a [`KernelProgram`]: the fused subgraph plus
//! its concrete [`crate::sched::FusedSchedule`] and derived operator
//! roles. Two consumers interpret the same program:
//!
//! * [`exec`] executes it numerically over real tensors, block by block
//!   and intra-block by intra-block, including the running aggregations
//!   with Simple Aggregate / Update-then-Aggregate — this is how the test
//!   suite proves that every generated schedule (including the derived
//!   FlashAttention-style online softmax) is exactly equivalent to the
//!   unfused reference;
//! * [`trace`] replays the program's global-memory access stream into the
//!   `sf-gpu-sim` profiler for the detailed cache/DRAM measurements, and
//!   provides the cheap analytic cost estimate used inside the
//!   auto-tuner.

pub mod emit;
pub mod engine;
pub mod exec;
pub mod instr;
pub mod program;
pub mod trace;

pub use emit::emit_pseudocode;
pub use engine::{serial_cutoff, ExecEngine, WorkerPool, MIN_PARALLEL_WORK};
pub use exec::{execute_kernel, execute_kernel_faulted, execute_kernel_with, ExecOptions};
pub use instr::{lower_instructions, store_region, AxisWrite, Instr, MemSpace};
pub use program::KernelProgram;
pub use trace::{estimate_accumulate_cost, estimate_cost, trace_kernel};
