//! A linear instruction form of a scheduled kernel.
//!
//! [`emit_pseudocode`](super::emit_pseudocode) renders kernels for
//! humans; this module lowers the same structure into a small
//! instruction stream that analyses can walk mechanically: staged
//! cooperative loads, block-wide barriers, per-operator computes with
//! explicit operand locations, the intra-block loop boundaries and the
//! final stores. The static verifier's barrier/race and
//! placement-consistency checks (see [`crate::verify`]) run over this
//! stream.
//!
//! Barrier discipline mirrors real cooperative kernels: any write that
//! lands in shared memory — a staged tile load or a compute producing a
//! block-visible intermediate — is followed by a block barrier before
//! other threads may read the buffer.

use super::program::KernelProgram;
use crate::sched::{MemLevel, OpRole};
use crate::slicer::AggKind;
use crate::smg::DimId;
use sf_ir::{OpId, ValueId, ValueKind};
use sf_tensor::ops::BinaryOp;

/// Where an operand access lands in the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// Off-chip global memory (visible to every block).
    Global,
    /// Shared memory (visible within one block, requires barriers).
    Shared,
    /// Registers (private to one thread).
    Register,
}

/// Symbolic write interval of one stored-output axis as a function of
/// the spatial block index — the region algebra of the disjoint-write
/// prover ([`crate::verify::races`], DESIGN.md §3h).
///
/// The forms mirror exactly what the interpreter's scatter does
/// (`restricted_ranges` in [`exec`](super::exec)): an axis aligned to a
/// spatially restricted dimension with matching extent receives the
/// block's tile, every other axis is written in full by every block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxisWrite {
    /// Block `i` along `dim` writes `[i*block, min(i*block + span, clamp))`
    /// of an axis whose storage extent is `extent`.
    ///
    /// The lowering always emits `span == block` and
    /// `clamp == extent == smg.extent(dim)`; the prover re-checks those
    /// equalities rather than assuming them, so a corrupted stream (or a
    /// seeded mutation) is caught instead of trusted.
    Tiled {
        /// The partitioned global dimension.
        dim: DimId,
        /// Tile stride: block `i` starts at `i * block`.
        block: usize,
        /// Tile width actually written from the start offset.
        span: usize,
        /// Upper clamp applied to the tile end (the partitioned extent).
        clamp: usize,
        /// Declared storage extent of the axis.
        extent: usize,
    },
    /// Every block writes the whole axis `[0, extent)`. Harmless only
    /// when no other block coordinate varies, or when some *other* axis
    /// of the same store is tiled on every multi-block dimension.
    Full {
        /// Declared storage extent of the axis.
        extent: usize,
    },
    /// The axis cannot be expressed in the affine form (broken
    /// axis↔dimension alignment metadata). Forces `RACE505`.
    Opaque,
}

/// One instruction of the lowered kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Cooperative staged load of a whole-block global tile into shared
    /// memory (lifetime: the whole block).
    LoadBlock {
        /// The staged global value.
        value: ValueId,
    },
    /// Cooperative per-intra-block tile load into shared memory (inside
    /// the temporal loop).
    LoadTile {
        /// The staged, loop-varying global value.
        value: ValueId,
    },
    /// Block-wide barrier (`__syncthreads`).
    Barrier,
    /// One operator evaluation: operand reads at their memory spaces,
    /// one output write.
    Compute {
        /// The evaluated operator.
        op: OpId,
        /// Operand reads (UTA updates additionally read their dependency
        /// accumulators).
        reads: Vec<(ValueId, MemSpace)>,
        /// The produced value and where it lands.
        write: (ValueId, MemSpace),
    },
    /// Start of the intra-block loop (`phase` 1 or 2).
    LoopBegin {
        /// 1 for the aggregation pass, 2 for the re-streaming pass.
        phase: u8,
    },
    /// End of the intra-block loop.
    LoopEnd {
        /// Matches the corresponding [`Instr::LoopBegin`].
        phase: u8,
    },
    /// Final store of an output back to global memory.
    Store {
        /// The stored output value.
        value: ValueId,
        /// Per-axis symbolic write footprint in the spatial block index.
        region: Vec<AxisWrite>,
    },
    /// Split-K phase-1 tail: each partition parks one sliced
    /// reduction's partial aggregate state in its partition-indexed
    /// scratch slot. The partition axis is encoded as a tiling of the
    /// sliced dimension (partition `p` owns tiles `[p·per, (p+1)·per)`),
    /// so the race prover's Tiled algebra discharges slot disjointness
    /// with the same rules as output scatters. The slot is worker
    /// scratch, not a published output: it never enters the prover's
    /// readback set.
    StorePartial {
        /// The sliced reduction's output (the partial state).
        value: ValueId,
        /// Per-axis footprint in the (spatial block × partition) index.
        region: Vec<AxisWrite>,
    },
    /// Split-K combine phase: after the phase-1 pool drain, folds one
    /// sliced reduction's `partitions` partial states pairwise in fixed
    /// partition order. `SLC104` re-checks this instruction against the
    /// combine algebra independently re-derived from the graph.
    Combine {
        /// The combined sliced reduction.
        op: OpId,
        /// Number of partition states folded — must cover the
        /// schedule's full partition count.
        partitions: usize,
        /// The associative merge operator.
        combine: BinaryOp,
        /// Whether both sides are rescaled by the reduction's UTA
        /// update factors before merging.
        rescaled: bool,
    },
}

/// Symbolic write footprint of storing `v` under `kp`'s schedule.
///
/// Derivation mirrors the interpreter's `restricted_ranges`: an axis is
/// tiled iff its declared extent equals the global extent of the dimension
/// it is aligned to *and* that dimension is spatially restricted;
/// otherwise the whole axis is written by every block. Broken alignment
/// metadata (rank mismatch, dangling dimension ids) degrades to
/// [`AxisWrite::Opaque`], which the prover reports as `RACE505`.
pub fn store_region(kp: &KernelProgram, v: ValueId) -> Vec<AxisWrite> {
    let s = &kp.schedule;
    let dims = kp.graph.shape(v).dims().to_vec();
    let axes = match s.smg.value_axes.get(v.0) {
        Some(a) if a.len() == dims.len() => a,
        _ => return vec![AxisWrite::Opaque; dims.len().max(1)],
    };
    dims.iter()
        .zip(axes)
        .map(|(&e, &d)| {
            if d.0 >= s.smg.dims.len() {
                return AxisWrite::Opaque;
            }
            let extent_d = s.smg.extent(d);
            if e == extent_d {
                if let Some(&(_, b)) = s.spatial.iter().find(|&&(rd, _)| rd == d) {
                    return AxisWrite::Tiled {
                        dim: d,
                        block: b,
                        span: b,
                        clamp: extent_d,
                        extent: e,
                    };
                }
            }
            AxisWrite::Full { extent: e }
        })
        .collect()
}

/// Symbolic write footprint of one partition's partial-state slot under
/// a split-K schedule.
///
/// The first axis is the partition index, encoded as a tiling of the
/// sliced dimension: partition `p` covers tiles `[p·per, (p+1)·per)`,
/// i.e. elements `[p·per·tb, min((p+1)·per·tb, extent))`, so distinct
/// partitions own disjoint intervals exactly like spatial blocks along
/// a tiled output axis. The remaining axes are the state's own
/// footprint in the spatial block index ([`store_region`]). A schedule
/// without temporal slicing has no partial states; the footprint
/// degrades to [`AxisWrite::Opaque`].
pub fn partial_region(kp: &KernelProgram, v: ValueId) -> Vec<AxisWrite> {
    let s = &kp.schedule;
    let Some(t) = &s.temporal else {
        return vec![AxisWrite::Opaque];
    };
    let dim = t.plan.dim;
    let extent = if dim.0 < s.smg.dims.len() {
        s.smg.extent(dim)
    } else {
        return vec![AxisWrite::Opaque];
    };
    let n_tiles = extent.div_ceil(t.block.max(1));
    let per = n_tiles.div_ceil(t.partitions());
    let stride = per * t.block;
    let mut region = vec![AxisWrite::Tiled {
        dim,
        block: stride,
        span: stride,
        clamp: extent,
        extent,
    }];
    region.extend(store_region(kp, v));
    region
}

/// Memory space an operand of `kp` is read from.
fn read_space(kp: &KernelProgram, v: ValueId) -> MemSpace {
    match kp.graph.value(v).kind {
        ValueKind::Input | ValueKind::Weight => {
            if kp.schedule.is_staged(v) {
                MemSpace::Shared
            } else {
                MemSpace::Global
            }
        }
        ValueKind::Intermediate => match kp.schedule.level(v) {
            MemLevel::Shared => MemSpace::Shared,
            // Global-level intermediates (kernel outputs) stream back
            // through registers; reads of them inside the kernel see the
            // register copy.
            MemLevel::Register | MemLevel::Global => MemSpace::Register,
        },
    }
}

/// Memory space an op output of `kp` is written to.
fn write_space(kp: &KernelProgram, v: ValueId) -> MemSpace {
    match kp.schedule.level(v) {
        MemLevel::Shared => MemSpace::Shared,
        MemLevel::Register | MemLevel::Global => MemSpace::Register,
    }
}

/// Appends op `oi` as a [`Instr::Compute`], with a trailing barrier when
/// the result is published to shared memory.
fn push_compute(kp: &KernelProgram, out: &mut Vec<Instr>, oi: usize) {
    let op = &kp.graph.ops()[oi];
    let mut reads: Vec<(ValueId, MemSpace)> =
        op.inputs.iter().map(|&i| (i, read_space(kp, i))).collect();
    // A UTA update additionally reads the accumulators of the earlier
    // sliced reductions it rescales by (paper Fig. 7, right).
    if let OpRole::SlicedReduction(idx) = kp.roles[oi] {
        if let Some(t) = &kp.schedule.temporal {
            if let Some(AggKind::Uta(factors)) = t.plan.sliced.get(idx).map(|s| &s.agg) {
                for f in factors {
                    if f.dep.0 < kp.graph.ops().len() {
                        reads.push((kp.graph.ops()[f.dep.0].output, MemSpace::Register));
                    }
                }
            }
        }
    }
    let w = write_space(kp, op.output);
    out.push(Instr::Compute {
        op: OpId(oi),
        reads,
        write: (op.output, w),
    });
    if w == MemSpace::Shared {
        out.push(Instr::Barrier);
    }
}

/// Lowers a kernel into its linear instruction stream.
///
/// The structure matches [`emit_pseudocode`](super::emit_pseudocode) and
/// the interpreter in [`exec`](super::exec): staged whole-block loads,
/// then either the flat op sequence or the phase-1 intra-block loop,
/// post-loop epilogue, optional phase-2 re-streaming loop, and stores.
pub fn lower_instructions(kp: &KernelProgram) -> Vec<Instr> {
    let g = &kp.graph;
    let s = &kp.schedule;
    let mut out = Vec::new();

    let varying = |vi: usize| {
        s.temporal
            .as_ref()
            .map(|t| s.smg.value_has_dim(g, ValueId(vi), t.plan.dim))
            .unwrap_or(false)
    };
    let is_global = |vi: usize| matches!(g.values()[vi].kind, ValueKind::Input | ValueKind::Weight);

    // Staged whole-block loads: cooperative, so consumers must wait on a
    // barrier before reading any element another thread loaded.
    let mut staged_any = false;
    for vi in 0..g.values().len() {
        if is_global(vi) && s.mem.staged[vi] && !varying(vi) {
            out.push(Instr::LoadBlock { value: ValueId(vi) });
            staged_any = true;
        }
    }
    if staged_any {
        out.push(Instr::Barrier);
    }

    // Per-tile loads inside a loop body, with the same cooperative
    // barrier rule.
    let push_tile_loads = |out: &mut Vec<Instr>| {
        let mut any = false;
        for vi in 0..g.values().len() {
            if is_global(vi) && s.mem.staged[vi] && varying(vi) {
                out.push(Instr::LoadTile { value: ValueId(vi) });
                any = true;
            }
        }
        if any {
            out.push(Instr::Barrier);
        }
    };

    match &s.temporal {
        None => {
            for oi in 0..g.ops().len() {
                push_compute(kp, &mut out, oi);
            }
            for &o in g.outputs() {
                out.push(Instr::Store {
                    value: o,
                    region: store_region(kp, o),
                });
            }
        }
        Some(t) => {
            out.push(Instr::LoopBegin { phase: 1 });
            push_tile_loads(&mut out);
            for oi in 0..g.ops().len() {
                if kp.needed_phase1[oi] && kp.roles[oi] != OpRole::PostLoop {
                    push_compute(kp, &mut out, oi);
                }
            }
            out.push(Instr::LoopEnd { phase: 1 });

            // Split-K: each partition parks its partial aggregate
            // states (the phase-1 tail), then — after the pool drain —
            // the combine phase folds them in fixed partition order.
            if let Some(split) = &t.split {
                for sl in &t.plan.sliced {
                    out.push(Instr::StorePartial {
                        value: g.ops()[sl.op.0].output,
                        region: partial_region(kp, g.ops()[sl.op.0].output),
                    });
                }
                for (sl, spec) in t.plan.sliced.iter().zip(&split.combine) {
                    out.push(Instr::Combine {
                        op: sl.op,
                        partitions: split.partitions,
                        combine: spec.op,
                        rescaled: spec.rescale,
                    });
                }
            }

            for oi in 0..g.ops().len() {
                if kp.roles[oi] == OpRole::PostLoop {
                    push_compute(kp, &mut out, oi);
                }
            }

            if t.plan.two_phase {
                out.push(Instr::LoopBegin { phase: 2 });
                push_tile_loads(&mut out);
                for oi in 0..g.ops().len() {
                    if kp.roles[oi] == OpRole::InLoop && kp.needed_output[oi] {
                        push_compute(kp, &mut out, oi);
                    }
                }
                for &o in g.outputs() {
                    if s.smg.value_has_dim(g, o, t.plan.dim) {
                        out.push(Instr::Store {
                            value: o,
                            region: store_region(kp, o),
                        });
                    }
                }
                out.push(Instr::LoopEnd { phase: 2 });
            }
            for &o in g.outputs() {
                if !s.smg.value_has_dim(g, o, t.plan.dim) {
                    out.push(Instr::Store {
                        value: o,
                        region: store_region(kp, o),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, FusionPolicy};
    use sf_gpu_sim::Arch;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(l: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("Q", Shape::new(vec![256, 64]));
        let k = g.input("K", Shape::new(vec![l, 64]));
        let v = g.input("V", Shape::new(vec![l, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn temporal_mha_lowers_to_loop_with_barriers() {
        let g = mha(8192);
        let p = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let instrs = lower_instructions(&p.kernels[0]);
        assert!(instrs.contains(&Instr::LoopBegin { phase: 1 }));
        assert!(instrs.contains(&Instr::LoopEnd { phase: 1 }));
        assert!(instrs.iter().any(|i| matches!(i, Instr::Barrier)));
        assert!(instrs.iter().any(|i| matches!(i, Instr::Store { .. })));
        // Every shared compute write is immediately followed by a
        // barrier (the cooperative publication rule).
        for (i, ins) in instrs.iter().enumerate() {
            if let Instr::Compute {
                write: (_, MemSpace::Shared),
                ..
            } = ins
            {
                assert_eq!(instrs.get(i + 1), Some(&Instr::Barrier), "at {i}");
            }
        }
    }

    #[test]
    fn flat_kernel_has_no_loop_markers() {
        let g = mha(64);
        let p = Compiler::with_policy(Arch::Hopper, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let kp = &p.kernels[0];
        if kp.schedule.temporal.is_none() {
            let instrs = lower_instructions(kp);
            assert!(!instrs.iter().any(|i| matches!(i, Instr::LoopBegin { .. })));
            let computes = instrs
                .iter()
                .filter(|i| matches!(i, Instr::Compute { .. }))
                .count();
            assert_eq!(computes, kp.graph.ops().len());
        }
    }
}
