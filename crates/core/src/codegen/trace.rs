//! Access-stream tracing and analytic cost estimation.
//!
//! [`trace_kernel`] replays the global-memory accesses a kernel performs
//! — following exactly the loop structure of the numeric interpreter —
//! into the `sf-gpu-sim` [`Profiler`], yielding L1/L2 miss counts and
//! DRAM traffic. [`estimate_cost`] computes the same quantities in closed
//! form (without cache simulation); the auto-tuner uses it to rank
//! configurations cheaply (paper §6.5: configurations are measured, with
//! an early-quit cutoff).

use super::program::KernelProgram;
use crate::sched::{MemLevel, OpRole};
use crate::smg::{DimId, Smg};
use sf_gpu_sim::{BufId, KernelCost, Profiler};
use sf_ir::{Graph, ValueId, ValueKind};
use std::collections::HashMap;

/// Dimension restrictions: `dim -> [start, end)`.
type Restrict = Vec<(DimId, (usize, usize))>;

/// Flop-equivalent cost of one intra-block loop iteration (loop control,
/// barrier synchronization, pipeline drain). Gives the tuner a realistic
/// preference for larger temporal tiles instead of tying on traffic.
pub const TILE_OVERHEAD_FLOPS: u64 = 4096;

/// Per-value usage classification for one kernel.
struct Usage {
    /// Used by phase-1 (reduction-feeding) ops.
    p1: Vec<bool>,
    /// Used by phase-2 (output-producing in-loop) ops.
    p2: Vec<bool>,
    /// The value's tile changes per intra-block (it spans the temporal
    /// dimension).
    varying: Vec<bool>,
}

fn classify(kp: &KernelProgram) -> Usage {
    let graph = &kp.graph;
    let n = graph.values().len();
    let mut p1 = vec![false; n];
    let mut p2 = vec![false; n];
    for (oi, op) in graph.ops().iter().enumerate() {
        if kp.needed_phase1[oi] && kp.roles[oi] != OpRole::PostLoop {
            for &i in &op.inputs {
                p1[i.0] = true;
            }
        }
        if kp.roles[oi] == OpRole::InLoop && kp.needed_output[oi] {
            for &i in &op.inputs {
                p2[i.0] = true;
            }
        }
        if kp.roles[oi] == OpRole::PostLoop {
            for &i in &op.inputs {
                // Post-loop reads of globals happen once per block; fold
                // them into the phase-2 class (cheap either way).
                p2[i.0] = true;
            }
        }
    }
    let varying = match &kp.schedule.temporal {
        Some(t) => (0..n)
            .map(|vi| {
                kp.schedule
                    .smg
                    .value_has_dim(graph, ValueId(vi), t.plan.dim)
            })
            .collect(),
        None => vec![false; n],
    };
    Usage { p1, p2, varying }
}

/// Bytes and 2-D layout of a restricted view of `v`.
fn tile_spec(graph: &Graph, smg: &Smg, v: ValueId, restrict: &Restrict) -> (u64, u64, u64, u64) {
    // Returns (offset, row_bytes, rows, row_stride).
    let shape = graph.shape(v);
    let esz = graph.dtype().size_bytes() as u64;
    let ranges: Vec<(usize, usize)> = shape
        .dims()
        .iter()
        .enumerate()
        .map(|(axis, &e)| {
            let d = smg.value_axes[v.0][axis];
            if e == smg.extent(d) {
                if let Some(&(_, (s, t))) = restrict.iter().find(|&&(rd, _)| rd == d) {
                    return (s.min(e), t.min(e));
                }
            }
            (0, e)
        })
        .collect();
    match ranges.len() {
        2 => {
            let cols_full = shape.dims()[1] as u64;
            let (r0, r1) = ranges[0];
            let (c0, c1) = ranges[1];
            (
                (r0 as u64 * cols_full + c0 as u64) * esz,
                (c1 - c0) as u64 * esz,
                (r1 - r0) as u64,
                cols_full * esz,
            )
        }
        _ => {
            let vol: u64 = ranges.iter().map(|&(s, t)| (t - s) as u64).product();
            (0, vol * esz, 1, 0)
        }
    }
}

/// Replays one kernel's access stream into the profiler.
///
/// `bufs` maps value names to their global buffers; `replay_instances` is
/// how many instances to simulate in detail (the caller scales counters
/// up for the rest), `total_instances` sets the true grid size used for
/// occupancy/timing.
pub fn trace_kernel(
    kp: &KernelProgram,
    profiler: &mut Profiler,
    bufs: &HashMap<String, BufId>,
    replay_instances: usize,
    total_instances: u64,
) {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let usage = classify(kp);
    let smem = s.smem_per_block(graph);
    let regs = s.regs_per_block(graph);
    let grid_total = s.grid() * total_instances;
    profiler.begin_kernel(&kp.name, grid_total, smem, regs);

    let global_vals: Vec<ValueId> = (0..graph.values().len())
        .map(ValueId)
        .filter(|&v| {
            matches!(graph.value(v).kind, ValueKind::Input | ValueKind::Weight)
                || (s.level(v) == MemLevel::Global)
        })
        .collect();
    let inst_stride: HashMap<ValueId, u64> = global_vals
        .iter()
        .map(|&v| {
            (
                v,
                (graph.shape(v).volume() * graph.dtype().size_bytes()) as u64,
            )
        })
        .collect();

    // Spatial block iteration.
    let block_counts: Vec<usize> = s
        .spatial
        .iter()
        .map(|&(d, b)| s.smg.extent(d).div_ceil(b))
        .collect();

    for inst in 0..replay_instances as u64 {
        let mut block_idx = vec![0usize; s.spatial.len()];
        loop {
            let spatial: Restrict = s
                .spatial
                .iter()
                .zip(&block_idx)
                .map(|(&(d, b), &i)| {
                    let start = i * b;
                    (d, (start, (start + b).min(s.smg.extent(d))))
                })
                .collect();
            profiler.begin_block();
            trace_block(kp, profiler, bufs, &inst_stride, &usage, inst, &spatial);

            let mut carry = true;
            for (i, c) in block_idx.iter_mut().zip(&block_counts) {
                if carry {
                    *i += 1;
                    if *i == *c {
                        *i = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }
    }
    profiler.end_kernel();
}

#[allow(clippy::too_many_arguments)]
fn load_value(
    kp: &KernelProgram,
    profiler: &mut Profiler,
    bufs: &HashMap<String, BufId>,
    strides: &HashMap<ValueId, u64>,
    inst: u64,
    v: ValueId,
    restrict: &Restrict,
    write: bool,
) {
    let graph = &kp.graph;
    let name = &graph.value(v).name;
    let Some(&buf) = bufs.get(name) else { return };
    let (off, row_bytes, rows, stride) = tile_spec(graph, &kp.schedule.smg, v, restrict);
    let base = inst * strides.get(&v).copied().unwrap_or(0);
    if write {
        profiler.store_tile(buf, base + off, row_bytes, rows, stride);
    } else {
        profiler.load_tile(buf, base + off, row_bytes, rows, stride);
    }
}

fn trace_block(
    kp: &KernelProgram,
    profiler: &mut Profiler,
    bufs: &HashMap<String, BufId>,
    strides: &HashMap<ValueId, u64>,
    usage: &Usage,
    inst: u64,
    spatial: &Restrict,
) {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let is_global =
        |v: ValueId| matches!(graph.value(v).kind, ValueKind::Input | ValueKind::Weight);

    // Non-varying globals load once per block (they stay in shared memory
    // when staged, or in the block-lifetime L1 when streamed).
    for vi in 0..graph.values().len() {
        let v = ValueId(vi);
        if is_global(v) && !usage.varying[vi] && (usage.p1[vi] || usage.p2[vi]) {
            load_value(kp, profiler, bufs, strides, inst, v, spatial, false);
        }
    }

    match &s.temporal {
        None => {
            // All ops once; flops over the block tile.
            for (oi, _) in graph.ops().iter().enumerate() {
                profiler.flops(restricted_flops(kp, oi, spatial));
            }
            for &o in graph.outputs() {
                load_value(kp, profiler, bufs, strides, inst, o, spatial, true);
            }
        }
        Some(t) => {
            let dim = t.plan.dim;
            let extent = s.smg.extent(dim);
            let n_tiles = extent.div_ceil(t.block);

            // Phase 1.
            for tile in 0..n_tiles {
                profiler.flops(TILE_OVERHEAD_FLOPS);
                let start = tile * t.block;
                let mut restrict = spatial.clone();
                restrict.push((dim, (start, (start + t.block).min(extent))));
                for vi in 0..graph.values().len() {
                    let v = ValueId(vi);
                    if is_global(v) && usage.varying[vi] && usage.p1[vi] {
                        load_value(kp, profiler, bufs, strides, inst, v, &restrict, false);
                    }
                }
                for (oi, _) in graph.ops().iter().enumerate() {
                    if kp.needed_phase1[oi] && kp.roles[oi] != OpRole::PostLoop {
                        profiler.flops(restricted_flops(kp, oi, &restrict));
                    }
                }
            }

            // Post-loop ops.
            for (oi, _) in graph.ops().iter().enumerate() {
                if kp.roles[oi] == OpRole::PostLoop {
                    profiler.flops(restricted_flops(kp, oi, spatial));
                }
            }

            // Phase 2.
            if t.plan.two_phase {
                for tile in 0..n_tiles {
                    profiler.flops(TILE_OVERHEAD_FLOPS);
                    let start = tile * t.block;
                    let mut restrict = spatial.clone();
                    restrict.push((dim, (start, (start + t.block).min(extent))));
                    for vi in 0..graph.values().len() {
                        let v = ValueId(vi);
                        if is_global(v) && usage.varying[vi] && usage.p2[vi] {
                            load_value(kp, profiler, bufs, strides, inst, v, &restrict, false);
                        }
                    }
                    for (oi, _) in graph.ops().iter().enumerate() {
                        if kp.roles[oi] == OpRole::InLoop && kp.needed_output[oi] {
                            profiler.flops(restricted_flops(kp, oi, &restrict));
                        }
                    }
                    // Outputs spanning the sliced dim store per tile.
                    for &o in graph.outputs() {
                        if s.smg.value_has_dim(graph, o, dim) {
                            load_value(kp, profiler, bufs, strides, inst, o, &restrict, true);
                        }
                    }
                }
            }

            // Remaining outputs store once per block.
            for &o in graph.outputs() {
                if !s.smg.value_has_dim(graph, o, dim) {
                    load_value(kp, profiler, bufs, strides, inst, o, spatial, true);
                }
            }
        }
    }
}

/// Flops of one op over actual (edge-clamped) restricted ranges.
fn restricted_flops(kp: &KernelProgram, op_idx: usize, restrict: &Restrict) -> u64 {
    let sizes: Vec<(DimId, usize)> = restrict.iter().map(|&(d, (s, t))| (d, t - s)).collect();
    crate::sched::memory::tile_flops(&kp.graph, &kp.schedule.smg, op_idx, &sizes)
}

/// Closed-form cost estimate of one kernel (for the auto-tuner).
///
/// Uses raw global traffic (no cache simulation): `dram_read_bytes` is
/// approximated by the compulsory footprint of the kernel inputs,
/// `l2_bytes` by the total requested read bytes. Rankings between
/// configurations of the same kernel are preserved, which is all the
/// tuner needs.
pub fn estimate_cost(kp: &KernelProgram, total_instances: u64) -> KernelCost {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let usage = classify(kp);
    let esz = graph.dtype().size_bytes() as u64;
    let grid = s.grid();
    let n_tiles = s.intra_blocks();
    let two_phase = s
        .temporal
        .as_ref()
        .map(|t| t.plan.two_phase)
        .unwrap_or(false);

    let block_restrict = s.block_restrictions();
    let spatial_restrict: Vec<(DimId, usize)> = s.spatial.clone();

    let mut read_per_block = 0u64;
    let mut compulsory = 0u64;
    for (vi, v) in graph.values().iter().enumerate() {
        if !matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
            continue;
        }
        let id = ValueId(vi);
        if !(usage.p1[vi] || usage.p2[vi]) {
            continue;
        }
        compulsory += (v.shape.volume() as u64) * esz;
        if usage.varying[vi] {
            let tile = s.smg.block_footprint(graph, id, &block_restrict);
            let phases = 1 + u64::from(two_phase && usage.p2[vi] && usage.p1[vi]);
            read_per_block += tile * n_tiles * phases;
        } else {
            read_per_block += s.smg.block_footprint(graph, id, &spatial_restrict);
        }
    }

    let mut write_per_block = 0u64;
    for &o in graph.outputs() {
        write_per_block += s.smg.block_footprint(graph, o, &spatial_restrict);
    }

    let mut flops = 0u64;
    for (oi, _) in graph.ops().iter().enumerate() {
        let f = crate::sched::memory::tile_flops(graph, &s.smg, oi, &[]);
        flops += f;
        if two_phase && kp.roles[oi] == OpRole::InLoop && kp.needed_output[oi] {
            flops += f; // recomputed in phase 2.
        }
    }
    if s.temporal.is_some() {
        let phases = 1 + u64::from(two_phase);
        flops += TILE_OVERHEAD_FLOPS * n_tiles * phases * grid;
    }

    // Split-K: the tile loop runs as `partitions` independent grid
    // units (grid × P drives occupancy — the whole point of the split),
    // paid for by partial-state traffic (each sliced reduction's
    // accumulator is written per partition, re-read and folded by the
    // combine) plus per-partition loop setup. Where the grid already
    // saturates the machine the utilization term gains nothing and the
    // combine overhead makes split-K lose — exactly the tradeoff the
    // tuner should arbitrate.
    let partitions = s.temporal.as_ref().map_or(1, |t| t.partitions()) as u64;
    let mut l2_per_block = read_per_block + write_per_block;
    if partitions > 1 {
        if let Some(t) = &s.temporal {
            let mut state_per_block = 0u64;
            for sl in &t.plan.sliced {
                let out = graph.ops()[sl.op.0].output;
                state_per_block += s.smg.block_footprint(graph, out, &spatial_restrict);
            }
            // P partial writes + P combine reads + 1 combined write.
            l2_per_block += state_per_block * (2 * partitions + 1);
            // Rescale-and-merge arithmetic over every partial element,
            // plus per-partition loop entry overhead.
            flops += (state_per_block / esz.max(1)) * partitions * 8 * grid;
            flops += TILE_OVERHEAD_FLOPS * partitions * grid;
        }
    }

    KernelCost {
        name: kp.name.clone(),
        grid: grid * partitions * total_instances,
        flops: flops * total_instances,
        global_read_bytes: read_per_block * grid * total_instances,
        global_write_bytes: write_per_block * grid * total_instances,
        dram_read_bytes: (compulsory * total_instances)
            .min(read_per_block * grid * total_instances),
        dram_write_bytes: write_per_block * grid * total_instances,
        l2_bytes: l2_per_block * grid * total_instances,
        smem_per_block: s.smem_per_block(graph),
        regs_per_block: s.regs_per_block(graph),
    }
}

/// Cost of a split-K candidate's **accumulate dispatch alone** — the
/// partial-accumulator launch, without the combine fold's traffic (the
/// P partial re-reads, the combined write) or its rescale-and-merge
/// arithmetic. For unsplit kernels this is the full cost.
///
/// The bounded tuner measures split candidates dispatch-by-dispatch
/// the way an on-GPU test run times the two launches; this is the
/// figure after the first launch. It never exceeds
/// [`estimate_cost`]'s total, so it is safe to early-quit on.
pub fn estimate_accumulate_cost(kp: &KernelProgram, total_instances: u64) -> KernelCost {
    let mut cost = estimate_cost(kp, total_instances);
    let graph = &kp.graph;
    let s = &kp.schedule;
    let partitions = s.temporal.as_ref().map_or(1, |t| t.partitions()) as u64;
    if partitions > 1 {
        if let Some(t) = &s.temporal {
            let esz = graph.dtype().size_bytes() as u64;
            let grid = s.grid();
            let spatial_restrict: Vec<(DimId, usize)> = s.spatial.clone();
            let mut state_per_block = 0u64;
            for sl in &t.plan.sliced {
                let out = graph.ops()[sl.op.0].output;
                state_per_block += s.smg.block_footprint(graph, out, &spatial_restrict);
            }
            let scale = grid * total_instances;
            // Combine dispatch's share of the split overhead added by
            // estimate_cost: P partial reads + 1 combined write, and
            // the rescale-and-merge flops.
            cost.l2_bytes = cost
                .l2_bytes
                .saturating_sub(state_per_block * (partitions + 1) * scale);
            cost.flops = cost
                .flops
                .saturating_sub((state_per_block / esz.max(1)) * partitions * 8 * scale);
        }
    }
    cost
}
