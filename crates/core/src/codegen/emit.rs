//! Pseudo-code emission for scheduled kernels.
//!
//! Renders a [`KernelProgram`] as the Triton-style pseudo-code of the
//! paper's Figs. 6 and 7 — the parallel block loop, staged loads, the
//! intra-block loop with running aggregations and update functions, the
//! post-loop epilogue and the stores. Intended for humans: debugging
//! schedules, documentation, and golden tests that pin down the shape of
//! generated code.

use super::program::KernelProgram;
use crate::sched::{MemLevel, OpRole};
use crate::slicer::{AggKind, FactorForm};
use sf_ir::{OpKind, ValueId, ValueKind};
use std::fmt::Write as _;

/// Renders the kernel as indented pseudo-code.
pub fn emit_pseudocode(kp: &KernelProgram) -> String {
    let g = &kp.graph;
    let s = &kp.schedule;
    let mut out = String::new();
    let name = |v: ValueId| g.value(v).name.clone();

    let _ = writeln!(out, "// kernel {} — grid {} block(s)", kp.name, s.grid());
    let _ = writeln!(out, "parallel_for block in SMG_blocks {{");

    // Staged loads (whole-block lifetime).
    for (vi, v) in g.values().iter().enumerate() {
        if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
            let varying = s
                .temporal
                .as_ref()
                .map(|t| s.smg.value_has_dim(g, ValueId(vi), t.plan.dim))
                .unwrap_or(false);
            if s.mem.staged[vi] && !varying {
                let _ = writeln!(
                    out,
                    "    {} = load_block({})        // smem",
                    v.name, v.name
                );
            } else if !varying {
                let _ = writeln!(
                    out,
                    "    {} = stream({})            // global",
                    v.name, v.name
                );
            }
        }
    }

    match &s.temporal {
        None => {
            for (oi, _) in g.ops().iter().enumerate() {
                let _ = writeln!(out, "    {}", op_line(kp, oi));
            }
            for &o in g.outputs() {
                let _ = writeln!(out, "    store({})", name(o));
            }
        }
        Some(t) => {
            let _ = writeln!(
                out,
                "    // intra-block loop over dim {} in tiles of {}",
                s.smg.dims[t.plan.dim.0].name, t.block
            );
            match &t.split {
                None => {
                    let _ = writeln!(out, "    for intra_block in Block {{");
                }
                Some(sp) => {
                    let _ = writeln!(
                        out,
                        "    // split-K: {} parallel partitions, each owning a contiguous tile range",
                        sp.partitions
                    );
                    let _ = writeln!(
                        out,
                        "    parallel_for p: for intra_block in partition(p) {{"
                    );
                }
            }
            for (vi, v) in g.values().iter().enumerate() {
                let varying = s.smg.value_has_dim(g, ValueId(vi), t.plan.dim);
                if matches!(v.kind, ValueKind::Input | ValueKind::Weight) && varying {
                    let _ = writeln!(out, "        {} = load_tile({})", v.name, v.name);
                }
            }
            for (oi, op) in g.ops().iter().enumerate() {
                if !kp.needed_phase1[oi] || kp.roles[oi] == OpRole::PostLoop {
                    continue;
                }
                match kp.roles[oi] {
                    OpRole::SlicedReduction(idx) => {
                        let target = name(op.output);
                        match &t.plan.sliced[idx].agg {
                            AggKind::Simple => {
                                let _ = writeln!(
                                    out,
                                    "        {target} = aggr({target}_old, {})",
                                    partial_expr(kp, oi)
                                );
                            }
                            AggKind::Uta(factors) => {
                                let upd = factors
                                    .iter()
                                    .map(|f| {
                                        let dep = name(g.ops()[f.dep.0].output);
                                        match f.form {
                                            FactorForm::ExpNeg => {
                                                format!("exp({dep}_old - {dep})")
                                            }
                                            FactorForm::Recip => format!("{dep}_old/{dep}"),
                                            FactorForm::Value => format!("{dep}/{dep}_old"),
                                        }
                                    })
                                    .collect::<Vec<_>>()
                                    .join(" * ");
                                let _ = writeln!(
                                    out,
                                    "        {target} = aggr({target}_old * {upd}, {})  // UTA",
                                    partial_expr(kp, oi)
                                );
                            }
                        }
                    }
                    _ => {
                        let _ = writeln!(out, "        {}", op_line(kp, oi));
                    }
                }
            }
            let _ = writeln!(out, "    }}");

            if let Some(sp) = &t.split {
                for r in &t.plan.sliced {
                    let _ = writeln!(
                        out,
                        "    park_partial({})   // one state per partition",
                        name(g.ops()[r.op.0].output)
                    );
                }
                let _ = writeln!(
                    out,
                    "    // combine dispatch: fold {} partials in partition order",
                    sp.partitions
                );
                for (r, spec) in t.plan.sliced.iter().zip(&sp.combine) {
                    let target = name(g.ops()[r.op.0].output);
                    let rescaled = if spec.rescale { ", rescaled" } else { "" };
                    let _ = writeln!(
                        out,
                        "    {target} = combine_{}({target}[0..{}]{rescaled})",
                        spec.op.name(),
                        sp.partitions
                    );
                }
            }

            for (oi, _) in g.ops().iter().enumerate() {
                if kp.roles[oi] == OpRole::PostLoop {
                    let _ = writeln!(out, "    {}", op_line(kp, oi));
                }
            }
            if t.plan.two_phase {
                let _ = writeln!(out, "    for intra_block in Block {{  // phase 2");
                for (oi, _) in g.ops().iter().enumerate() {
                    if kp.roles[oi] == OpRole::InLoop && kp.needed_output[oi] {
                        let _ = writeln!(out, "        {}", op_line(kp, oi));
                    }
                }
                for &o in g.outputs() {
                    if s.smg.value_has_dim(g, o, t.plan.dim) {
                        let _ = writeln!(out, "        store_tile({})", name(o));
                    }
                }
                let _ = writeln!(out, "    }}");
            }
            for &o in g.outputs() {
                if !s.smg.value_has_dim(g, o, t.plan.dim) {
                    let _ = writeln!(out, "    store({})", name(o));
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// `dst = op(args)` with the memory level as a comment.
fn op_line(kp: &KernelProgram, oi: usize) -> String {
    let g = &kp.graph;
    let op = &g.ops()[oi];
    let level = match kp.schedule.level(op.output) {
        MemLevel::Register => "reg",
        MemLevel::Shared => "smem",
        MemLevel::Global => "global",
    };
    format!(
        "{} = {}   // {}",
        g.value(op.output).name,
        expr(kp, oi),
        level
    )
}

fn expr(kp: &KernelProgram, oi: usize) -> String {
    let g = &kp.graph;
    let op = &g.ops()[oi];
    let a = |i: usize| g.value(op.inputs[i]).name.clone();
    match &op.kind {
        OpKind::Gemm { .. } => format!("gemm({}, {})", a(0), a(1)),
        OpKind::Unary(u) => format!("{}({})", u.name(), a(0)),
        OpKind::Binary(b) => format!("{}({}, {})", b.name(), a(0), a(1)),
        OpKind::Scalar { op: b, value } => format!("{}({}, {value})", b.name(), a(0)),
        OpKind::Reduce { op: r, dim } => format!("{}({}, dim={dim})", r.name(), a(0)),
        OpKind::Broadcast { dim, .. } => format!("broadcast({}, dim={dim})", a(0)),
        OpKind::LayoutBarrier => format!("reshape({})", a(0)),
    }
}

fn partial_expr(kp: &KernelProgram, oi: usize) -> String {
    expr(kp, oi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, FusionPolicy};
    use sf_gpu_sim::Arch;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(l: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("Q", Shape::new(vec![256, 64]));
        let k = g.input("K", Shape::new(vec![l, 64]));
        let v = g.input("V", Shape::new(vec![l, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        g.rename_value(qk, "QK");
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        g.rename_value(mx, "Max");
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        g.rename_value(sub, "Sub");
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        g.rename_value(e, "Exp");
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        g.rename_value(s, "Sum");
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        g.rename_value(d, "Div");
        let out = g.gemm(d, v, false).unwrap();
        g.rename_value(out, "Out");
        g.mark_output(out);
        g
    }

    #[test]
    fn mha_pseudocode_matches_figure_7_structure() {
        let g = mha(8192);
        // Pin the paper's serial Fig. 7 rendering: split-K would
        // legitimately partition this deep-KV loop, which the split
        // pseudo-code test covers instead.
        let mut opts = crate::compiler::CompileOptions::default();
        opts.slicing.enable_split = false;
        let p = Compiler::new(Arch::Volta, opts).compile(&g).unwrap();
        let code = emit_pseudocode(&p.kernels[0]);
        // The paper's Fig. 7 structure: parallel blocks, an intra-block
        // loop, UTA update functions for Sum and Out.
        assert!(code.contains("parallel_for block"));
        assert!(code.contains("for intra_block in Block"));
        assert!(code.contains("Max = aggr(Max_old, max(QK"));
        assert!(code.contains("Sum = aggr(Sum_old * exp(Max_old - Max)"));
        assert!(code.contains("Out = aggr(Out_old * exp(Max_old - Max) * Sum_old/Sum"));
        assert!(code.contains("store(Out)"));
    }

    #[test]
    fn flat_kernel_pseudocode_has_no_loop() {
        let g = mha(64);
        let p = Compiler::with_policy(Arch::Hopper, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let kp = &p.kernels[0];
        if kp.schedule.temporal.is_none() {
            let code = emit_pseudocode(kp);
            assert!(!code.contains("intra_block"));
            assert!(code.contains("gemm(Q, K)"));
        }
    }

    #[test]
    fn split_pseudocode_shows_partitions_and_combine_fold() {
        // Decode shape: one query row, deep KV — the tuner picks split-K.
        let mut g = Graph::new("decode", DType::F16);
        let q = g.input("Q", Shape::new(vec![1, 32]));
        let k = g.input("K", Shape::new(vec![1024, 32]));
        let v = g.input("V", Shape::new(vec![1024, 32]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        g.rename_value(mx, "Max");
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        g.rename_value(s, "Sum");
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.rename_value(out, "Out");
        g.mark_output(out);
        let p = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let kp = &p.kernels[0];
        let parts = kp
            .schedule
            .temporal
            .as_ref()
            .and_then(|t| t.split.as_ref())
            .map(|sp| sp.partitions)
            .expect("decode shape must split");
        let code = emit_pseudocode(kp);
        assert!(code.contains(&format!("split-K: {parts} parallel partitions")));
        assert!(code.contains("parallel_for p: for intra_block in partition(p)"));
        assert!(code.contains("park_partial(Max)"));
        // Simple max fold for the running max; rescaled adds for the
        // UTA sum and output (the FlashDecoding fixup).
        assert!(code.contains(&format!("Max = combine_max(Max[0..{parts}])")));
        assert!(code.contains(&format!("Sum = combine_add(Sum[0..{parts}], rescaled)")));
        assert!(code.contains(&format!("Out = combine_add(Out[0..{parts}], rescaled)")));
    }

    #[test]
    fn two_phase_pseudocode_shows_second_pass() {
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("X", Shape::new(vec![64, 65536]));
        let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        let p = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
            .compile(&g)
            .unwrap();
        let kp = &p.kernels[0];
        assert!(kp
            .schedule
            .temporal
            .as_ref()
            .is_some_and(|t| t.plan.two_phase));
        let code = emit_pseudocode(kp);
        assert!(code.contains("phase 2"));
        assert!(code.contains("store_tile"));
    }
}
