//! The lowered kernel representation.

use crate::sched::{op_roles, FusedSchedule, OpRole};
use crate::verify::races::{prove_disjoint, DisjointProof};
use sf_ir::{Graph, ValueId};

/// A fused kernel: graph + schedule + derived execution metadata.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    /// Kernel name (for reports).
    pub name: String,
    /// The fused subgraph this kernel computes. Its inputs are the cut
    /// values / program inputs, its outputs the values materialized to
    /// global memory.
    pub graph: Graph,
    /// The concrete schedule.
    pub schedule: FusedSchedule,
    /// Role of each operator under the schedule.
    pub roles: Vec<OpRole>,
    /// Ops transitively needed by the sliced reductions (phase-1 work).
    pub needed_phase1: Vec<bool>,
    /// Ops transitively needed by the kernel outputs.
    pub needed_output: Vec<bool>,
    /// Verdict of the static disjoint-write prover
    /// ([`crate::verify::races`]): only `Proven` kernels may take the
    /// lock-free parallel executor path. Computed at construction so the
    /// gate holds even when the verifier pass is off (release builds).
    pub disjoint: DisjointProof,
}

impl KernelProgram {
    /// Lowers a scheduled graph into a kernel program.
    pub fn new(name: impl Into<String>, graph: Graph, schedule: FusedSchedule) -> Self {
        let roles = op_roles(&graph, &schedule);
        let reduction_outputs: Vec<ValueId> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, OpRole::SlicedReduction(_)))
            .map(|(i, _)| graph.ops()[i].output)
            .collect();
        let needed_phase1 = needed_by(&graph, &reduction_outputs);
        let needed_output = needed_by(&graph, graph.outputs());
        let mut kp = KernelProgram {
            name: name.into(),
            graph,
            schedule,
            roles,
            needed_phase1,
            needed_output,
            disjoint: DisjointProof::Proven,
        };
        kp.disjoint = prove_disjoint(&kp);
        kp
    }

    /// Whether this kernel fuses more than one operator.
    pub fn is_fused(&self) -> bool {
        self.graph.ops().len() > 1
    }
}

/// Ops transitively needed to compute the given values.
fn needed_by(graph: &Graph, targets: &[ValueId]) -> Vec<bool> {
    let mut needed_vals = vec![false; graph.values().len()];
    for &t in targets {
        needed_vals[t.0] = true;
    }
    let mut needed_ops = vec![false; graph.ops().len()];
    for (oi, op) in graph.ops().iter().enumerate().rev() {
        if needed_vals[op.output.0] {
            needed_ops[oi] = true;
            for &i in &op.inputs {
                needed_vals[i.0] = true;
            }
        }
    }
    needed_ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{assign_memory, TemporalSchedule};
    use crate::slicer::plan_temporal;
    use crate::smg::build_smg;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    #[test]
    fn needed_sets_for_softmax() {
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![32, 128]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let n_dim = smg.value_axes[0][1];
        let plan = plan_temporal(&g, &smg, n_dim).unwrap();
        let spatial = vec![(m_dim, 16)];
        let temporal = Some(TemporalSchedule {
            plan,
            block: 32,
            split: None,
        });
        let mem = assign_memory(&g, &smg, &spatial, temporal.as_ref(), 32 << 10);
        let kp = KernelProgram::new(
            "softmax",
            g.clone(),
            FusedSchedule {
                smg,
                spatial,
                temporal,
                mem,
            },
        );
        // Phase 1 needs max, sub, exp, sum but not div.
        assert_eq!(kp.needed_phase1, vec![true, true, true, true, false]);
        // Output needs everything.
        assert!(kp.needed_output.iter().all(|&b| b));
        assert!(kp.is_fused());
    }
}
