//! Persistent execution engine: a reusable worker pool plus pinned
//! scratch arenas.
//!
//! Before this module, every `execute_kernel_with` call spawned a fresh
//! `std::thread::scope` of workers and threw their [`ScratchPool`]s away
//! afterwards — thread creation and cold scratch pools dominated small
//! kernels. The [`ExecEngine`] keeps both alive across calls:
//!
//! * a [`WorkerPool`] of lazily spawned, long-lived worker threads that
//!   pick up one *job* (a type-erased block-draining closure) at a time
//!   and go back to sleep;
//! * one [`ScratchPool`] pinned to each worker thread (plus one for the
//!   serial path), so intermediate buffers recycle *across*
//!   `execute_kernel` calls — the cross-call reuse measured by
//!   [`sf_tensor::alloc_stats::pool_reuse_ratio`];
//! * a serial cutoff ([`serial_cutoff`]) so kernels whose total work
//!   cannot amortize a pool dispatch run inline on the caller's thread.
//!
//! Jobs run one at a time: a submitter installs the job, wakes the
//! workers, and blocks until every participating worker has finished.
//! That hand-shake is what makes the type-erased borrow in [`RawTask`]
//! sound — the closure's stack frame outlives every worker's use of it.
//! Workers run the job behind `catch_unwind`, so a panic that escapes
//! the per-block isolation in `exec` marks the job as panicked instead
//! of killing the thread: the pool survives and stays usable for the
//! next call (the resilience layer's interpreter fallback depends on
//! this).
//!
//! The condvar/epoch protocol of [`WorkerPool::run`] / `worker_loop` is
//! model-checked exhaustively in `crates/core/tests/pool_protocol.rs`:
//! every interleaving of 2 workers × 2 jobs over the slot-claim state
//! machine is enumerated, asserting no lost wakeups, no epoch reuse,
//! and drain-before-return. **Any change to the claim or completion
//! logic here must be mirrored in that model.**

use sf_tensor::ScratchPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, TryLockError};

/// Minimum total output elements for which a multi-block kernel is
/// worth dispatching to the pool; below this, pool wake-up and
/// completion hand-shake cost more than the arithmetic they spread
/// (e.g. single-row attention decode). Measured on the exec benchmark:
/// dispatch overhead is ~2–5 µs, and kernels under ~16 Ki output
/// elements finish serially in that budget.
pub const MIN_PARALLEL_WORK: usize = 16 * 1024;

/// Whether a kernel should run serially on the caller's thread instead
/// of being dispatched to the worker pool.
///
/// `n_blocks` is the spatial block count (one block cannot be split),
/// `total_work` the summed output volume in elements.
pub fn serial_cutoff(n_blocks: usize, total_work: usize) -> bool {
    n_blocks < 2 || total_work < MIN_PARALLEL_WORK
}

/// A type-erased, lifetime-erased job closure.
///
/// Soundness: [`WorkerPool::run`] blocks until every worker that
/// claimed a slot of the job has finished executing it, so the borrow
/// behind the pointer strictly outlives every dereference.
type RawTask = *const (dyn Fn(&mut ScratchPool) + Sync);

/// One in-flight job: `slots` workers each claim the task once.
struct Job {
    task: RawTask,
    /// Worker slots this job wants filled.
    slots: usize,
    /// Slots claimed so far.
    taken: usize,
    /// Claimed slots still executing.
    active: usize,
    /// Whether any worker panicked out of the task.
    panicked: bool,
    /// Submission epoch (guards a worker from claiming two slots of
    /// the same job).
    epoch: u64,
}

// SAFETY: the raw task pointer crosses threads only inside the pool
// mutex, and the blocking-submit drain (`WorkerPool::run` waits for
// `taken == slots && active == 0`) guarantees the pointee outlives every
// worker's use; the pointee itself is `Sync`, so shared calls from
// several workers are fine.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    epoch: u64,
    shutdown: bool,
    spawned: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes workers: new job or shutdown.
    work: Condvar,
    /// Wakes submitters: job finished or job slot freed.
    done: Condvar,
}

/// A persistent pool of worker threads executing one job at a time.
///
/// Threads are spawned lazily on first use, grow to the largest worker
/// count ever requested, and live until [`shutdown`](WorkerPool::shutdown)
/// (or drop). Each worker owns a [`ScratchPool`] that persists across
/// jobs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; threads spawn on the first `run`.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    job: None,
                    epoch: 0,
                    shutdown: false,
                    spawned: 0,
                    handles: Vec::new(),
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
        }
    }

    /// Number of worker threads currently spawned.
    pub fn spawned(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spawned
    }

    /// Runs `task` on `workers` pool threads, blocking until every one
    /// of them has finished. Returns `true` if any worker panicked out
    /// of the task (the pool itself survives).
    ///
    /// The task is invoked once per worker with that worker's pinned
    /// scratch pool; it is expected to drain a shared work queue (an
    /// atomic index over blocks/items) until empty.
    pub fn run(&self, workers: usize, task: &(dyn Fn(&mut ScratchPool) + Sync)) -> bool {
        let workers = workers.max(1);
        // SAFETY: the transmute only erases the closure's borrow
        // lifetime (`'_` → `'static`); no other part of the type
        // changes. The erased pointer is dereferenced exclusively by
        // workers that claimed a slot of this job, and this function
        // does not return before every claimed slot has drained
        // (`taken == slots && active == 0` below), so `task`'s stack
        // frame strictly outlives every dereference. The pool-protocol
        // model check (tests/pool_protocol.rs) verifies the drain holds
        // under every 2-worker × 2-job interleaving.
        let raw: RawTask = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(&mut ScratchPool) + Sync + '_),
                *const (dyn Fn(&mut ScratchPool) + Sync + 'static),
            >(task as *const _)
        };
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // One job at a time: queue behind any in-flight submission.
        while st.job.is_some() {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        while st.spawned < workers {
            let shared = Arc::clone(&self.shared);
            st.handles
                .push(std::thread::spawn(move || worker_loop(&shared)));
            st.spawned += 1;
        }
        st.epoch += 1;
        let epoch = st.epoch;
        st.job = Some(Job {
            task: raw,
            slots: workers,
            taken: 0,
            active: 0,
            panicked: false,
            epoch,
        });
        self.shared.work.notify_all();
        let panicked = loop {
            if let Some(job) = st.job.as_ref() {
                if job.epoch == epoch && job.taken == job.slots && job.active == 0 {
                    break job.panicked;
                }
            }
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        };
        st.job = None;
        drop(st);
        // Wake any submitter queued on the job slot.
        self.shared.done.notify_all();
        panicked
    }

    /// Stops and joins every worker thread. The pool stays usable;
    /// a later `run` re-spawns workers.
    pub fn shutdown(&self) {
        let handles = {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.shutdown = true;
            st.spawned = 0;
            std::mem::take(&mut st.handles)
        };
        self.shared.work.notify_all();
        for h in handles {
            let _ = h.join();
        }
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = false;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Body of one worker thread: wait for a job slot, run the task with
/// the thread-pinned scratch pool, report completion.
fn worker_loop(shared: &PoolShared) {
    // The pinned arena: lives as long as the thread, so recycled
    // buffers carry over from one execute call to the next.
    let mut scratch = ScratchPool::new();
    let mut last_epoch = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job.as_mut() {
                    if job.epoch > last_epoch && job.taken < job.slots {
                        job.taken += 1;
                        job.active += 1;
                        last_epoch = job.epoch;
                        break job.task;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: the submitter in `WorkerPool::run` blocks until
            // this worker reports completion, so the closure behind
            // `task` is alive for the whole call.
            let f = unsafe { &*task };
            f(&mut scratch);
        }));
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(job) = st.job.as_mut() {
            job.active -= 1;
            if result.is_err() {
                job.panicked = true;
            }
            if job.taken == job.slots && job.active == 0 {
                shared.done.notify_all();
            }
        }
    }
}

/// The long-lived execution engine shared by the compile session, the
/// CLI driver and the fuzzing oracle.
///
/// Owns the persistent [`WorkerPool`], the serial-path scratch arena,
/// and observability counters. Cheap to share behind an `Arc`; most
/// callers use the process-wide [`ExecEngine::shared`] instance so
/// every execution in the process reuses one set of warm threads and
/// pools.
pub struct ExecEngine {
    pool: WorkerPool,
    /// Scratch arena for kernels that run serially on the caller's
    /// thread (cutoff hits or `threads == 1`).
    serial_scratch: Mutex<ScratchPool>,
    dispatches: AtomicU64,
    serial_runs: AtomicU64,
    batches: AtomicU64,
    /// Kernels denied the lock-free path because their disjointness
    /// proof failed (`RACE505` or worse); they ran serially instead.
    race_fallbacks: AtomicU64,
}

impl Default for ExecEngine {
    fn default() -> Self {
        ExecEngine::new()
    }
}

impl std::fmt::Debug for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecEngine")
            .field("workers", &self.pool.spawned())
            .field("dispatches", &self.dispatches())
            .field("serial_runs", &self.serial_runs())
            .field("batches", &self.batches())
            .field("race_fallbacks", &self.race_fallbacks())
            .finish()
    }
}

impl ExecEngine {
    /// Creates a fresh engine with its own (empty) worker pool.
    pub fn new() -> Self {
        ExecEngine {
            pool: WorkerPool::new(),
            serial_scratch: Mutex::new(ScratchPool::new()),
            dispatches: AtomicU64::new(0),
            serial_runs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            race_fallbacks: AtomicU64::new(0),
        }
    }

    /// The process-wide shared engine. Free-function entry points
    /// ([`super::execute_kernel_with`]) and every default-configured
    /// [`crate::pipeline::CompileSession`] execute through this
    /// instance, so warm worker threads and scratch arenas are reused
    /// across the whole process.
    pub fn shared() -> Arc<ExecEngine> {
        static SHARED: OnceLock<Arc<ExecEngine>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(ExecEngine::new())))
    }

    /// Kernels dispatched to the worker pool.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Kernels run serially (single worker or under the cutoff).
    pub fn serial_runs(&self) -> u64 {
        self.serial_runs.load(Ordering::Relaxed)
    }

    /// `execute_many` batches dispatched to the pool.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Kernels forced onto the serial path by a failed disjointness
    /// proof (see [`crate::verify::races::DisjointProof`]).
    pub fn race_fallbacks(&self) -> u64 {
        self.race_fallbacks.load(Ordering::Relaxed)
    }

    /// Records one prover-gated serial fallback.
    pub(crate) fn note_race_fallback(&self) {
        self.race_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker threads currently alive in the pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.spawned()
    }

    /// Runs a job on the pool, counting it as a kernel dispatch.
    /// Returns `true` if a worker panicked out of the task.
    pub(crate) fn run_dispatch(
        &self,
        workers: usize,
        task: &(dyn Fn(&mut ScratchPool) + Sync),
    ) -> bool {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.pool.run(workers, task)
    }

    /// Runs a job on the pool, counting it as a batch dispatch.
    /// Returns `true` if a worker panicked out of the task.
    pub(crate) fn run_batch(
        &self,
        workers: usize,
        task: &(dyn Fn(&mut ScratchPool) + Sync),
    ) -> bool {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.pool.run(workers, task)
    }

    /// Runs `f` with the engine's serial scratch arena, counting a
    /// serial run. Falls back to a throwaway pool if the arena is held
    /// by a concurrent serial execution.
    pub(crate) fn with_serial_scratch<R>(&self, f: impl FnOnce(&mut ScratchPool) -> R) -> R {
        self.serial_runs.fetch_add(1, Ordering::Relaxed);
        match self.serial_scratch.try_lock() {
            Ok(mut pool) => f(&mut pool),
            Err(TryLockError::Poisoned(p)) => f(&mut p.into_inner()),
            Err(TryLockError::WouldBlock) => f(&mut ScratchPool::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cutoff_pins_small_and_single_block_kernels_to_serial() {
        // One block can never be split, no matter how much work.
        assert!(serial_cutoff(1, usize::MAX));
        // Tiny total work (attention decode: one row) stays serial.
        assert!(serial_cutoff(64, 64));
        assert!(serial_cutoff(8, MIN_PARALLEL_WORK - 1));
        // At or above the threshold with 2+ blocks, dispatch.
        assert!(!serial_cutoff(2, MIN_PARALLEL_WORK));
        assert!(!serial_cutoff(1024, 1 << 24));
    }

    #[test]
    fn pool_reuses_threads_across_jobs() {
        let pool = WorkerPool::new();
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let panicked = pool.run(3, &|_scratch| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert!(!panicked);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        // Threads were spawned once, not per job.
        assert_eq!(pool.spawned(), 3);
    }

    #[test]
    fn pool_grows_to_largest_request() {
        let pool = WorkerPool::new();
        pool.run(2, &|_| {});
        assert_eq!(pool.spawned(), 2);
        pool.run(5, &|_| {});
        assert_eq!(pool.spawned(), 5);
        pool.run(1, &|_| {});
        assert_eq!(pool.spawned(), 5);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new();
        let hit = AtomicUsize::new(0);
        let panicked = pool.run(2, &|_| {
            if hit.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("injected");
            }
        });
        assert!(panicked);
        // The pool is still fully usable afterwards.
        let ok = AtomicUsize::new(0);
        let panicked = pool.run(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!panicked);
        assert_eq!(ok.load(Ordering::Relaxed), 2);
        assert_eq!(pool.spawned(), 2);
    }

    #[test]
    fn worker_scratch_persists_across_jobs() {
        let pool = WorkerPool::new();
        pool.run(1, &|scratch| {
            let buf = scratch.take(256);
            scratch.recycle(buf);
        });
        let hits = AtomicUsize::new(0);
        pool.run(1, &|scratch| {
            let before = scratch.hits();
            let buf = scratch.take(128);
            scratch.recycle(buf);
            hits.fetch_add((scratch.hits() - before) as usize, Ordering::Relaxed);
        });
        // The second job's take was served by the first job's buffer.
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shutdown_joins_and_pool_respawns() {
        let pool = WorkerPool::new();
        pool.run(2, &|_| {});
        assert_eq!(pool.spawned(), 2);
        pool.shutdown();
        assert_eq!(pool.spawned(), 0);
        let n = AtomicUsize::new(0);
        pool.run(2, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn engine_counts_serial_and_dispatch_runs() {
        let engine = ExecEngine::new();
        engine.with_serial_scratch(|_| {});
        engine.with_serial_scratch(|_| {});
        assert_eq!(engine.serial_runs(), 2);
        assert_eq!(engine.dispatches(), 0);
        engine.run_dispatch(2, &|_| {});
        assert_eq!(engine.dispatches(), 1);
        assert_eq!(engine.batches(), 0);
    }
}
