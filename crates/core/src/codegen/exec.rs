//! Numeric interpretation of kernel programs.
//!
//! Executes a [`KernelProgram`] exactly as a GPU would: one pass over the
//! spatial blocks, and within each block either a direct evaluation of
//! the fused subgraph on the block's tiles, or the temporal intra-block
//! loop with running aggregations (Simple Aggregate and Update-then-
//! Aggregate) and, for two-phase schedules, a second streaming pass that
//! produces the outputs from the finalized aggregates.
//!
//! This interpreter is the correctness oracle of the whole compiler: the
//! test suites compare its results bit-for-bit-ish (to float tolerance)
//! against the unfused reference execution of the same graph.
//!
//! Spatial blocks are the unit of parallelism. The slicer only admits
//! spatial dimensions whose blocks cover disjoint regions of every
//! output (Table 3 legality), so the block loop fans out over
//! [`std::thread::scope`] workers — each with its own [`ScratchPool`] —
//! and the result stays bit-identical to serial execution regardless of
//! completion order. Block-local values are borrowed as zero-copy
//! [`TensorView`]s and intermediate buffers are recycled through the
//! worker's pool, so steady-state execution does not allocate.

use super::program::KernelProgram;
use crate::error::{Result, SfError};
use crate::resilience::{panic_payload, FaultInjector, FaultKind};
use crate::sched::OpRole;
use crate::slicer::{AggKind, FactorForm};
use crate::smg::{DimId, Smg};
use sf_ir::{Graph, OpKind, ValueId};
use sf_tensor::ops::{viewed, BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{ScratchPool, Tensor, TensorView};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Dimension restrictions: `dim -> [start, end)`.
type Restrict = Vec<(DimId, (usize, usize))>;

/// Options for the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Worker threads for the spatial block loop; `0` selects the
    /// machine's available parallelism (capped at 8, matching the
    /// compile session's worker default).
    pub threads: usize,
}

impl ExecOptions {
    /// Options pinned to an explicit worker count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads }
    }

    /// Resolves the effective worker count.
    ///
    /// The auto-detected machine parallelism is cached for the process:
    /// `available_parallelism` consults cgroup limits on Linux, which is
    /// file I/O expensive enough to show up on sub-millisecond kernels.
    pub fn effective_threads(&self) -> usize {
        static AUTO: OnceLock<usize> = OnceLock::new();
        if self.threads > 0 {
            self.threads
        } else {
            *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)))
        }
    }
}

/// Executes one kernel over the environment of named tensors with
/// default options.
///
/// Inputs and weights are read from `env` by value name; outputs are
/// inserted into `env` under their value names.
pub fn execute_kernel(kp: &KernelProgram, env: &mut HashMap<String, Tensor>) -> Result<()> {
    execute_kernel_with(kp, env, &ExecOptions::default())
}

/// Executes one kernel, fanning the spatial block loop out over worker
/// threads.
///
/// Results are bit-identical for every thread count: blocks write
/// disjoint output regions (the slicer's spatial legality guarantee) and
/// each block's arithmetic is self-contained.
pub fn execute_kernel_with(
    kp: &KernelProgram,
    env: &mut HashMap<String, Tensor>,
    opts: &ExecOptions,
) -> Result<()> {
    execute_kernel_faulted(kp, env, opts, None)
}

/// [`execute_kernel_with`] plus worker isolation and fault hooks: every
/// spatial block runs behind a `catch_unwind` boundary, so a panicking
/// block (a backend bug, an injected crash) surfaces as
/// [`SfError::Internal`] instead of unwinding through the caller. A
/// failed kernel publishes nothing to `env` — outputs are inserted only
/// after every block succeeded — which is what makes the reference
/// fallback of
/// [`CompiledProgram::execute_resilient`](crate::pipeline::CompiledProgram::execute_resilient)
/// see exactly the inputs this kernel saw.
pub fn execute_kernel_faulted(
    kp: &KernelProgram,
    env: &mut HashMap<String, Tensor>,
    opts: &ExecOptions,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;

    // Full output tensors, allocated once. A mutex per output lets
    // workers scatter concurrently; regions are disjoint, so lock order
    // never affects the values written.
    let outputs: Vec<(ValueId, String, Mutex<Tensor>)> = graph
        .outputs()
        .iter()
        .map(|&o| {
            (
                o,
                graph.value(o).name.clone(),
                Mutex::new(Tensor::zeros(graph.shape(o).clone(), graph.dtype())),
            )
        })
        .collect();

    let blocks = enumerate_blocks(s);
    let workers = opts.effective_threads().min(blocks.len()).max(1);

    if workers == 1 {
        let mut pool = ScratchPool::new();
        for (bi, block) in blocks.iter().enumerate() {
            run_block(
                kp,
                env,
                &outputs,
                block,
                &mut pool,
                faults,
                bi,
                blocks.len(),
            )?;
        }
    } else {
        let env_ref: &HashMap<String, Tensor> = env;
        // Chunked work queue: coarse enough to amortize the atomic,
        // fine enough to balance blocks of uneven cost.
        let chunk = blocks.len().div_ceil(workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let failures: Mutex<Vec<(usize, SfError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut pool = ScratchPool::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= blocks.len() {
                            return;
                        }
                        let end = (start + chunk).min(blocks.len());
                        for (off, block) in blocks[start..end].iter().enumerate() {
                            let bi = start + off;
                            if let Err(e) = run_block(
                                kp,
                                env_ref,
                                &outputs,
                                block,
                                &mut pool,
                                faults,
                                bi,
                                blocks.len(),
                            ) {
                                failures
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push((bi, e));
                                return;
                            }
                        }
                    }
                });
            }
        });
        // Report the failure of the earliest block, independent of
        // worker scheduling.
        let mut failures = failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        failures.sort_by_key(|&(i, _)| i);
        if let Some((_, e)) = failures.into_iter().next() {
            return Err(e);
        }
    }

    for (_, name, slot) in outputs {
        env.insert(
            name,
            slot.into_inner().unwrap_or_else(PoisonError::into_inner),
        );
    }
    Ok(())
}

/// Executes one spatial block behind a panic-isolation boundary,
/// firing any armed exec-block fault first (inside the boundary, so an
/// injected crash is caught like a real one).
#[allow(clippy::too_many_arguments)]
fn run_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &[(ValueId, String, Mutex<Tensor>)],
    block: &Restrict,
    pool: &mut ScratchPool,
    faults: Option<&FaultInjector>,
    block_idx: usize,
    n_blocks: usize,
) -> Result<()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(inj) = faults {
            if inj.fire_block(&kp.name, block_idx, n_blocks) == Some(FaultKind::CrashWorker) {
                panic!(
                    "injected worker crash at kernel '{}' block {block_idx}",
                    kp.name
                );
            }
        }
        execute_block(kp, env, outputs, block, pool)
    }))
    .unwrap_or_else(|payload| {
        Err(SfError::Internal {
            pass: format!("exec:{} block {block_idx}", kp.name),
            payload: panic_payload(payload),
        })
    })
}

/// Enumerates the spatial block restrictions in row-major block order.
fn enumerate_blocks(s: &crate::sched::FusedSchedule) -> Vec<Restrict> {
    let block_counts: Vec<usize> = s
        .spatial
        .iter()
        .map(|&(d, b)| s.smg.extent(d).div_ceil(b))
        .collect();
    let mut blocks = Vec::with_capacity(block_counts.iter().product::<usize>().max(1));
    let mut block_idx = vec![0usize; s.spatial.len()];
    loop {
        blocks.push(
            s.spatial
                .iter()
                .zip(&block_idx)
                .map(|(&(d, b), &i)| {
                    let start = i * b;
                    (d, (start, (start + b).min(s.smg.extent(d))))
                })
                .collect(),
        );
        // Advance the multi-index.
        let mut carry = true;
        for (i, c) in block_idx.iter_mut().zip(&block_counts) {
            if carry {
                *i += 1;
                if *i == *c {
                    *i = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    blocks
}

fn execute_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &[(ValueId, String, Mutex<Tensor>)],
    spatial: &Restrict,
    pool: &mut ScratchPool,
) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let Some(t) = &s.temporal else {
        // Unsliced block: evaluate everything on the block tile.
        let mut local: HashMap<ValueId, Tensor> = HashMap::new();
        for (oi, op) in graph.ops().iter().enumerate() {
            let out = eval_op(graph, &s.smg, oi, spatial, pool, &|v| {
                value_view(graph, &s.smg, env, &local, v, spatial)
            })?;
            local.insert(op.output, out);
        }
        for (o, _, slot) in outputs {
            let tile = local
                .get(o)
                .ok_or_else(|| SfError::Codegen("output not computed".into()))?;
            let mut full = slot.lock().unwrap_or_else(PoisonError::into_inner);
            scatter(graph, &s.smg, &mut full, *o, spatial, tile)?;
        }
        for (_, tensor) in local.drain() {
            pool.recycle_tensor(tensor);
        }
        return Ok(());
    };

    let dim = t.plan.dim;
    let extent = s.smg.extent(dim);
    let n_tiles = extent.div_ceil(t.block);

    // Outputs of UTA update-factor dependencies. Their pre-tile values
    // are double-buffered in `prev` by moving them out of `accs` at
    // re-aggregation time, replacing the old whole-map `accs.clone()`
    // snapshot per tile.
    let uta_deps: Vec<ValueId> = t
        .plan
        .sliced
        .iter()
        .filter_map(|sl| match &sl.agg {
            AggKind::Uta(factors) => Some(factors.as_slice()),
            _ => None,
        })
        .flatten()
        .map(|f| graph.ops()[f.dep.0].output)
        .collect();

    // Phase 1: the intra-block loop computing the sliced reductions.
    let mut accs: HashMap<ValueId, Tensor> = HashMap::new();
    let mut prev: HashMap<ValueId, Tensor> = HashMap::new();
    let mut local: HashMap<ValueId, Tensor> = HashMap::new();
    for tile in 0..n_tiles {
        let start = tile * t.block;
        let mut restrict = spatial.clone();
        restrict.push((dim, (start, (start + t.block).min(extent))));

        for (_, stale) in prev.drain() {
            pool.recycle_tensor(stale);
        }
        for (oi, op) in graph.ops().iter().enumerate() {
            if !kp.needed_phase1[oi] || kp.roles[oi] == OpRole::PostLoop {
                continue;
            }
            match kp.roles[oi] {
                OpRole::SlicedReduction(idx) => {
                    let partial =
                        eval_sliced_partial(graph, &s.smg, oi, dim, &restrict, pool, &|v| {
                            reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                        })?;
                    let agg = &t.plan.sliced[idx].agg;
                    let combined = match accs.remove(&op.output) {
                        None => partial,
                        Some(old) => {
                            let combined = match agg {
                                AggKind::Simple => combine(graph, oi, &old, &partial, pool)?,
                                AggKind::Uta(factors) => {
                                    let updated =
                                        apply_update(graph, &old, factors, &prev, &accs, pool)?;
                                    let combined = combine(graph, oi, &updated, &partial, pool)?;
                                    pool.recycle_tensor(updated);
                                    combined
                                }
                            };
                            pool.recycle_tensor(partial);
                            // Later UTA updates in this tile read the
                            // dependency's pre-tile value from `prev`.
                            if uta_deps.contains(&op.output) {
                                prev.insert(op.output, old);
                            } else {
                                pool.recycle_tensor(old);
                            }
                            combined
                        }
                    };
                    accs.insert(op.output, combined);
                }
                _ => {
                    let out = eval_op(graph, &s.smg, oi, &restrict, pool, &|v| {
                        reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                    })?;
                    local.insert(op.output, out);
                }
            }
        }
        for (_, tensor) in local.drain() {
            pool.recycle_tensor(tensor);
        }
    }

    // Finalize mean accumulators (in place; same scalar division the
    // reference `binary_scalar(Div, ...)` performs).
    for (oi, op) in graph.ops().iter().enumerate() {
        if let OpRole::SlicedReduction(_) = kp.roles[oi] {
            if let OpKind::Reduce {
                op: ReduceOp::Mean, ..
            } = op.kind
            {
                if let Some(acc) = accs.get_mut(&op.output) {
                    for v in acc.data_mut() {
                        *v /= extent as f32;
                    }
                }
            }
        }
    }

    // Post-loop ops on finalized aggregates.
    let no_local: HashMap<ValueId, Tensor> = HashMap::new();
    let mut post: HashMap<ValueId, Tensor> = HashMap::new();
    for (oi, op) in graph.ops().iter().enumerate() {
        if kp.roles[oi] != OpRole::PostLoop {
            continue;
        }
        let out = eval_op(graph, &s.smg, oi, spatial, pool, &|v| {
            if let Some(a) = accs.get(&v) {
                return Ok(a.view());
            }
            if let Some(p) = post.get(&v) {
                return Ok(p.view());
            }
            value_view(graph, &s.smg, env, &no_local, v, spatial)
        })?;
        post.insert(op.output, out);
    }

    // Phase 2: re-stream tiles to produce outputs spanning the sliced
    // dimension, now with finalized aggregates.
    if t.plan.two_phase {
        for tile in 0..n_tiles {
            let start = tile * t.block;
            let mut restrict = spatial.clone();
            restrict.push((dim, (start, (start + t.block).min(extent))));
            for (oi, op) in graph.ops().iter().enumerate() {
                if kp.roles[oi] != OpRole::InLoop || !kp.needed_output[oi] {
                    continue;
                }
                let out = eval_op(graph, &s.smg, oi, &restrict, pool, &|v| {
                    if let Some(l) = local.get(&v) {
                        return Ok(l.view());
                    }
                    if let Some(a) = accs.get(&v) {
                        return Ok(a.view());
                    }
                    if let Some(p) = post.get(&v) {
                        return Ok(p.view());
                    }
                    value_view(graph, &s.smg, env, &no_local, v, &restrict)
                })?;
                local.insert(op.output, out);
            }
            for (o, _, slot) in outputs {
                if s.smg.value_has_dim(graph, *o, dim) {
                    let tile_val = local
                        .get(o)
                        .ok_or_else(|| SfError::Codegen("phase-2 output missing".into()))?;
                    let mut full = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    scatter(graph, &s.smg, &mut full, *o, &restrict, tile_val)?;
                }
            }
            for (_, tensor) in local.drain() {
                pool.recycle_tensor(tensor);
            }
        }
    }

    // Outputs that do not span the sliced dimension come from the
    // aggregates / post-loop values.
    for (o, _, slot) in outputs {
        if s.smg.value_has_dim(graph, *o, dim) {
            continue; // written in phase 2.
        }
        let tile = accs
            .get(o)
            .or_else(|| post.get(o))
            .ok_or_else(|| SfError::Codegen("block output missing".into()))?;
        let mut full = slot.lock().unwrap_or_else(PoisonError::into_inner);
        scatter(graph, &s.smg, &mut full, *o, spatial, tile)?;
    }

    // Recycle the block's remaining buffers for the next block on this
    // worker.
    for (_, tensor) in accs.drain() {
        pool.recycle_tensor(tensor);
    }
    for (_, tensor) in post.drain() {
        pool.recycle_tensor(tensor);
    }
    for (_, tensor) in prev.drain() {
        pool.recycle_tensor(tensor);
    }
    Ok(())
}

/// View of a value restricted to the given ranges: computed tiles come
/// from `local`, globals are viewed directly in `env` storage.
fn value_view<'a>(
    graph: &Graph,
    smg: &Smg,
    env: &'a HashMap<String, Tensor>,
    local: &'a HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    if let Some(t) = local.get(&v) {
        return Ok(t.view());
    }
    let name = &graph.value(v).name;
    let full = env
        .get(name)
        .ok_or_else(|| SfError::Codegen(format!("missing binding '{name}'")))?;
    let declared = &graph.value(v).shape;
    if full.shape() != declared {
        // The binding was materialized upstream of a layout barrier and
        // carries the producing kernel's layout; view it under this
        // segment's declared shape before extracting the block tile.
        let reinterpreted = full.view_reshaped(declared.clone())?;
        return extract(graph, smg, reinterpreted, v, restrict);
    }
    extract(graph, smg, full.view(), v, restrict)
}

/// Like [`value_view`] but lets running aggregates shadow global values.
fn reduction_input_view<'a>(
    graph: &Graph,
    smg: &Smg,
    env: &'a HashMap<String, Tensor>,
    local: &'a HashMap<ValueId, Tensor>,
    accs: &'a HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    if let Some(t) = local.get(&v) {
        return Ok(t.view());
    }
    if let Some(a) = accs.get(&v) {
        return Ok(a.view());
    }
    value_view(graph, smg, env, local, v, restrict)
}

/// Per-axis `[start, end)` ranges of `v` under a restriction.
fn restricted_ranges(
    graph: &Graph,
    smg: &Smg,
    v: ValueId,
    restrict: &Restrict,
) -> Vec<(usize, usize)> {
    graph
        .shape(v)
        .dims()
        .iter()
        .enumerate()
        .map(|(axis, &e)| {
            let d = smg.value_axes[v.0][axis];
            if e == smg.extent(d) {
                if let Some(&(_, (s, t))) = restrict.iter().find(|&&(rd, _)| rd == d) {
                    return (s.min(e), t.min(e));
                }
            }
            (0, e)
        })
        .collect()
}

/// Zero-copy view of the restricted sub-tensor of a full value.
fn extract<'a>(
    graph: &Graph,
    smg: &Smg,
    full: TensorView<'a>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    let ranges = restricted_ranges(graph, smg, v, restrict);
    full.slice(&ranges).map_err(Into::into)
}

/// Writes a tile back into the full output tensor.
///
/// Spatial blocks restrict at most a prefix of each output's axes, so
/// the destination region decomposes into contiguous runs that are
/// copied slice-to-slice.
fn scatter(
    graph: &Graph,
    smg: &Smg,
    full: &mut Tensor,
    v: ValueId,
    restrict: &Restrict,
    tile: &Tensor,
) -> Result<()> {
    let shape = graph.shape(v);
    let ranges = restricted_ranges(graph, smg, v, restrict);
    let out_dims: Vec<usize> = ranges.iter().map(|&(s, t)| t - s).collect();
    if out_dims != tile.shape().dims() {
        return Err(SfError::Codegen(format!(
            "scatter shape mismatch: tile {:?} vs region {:?}",
            tile.shape().dims(),
            out_dims
        )));
    }
    let full_dims = shape.dims();
    let strides = shape.strides();
    // Innermost axes whose range covers the whole extent form, together
    // with the deepest restricted axis, one contiguous run per outer
    // index in both the tile and the destination.
    let mut split = ranges.len();
    while split > 0 && ranges[split - 1] == (0, full_dims[split - 1]) {
        split -= 1;
    }
    let outer = split.saturating_sub(1);
    let run: usize = out_dims[outer..].iter().product();
    let n_outer: usize = out_dims[..outer].iter().product();
    let dst = full.data_mut();
    let src = tile.data();
    let mut idx = vec![0usize; outer];
    for block in 0..n_outer {
        let mut rem = block;
        for (i, &d) in out_dims[..outer].iter().enumerate().rev() {
            idx[i] = rem % d.max(1);
            rem /= d.max(1);
        }
        let mut base = 0usize;
        for (ax, (&(s, _), &stride)) in ranges.iter().zip(&strides).enumerate() {
            let off = s + if ax < outer { idx[ax] } else { 0 };
            base += off * stride;
        }
        dst[base..base + run].copy_from_slice(&src[block * run..(block + 1) * run]);
    }
    Ok(())
}

/// Evaluates one (non-sliced) operator on restricted views.
fn eval_op<'a>(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    restrict: &Restrict,
    pool: &mut ScratchPool,
    get: &dyn Fn(ValueId) -> Result<TensorView<'a>>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let out = match &op.kind {
        OpKind::Gemm { transpose_b } => {
            let a = get(op.inputs[0])?;
            let b = get(op.inputs[1])?;
            viewed::matmul(&a, &b, *transpose_b, pool)?
        }
        OpKind::Unary(u) => viewed::unary(*u, &get(op.inputs[0])?, pool),
        OpKind::Binary(b) => {
            let x = get(op.inputs[0])?;
            let y = get(op.inputs[1])?;
            viewed::binary(*b, &x, &y, pool)?
        }
        OpKind::Scalar { op: b, value } => {
            viewed::binary_scalar(*b, &get(op.inputs[0])?, *value, pool)
        }
        OpKind::Reduce { op: r, dim } => viewed::reduce(*r, &get(op.inputs[0])?, *dim, pool)?,
        OpKind::Broadcast { dim, .. } => {
            // The broadcast target extent is the *restricted* extent.
            let d = smg.value_axes[op.output.0][*dim];
            let full = smg.extent(d);
            let ext = restrict
                .iter()
                .find(|&&(rd, _)| rd == d)
                .map(|&(_, (s, t))| (t - s).min(full))
                .unwrap_or(full);
            viewed::broadcast_to(&get(op.inputs[0])?, *dim, ext, pool)?
        }
        OpKind::LayoutBarrier => {
            return Err(SfError::Codegen("layout barrier inside a kernel".into()))
        }
    };
    Ok(out)
}

/// Evaluates the partial result of a sliced reduction on one tile.
///
/// Mean reductions accumulate raw sums (finalized at loop end).
fn eval_sliced_partial<'a>(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    dim: DimId,
    _restrict: &Restrict,
    pool: &mut ScratchPool,
    get: &dyn Fn(ValueId) -> Result<TensorView<'a>>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    match &op.kind {
        OpKind::Gemm { transpose_b } => {
            let a = get(op.inputs[0])?;
            let b = get(op.inputs[1])?;
            Ok(viewed::matmul(&a, &b, *transpose_b, pool)?)
        }
        OpKind::Reduce { op: r, dim: axis } => {
            let input = get(op.inputs[0])?;
            // Sanity: the reduce axis must be the sliced dimension.
            debug_assert_eq!(smg.value_axes[op.inputs[0].0][*axis], dim);
            let kind = if *r == ReduceOp::Mean {
                ReduceOp::Sum
            } else {
                *r
            };
            Ok(viewed::reduce(kind, &input, *axis, pool)?)
        }
        other => Err(SfError::Codegen(format!(
            "op {} cannot be a sliced reduction",
            other.name()
        ))),
    }
}

/// Combines an (updated) accumulator with a tile partial.
fn combine(
    graph: &Graph,
    op_idx: usize,
    acc: &Tensor,
    partial: &Tensor,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let b = match &op.kind {
        OpKind::Reduce {
            op: ReduceOp::Max, ..
        } => BinaryOp::Max,
        _ => BinaryOp::Add,
    };
    Ok(viewed::binary(b, &acc.view(), &partial.view(), pool)?)
}

/// Applies the UTA update function: multiplies the old accumulator by
/// `Π g(dep_old, dep_new)`.
///
/// `prev` holds the dependencies' pre-tile values (moved out of the
/// accumulator map when the dependency re-aggregated this tile);
/// `current` holds their freshly combined values.
fn apply_update(
    graph: &Graph,
    old_acc: &Tensor,
    factors: &[crate::slicer::UpdateFactor],
    prev: &HashMap<ValueId, Tensor>,
    current: &HashMap<ValueId, Tensor>,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let mut result: Option<Tensor> = None;
    for f in factors {
        let dep_out = graph.ops()[f.dep.0].output;
        let old = prev
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing old dependency value".into()))?;
        let new = current
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing new dependency value".into()))?;
        let g = match f.form {
            FactorForm::Recip => viewed::binary(BinaryOp::Div, &old.view(), &new.view(), pool)?,
            FactorForm::ExpNeg => {
                let diff = viewed::binary(BinaryOp::Sub, &old.view(), &new.view(), pool)?;
                let exp = viewed::unary(UnaryOp::Exp, &diff.view(), pool);
                pool.recycle_tensor(diff);
                exp
            }
            FactorForm::Value => viewed::binary(BinaryOp::Div, &new.view(), &old.view(), pool)?,
        };
        let next = match result.take() {
            None => viewed::binary(BinaryOp::Mul, &old_acc.view(), &g.view(), pool)?,
            Some(r) => {
                let m = viewed::binary(BinaryOp::Mul, &r.view(), &g.view(), pool)?;
                pool.recycle_tensor(r);
                m
            }
        };
        pool.recycle_tensor(g);
        result = Some(next);
    }
    Ok(result.unwrap_or_else(|| old_acc.clone()))
}
