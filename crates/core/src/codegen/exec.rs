//! Numeric interpretation of kernel programs.
//!
//! Executes a [`KernelProgram`] exactly as a GPU would: one pass over the
//! spatial blocks, and within each block either a direct evaluation of
//! the fused subgraph on the block's tiles, or the temporal intra-block
//! loop with running aggregations (Simple Aggregate and Update-then-
//! Aggregate) and, for two-phase schedules, a second streaming pass that
//! produces the outputs from the finalized aggregates.
//!
//! This interpreter is the correctness oracle of the whole compiler: the
//! test suites compare its results bit-for-bit-ish (to float tolerance)
//! against the unfused reference execution of the same graph.
//!
//! Spatial blocks are the unit of parallelism. The slicer only admits
//! spatial dimensions whose blocks cover disjoint regions of every
//! output (Table 3 legality), so the block loop fans out over the
//! persistent [`ExecEngine`] worker pool — each worker with its own
//! thread-pinned [`ScratchPool`] — and the result stays bit-identical
//! to serial execution regardless of completion order. The same
//! disjointness makes output writes lock-free: workers scatter block
//! tiles through pre-partitioned [`sf_tensor::TensorViewMut`] regions
//! of the shared output buffers ([`OutputSlot`]) without any mutex; a
//! debug-build claim bitmap asserts that no two scatters ever touch
//! the same element. Block-local values are borrowed as zero-copy
//! [`TensorView`]s and intermediate buffers are recycled through the
//! worker's pool — which persists across calls — so steady-state
//! execution does not allocate. Kernels whose total work is under
//! [`super::engine::serial_cutoff`] skip the pool and run inline on
//! the caller's thread.

use super::engine::{serial_cutoff, ExecEngine};
use super::program::KernelProgram;
use crate::error::{Result, SfError};
use crate::resilience::{panic_payload, FaultInjector, FaultKind};
use crate::sched::OpRole;
use crate::slicer::{AggKind, FactorForm};
use crate::smg::{DimId, Smg};
use sf_ir::{Graph, OpKind, ValueId};
use sf_tensor::ops::{viewed, BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{ScratchPool, Shape, Tensor, TensorView, TensorViewMut};
use std::cell::UnsafeCell;
use std::collections::HashMap;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU8;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Dimension restrictions: `dim -> [start, end)`.
type Restrict = Vec<(DimId, (usize, usize))>;

/// Options for the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Worker threads for the spatial block loop; `0` selects the
    /// machine's available parallelism (capped at 8, matching the
    /// compile session's worker default).
    pub threads: usize,
}

impl ExecOptions {
    /// Options pinned to an explicit worker count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions { threads }
    }

    /// Resolves the effective worker count.
    ///
    /// The auto-detected machine parallelism is cached for the process:
    /// `available_parallelism` consults cgroup limits on Linux, which is
    /// file I/O expensive enough to show up on sub-millisecond kernels.
    pub fn effective_threads(&self) -> usize {
        static AUTO: OnceLock<usize> = OnceLock::new();
        if self.threads > 0 {
            self.threads
        } else {
            *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)))
        }
    }
}

/// Executes one kernel over the environment of named tensors with
/// default options.
///
/// Inputs and weights are read from `env` by value name; outputs are
/// inserted into `env` under their value names.
pub fn execute_kernel(kp: &KernelProgram, env: &mut HashMap<String, Tensor>) -> Result<()> {
    execute_kernel_with(kp, env, &ExecOptions::default())
}

/// Executes one kernel, fanning the spatial block loop out over worker
/// threads.
///
/// Results are bit-identical for every thread count: blocks write
/// disjoint output regions (the slicer's spatial legality guarantee) and
/// each block's arithmetic is self-contained.
pub fn execute_kernel_with(
    kp: &KernelProgram,
    env: &mut HashMap<String, Tensor>,
    opts: &ExecOptions,
) -> Result<()> {
    execute_kernel_faulted(kp, env, opts, None)
}

/// [`execute_kernel_with`] plus worker isolation and fault hooks: every
/// spatial block runs behind a `catch_unwind` boundary, so a panicking
/// block (a backend bug, an injected crash) surfaces as
/// [`SfError::Internal`] instead of unwinding through the caller. A
/// failed kernel publishes nothing to `env` — outputs are inserted only
/// after every block succeeded — which is what makes the reference
/// fallback of
/// [`CompiledProgram::execute_resilient`](crate::pipeline::CompiledProgram::execute_resilient)
/// see exactly the inputs this kernel saw.
pub fn execute_kernel_faulted(
    kp: &KernelProgram,
    env: &mut HashMap<String, Tensor>,
    opts: &ExecOptions,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    ExecEngine::shared().execute_kernel(kp, env, opts, faults)
}

/// A full output tensor shared lock-free across block workers.
///
/// Table-3 spatial legality guarantees that distinct blocks (and
/// distinct temporal tiles within a block) scatter into *disjoint*
/// element regions of every output, so no synchronization is needed on
/// the write path: each scatter goes through a [`TensorViewMut`] carved
/// out of the buffer with [`OutputSlot::region_mut`]. The data pointer
/// is captured once at construction — no `&mut Tensor` is ever formed
/// while workers hold region views, so views never alias a Rust unique
/// reference.
///
/// Debug builds keep a per-element claim bitmap and assert at region
/// hand-out that no element is ever claimed twice, turning a legality
/// bug (overlapping writes) into an immediate panic instead of a
/// silent, schedule-dependent result.
struct OutputSlot {
    value: ValueId,
    name: String,
    cell: UnsafeCell<Tensor>,
    base: *mut f32,
    len: usize,
    strides: Vec<usize>,
    #[cfg(debug_assertions)]
    claimed: Vec<AtomicU8>,
}

// SAFETY: workers only touch the buffer through disjoint `region_mut`
// views (asserted in debug builds); the tensor itself is only moved
// out after every worker has finished.
unsafe impl Send for OutputSlot {}
// SAFETY: shared access is read-only metadata plus `region_mut`, whose
// handed-out views are pairwise disjoint — proven statically per kernel
// by `verify::races::prove_disjoint` (kernels it cannot prove run on
// the serial path) and re-checked dynamically by the debug claim
// bitmap. No `&self` method forms a second reference to a region in
// flight.
unsafe impl Sync for OutputSlot {}

impl OutputSlot {
    fn new(value: ValueId, name: String, tensor: Tensor) -> Self {
        let len = tensor.shape().volume();
        let strides = tensor.shape().strides();
        let cell = UnsafeCell::new(tensor);
        // SAFETY: the slot was just constructed, so `cell` is exclusively
        // owned here — capturing the data pointer cannot race. Every
        // later region view derives from this one base pointer.
        let base = unsafe { (*cell.get()).data_mut().as_mut_ptr() };
        OutputSlot {
            value,
            name,
            cell,
            base,
            len,
            strides,
            #[cfg(debug_assertions)]
            claimed: (0..len).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Hands out the mutable strided view of the `[start, end)` region,
    /// claiming its elements in the debug overlap bitmap.
    fn region_mut(&self, ranges: &[(usize, usize)]) -> TensorViewMut<'_> {
        debug_assert_eq!(ranges.len(), self.strides.len());
        let offset: usize = ranges
            .iter()
            .zip(&self.strides)
            .map(|(&(s, _), &st)| s * st)
            .sum();
        let dims: Vec<usize> = ranges.iter().map(|&(s, t)| t - s).collect();
        #[cfg(debug_assertions)]
        self.claim(ranges, &dims);
        // SAFETY: `base + offset` addresses within the tensor buffer for
        // any in-bounds region; disjointness across concurrent callers
        // is the slicer's Table-3 guarantee (checked above in debug).
        unsafe {
            TensorViewMut::from_raw_parts(
                self.base.add(offset),
                self.len - offset,
                Shape::new(dims),
                self.strides.clone(),
            )
        }
    }

    /// Marks every element of the region as written, panicking if any
    /// element was already claimed by an earlier region.
    #[cfg(debug_assertions)]
    fn claim(&self, ranges: &[(usize, usize)], dims: &[usize]) {
        let volume: usize = dims.iter().product();
        let mut idx = vec![0usize; dims.len()];
        for _ in 0..volume {
            let abs: usize = ranges
                .iter()
                .zip(&self.strides)
                .zip(&idx)
                .map(|((&(s, _), &st), &i)| (s + i) * st)
                .sum();
            assert_eq!(
                self.claimed[abs].swap(1, Ordering::Relaxed),
                0,
                "overlapping output write in '{}' at element {abs}",
                self.name
            );
            for ax in (0..dims.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < dims[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
    }

    fn into_parts(self) -> (String, Tensor) {
        (self.name, self.cell.into_inner())
    }
}

/// Builds the lock-free output slots for one kernel.
fn output_slots(graph: &Graph) -> Vec<OutputSlot> {
    graph
        .outputs()
        .iter()
        .map(|&o| {
            OutputSlot::new(
                o,
                graph.value(o).name.clone(),
                Tensor::zeros(graph.shape(o).clone(), graph.dtype()),
            )
        })
        .collect()
}

/// Executes one kernel serially with an explicit scratch pool,
/// publishing outputs into `env` on success. This is the in-worker
/// path of [`crate::pipeline::CompiledProgram::execute_many`]: batch
/// items already occupy the pool's workers, so their kernels must not
/// re-enter the pool.
pub(crate) fn execute_kernel_pooled(
    kp: &KernelProgram,
    env: &mut HashMap<String, Tensor>,
    pool: &mut ScratchPool,
    faults: Option<&FaultInjector>,
) -> Result<()> {
    let slots = output_slots(&kp.graph);
    let blocks = enumerate_blocks(&kp.schedule);
    for (bi, block) in blocks.iter().enumerate() {
        run_block(kp, env, &slots, block, pool, faults, bi, blocks.len())?;
    }
    for slot in slots {
        let (name, tensor) = slot.into_parts();
        env.insert(name, tensor);
    }
    Ok(())
}

impl ExecEngine {
    /// Executes one kernel on this engine: serially on the caller's
    /// thread when a single worker is requested or the kernel is under
    /// the [`serial_cutoff`], otherwise fanned out over the persistent
    /// worker pool. Outputs are published into `env` only after every
    /// block succeeded; results are bit-identical for every worker
    /// count and across the serial/pooled paths.
    pub fn execute_kernel(
        &self,
        kp: &KernelProgram,
        env: &mut HashMap<String, Tensor>,
        opts: &ExecOptions,
        faults: Option<&FaultInjector>,
    ) -> Result<()> {
        let blocks = enumerate_blocks(&kp.schedule);
        let workers = opts.effective_threads().min(blocks.len()).max(1);
        let total_work: usize = kp
            .graph
            .outputs()
            .iter()
            .map(|&o| kp.graph.shape(o).volume())
            .sum();
        if !kp.disjoint.is_proven() {
            // The static prover could not discharge Table-3 disjointness
            // for this kernel (RACE505 or worse), so the lock-free
            // fan-out is not justified: fall back to the serial path,
            // where block writes are ordered by program order and the
            // region hand-out is trivially sound. Results stay
            // bit-identical — the serial path runs the same blocks in
            // the same deterministic order.
            self.note_race_fallback();
            return self.with_serial_scratch(|pool| execute_kernel_pooled(kp, env, pool, faults));
        }
        let threads = opts.effective_threads();
        let partitions = kp.schedule.temporal.as_ref().map_or(1, |t| t.partitions());
        if partitions > 1 && threads > 1 {
            // A split-K schedule's unit of parallelism is the
            // (spatial block × partition) pair, and its real work
            // includes the sliced reduction extent that the output
            // volume hides (a decode kernel writes one row but reads
            // the whole KV cache), so the cutoff is taken on those.
            let red_extent = kp
                .schedule
                .temporal
                .as_ref()
                .map_or(1, |t| kp.schedule.smg.extent(t.plan.dim));
            let split_work = total_work.saturating_mul(red_extent);
            if !serial_cutoff(blocks.len() * partitions, split_work) {
                return self.execute_kernel_split(kp, env, &blocks, partitions, threads, faults);
            }
        }
        if workers == 1 || serial_cutoff(blocks.len(), total_work) {
            return self.with_serial_scratch(|pool| execute_kernel_pooled(kp, env, pool, faults));
        }

        let slots = output_slots(&kp.graph);
        // Chunked work queue: coarse enough to amortize the atomic,
        // fine enough to balance blocks of uneven cost.
        let chunk = blocks.len().div_ceil(workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let failures: Mutex<Vec<(usize, SfError)>> = Mutex::new(Vec::new());
        let env_ref: &HashMap<String, Tensor> = env;
        let blocks_ref: &[Restrict] = &blocks;
        let slots_ref: &[OutputSlot] = &slots;
        let panicked = self.run_dispatch(workers, &|pool: &mut ScratchPool| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= blocks_ref.len() {
                return;
            }
            let end = (start + chunk).min(blocks_ref.len());
            for (off, block) in blocks_ref[start..end].iter().enumerate() {
                let bi = start + off;
                if let Err(e) = run_block(
                    kp,
                    env_ref,
                    slots_ref,
                    block,
                    pool,
                    faults,
                    bi,
                    blocks_ref.len(),
                ) {
                    failures
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((bi, e));
                    return;
                }
            }
        });
        if panicked {
            // `run_block` already isolates block panics; reaching here
            // means a panic escaped that boundary (a queue bug).
            return Err(SfError::Internal {
                pass: format!("exec:{}", kp.name),
                payload: "worker panicked outside block isolation".into(),
            });
        }
        // Report the failure of the earliest block, independent of
        // worker scheduling.
        let mut failures = failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        failures.sort_by_key(|&(i, _)| i);
        if let Some((_, e)) = failures.into_iter().next() {
            return Err(e);
        }

        for slot in slots {
            let (name, tensor) = slot.into_parts();
            env.insert(name, tensor);
        }
        Ok(())
    }

    /// Executes a split-K kernel as two pool dispatches. Phase 1 fans
    /// the (spatial block × partition) grid over the workers: each item
    /// runs the intra-block loop over its partition's tile sub-range
    /// and parks the resulting partial aggregate state in its dedicated
    /// [`PartialSlot`]. The pool drain at the end of the dispatch (the
    /// completion hand-shake of `WorkerPool::run`) is the
    /// happens-before edge publishing every slot. The combine dispatch
    /// then folds each block's partition states left-to-right in
    /// partition order — the fixed combine order that keeps outputs
    /// bit-identical at every thread count and to the serial path —
    /// and finalizes the block. Slots are strictly
    /// one-writer-then-one-reader, so no lock is added to the hot path.
    fn execute_kernel_split(
        &self,
        kp: &KernelProgram,
        env: &mut HashMap<String, Tensor>,
        blocks: &[Restrict],
        partitions: usize,
        threads: usize,
        faults: Option<&FaultInjector>,
    ) -> Result<()> {
        let t =
            kp.schedule.temporal.as_ref().ok_or_else(|| {
                SfError::Codegen("split execution without temporal slicing".into())
            })?;
        let n_tiles = kp.schedule.smg.extent(t.plan.dim).div_ceil(t.block);
        let slots = output_slots(&kp.graph);
        let items = blocks.len() * partitions;
        let partials: Vec<PartialSlot> = (0..items).map(|_| PartialSlot::default()).collect();
        let failures: Mutex<Vec<(usize, SfError)>> = Mutex::new(Vec::new());
        let env_ref: &HashMap<String, Tensor> = env;
        let partials_ref: &[PartialSlot] = &partials;

        // Dispatch 1: one phase-1 partial per (block, partition).
        let workers = threads.min(items);
        let chunk = items.div_ceil(workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let panicked = self.run_dispatch(workers, &|pool: &mut ScratchPool| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= items {
                return;
            }
            let end = (start + chunk).min(items);
            for (item, slot) in partials_ref.iter().enumerate().take(end).skip(start) {
                let (bi, p) = (item / partitions, item % partitions);
                let (lo, hi) = t.partition_tiles(n_tiles, p);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(inj) = faults {
                        if inj.fire_block(&kp.name, item, items) == Some(FaultKind::CrashWorker) {
                            panic!(
                                "injected worker crash at kernel '{}' split item {item}",
                                kp.name
                            );
                        }
                    }
                    phase1_partition(kp, env_ref, &blocks[bi], pool, lo, hi)
                }))
                .unwrap_or_else(|payload| {
                    Err(SfError::Internal {
                        pass: format!("exec:{} split item {item}", kp.name),
                        payload: panic_payload(payload),
                    })
                });
                match result {
                    // SAFETY: item indices are claimed uniquely off the
                    // atomic queue, so this worker is the slot's only
                    // writer; the only reader runs in the combine
                    // dispatch, after `run_dispatch` has drained this
                    // one.
                    Ok(state) => unsafe { *slot.0.get() = Some(state) },
                    Err(e) => {
                        failures
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push((item, e));
                        return;
                    }
                }
            }
        });
        if panicked {
            return Err(SfError::Internal {
                pass: format!("exec:{}", kp.name),
                payload: "worker panicked outside split-item isolation".into(),
            });
        }
        take_earliest_failure(&failures)?;

        // Dispatch 2: fold each block's partitions and finalize it.
        let workers = threads.min(blocks.len());
        let chunk = blocks.len().div_ceil(workers * 4).max(1);
        let next = AtomicUsize::new(0);
        let slots_ref: &[OutputSlot] = &slots;
        let panicked = self.run_dispatch(workers, &|pool: &mut ScratchPool| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= blocks.len() {
                return;
            }
            let end = (start + chunk).min(blocks.len());
            for bi in start..end {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut accs: Option<HashMap<ValueId, Tensor>> = None;
                    for p in 0..partitions {
                        // SAFETY: block `bi` is claimed by exactly one
                        // combine worker, making this the sole reader
                        // of its slots; every writer finished before
                        // the phase-1 dispatch drained.
                        let state = unsafe { (*partials_ref[bi * partitions + p].0.get()).take() }
                            .ok_or_else(|| SfError::Internal {
                                pass: format!("exec:{} combine block {bi}", kp.name),
                                payload: format!("phase-1 state missing for partition {p}"),
                            })?;
                        accs = Some(match accs {
                            None => state,
                            Some(acc) => combine_partition_states(kp, acc, state, pool)?,
                        });
                    }
                    let accs = accs.ok_or_else(|| {
                        SfError::Codegen("split kernel with zero partitions".into())
                    })?;
                    finish_block(kp, env_ref, slots_ref, &blocks[bi], accs, pool)
                }))
                .unwrap_or_else(|payload| {
                    Err(SfError::Internal {
                        pass: format!("exec:{} combine block {bi}", kp.name),
                        payload: panic_payload(payload),
                    })
                });
                if let Err(e) = result {
                    failures
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((bi, e));
                    return;
                }
            }
        });
        if panicked {
            return Err(SfError::Internal {
                pass: format!("exec:{}", kp.name),
                payload: "worker panicked outside combine-block isolation".into(),
            });
        }
        take_earliest_failure(&failures)?;

        for slot in slots {
            let (name, tensor) = slot.into_parts();
            env.insert(name, tensor);
        }
        Ok(())
    }
}

/// Returns the failure of the earliest work item recorded during a
/// dispatch, independent of worker scheduling; `Ok` when none failed.
fn take_earliest_failure(failures: &Mutex<Vec<(usize, SfError)>>) -> Result<()> {
    let mut failures = failures.lock().unwrap_or_else(PoisonError::into_inner);
    failures.sort_by_key(|&(i, _)| i);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.remove(0).1)
    }
}

/// One (spatial block × partition) phase-1 result: the partial
/// aggregate state produced by [`phase1_partition`], parked between
/// the two pool dispatches of a split-K execution.
#[derive(Default)]
struct PartialSlot(UnsafeCell<Option<HashMap<ValueId, Tensor>>>);

// SAFETY: a slot is written by exactly one phase-1 worker (work items
// are claimed uniquely off the atomic queue) and read by exactly one
// combine worker, strictly after `WorkerPool::run` drained the phase-1
// dispatch; the drain's completion hand-shake is the happens-before
// edge between the write and the read.
unsafe impl Send for PartialSlot {}
// SAFETY: see the `Send` impl — disjoint one-writer-then-one-reader
// access, ordered by the dispatch drain.
unsafe impl Sync for PartialSlot {}

/// Executes one spatial block behind a panic-isolation boundary,
/// firing any armed exec-block fault first (inside the boundary, so an
/// injected crash is caught like a real one).
#[allow(clippy::too_many_arguments)]
fn run_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &[OutputSlot],
    block: &Restrict,
    pool: &mut ScratchPool,
    faults: Option<&FaultInjector>,
    block_idx: usize,
    n_blocks: usize,
) -> Result<()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(inj) = faults {
            if inj.fire_block(&kp.name, block_idx, n_blocks) == Some(FaultKind::CrashWorker) {
                panic!(
                    "injected worker crash at kernel '{}' block {block_idx}",
                    kp.name
                );
            }
        }
        execute_block(kp, env, outputs, block, pool)
    }))
    .unwrap_or_else(|payload| {
        Err(SfError::Internal {
            pass: format!("exec:{} block {block_idx}", kp.name),
            payload: panic_payload(payload),
        })
    })
}

/// Enumerates the spatial block restrictions in row-major block order.
fn enumerate_blocks(s: &crate::sched::FusedSchedule) -> Vec<Restrict> {
    let block_counts: Vec<usize> = s
        .spatial
        .iter()
        .map(|&(d, b)| s.smg.extent(d).div_ceil(b))
        .collect();
    let mut blocks = Vec::with_capacity(block_counts.iter().product::<usize>().max(1));
    let mut block_idx = vec![0usize; s.spatial.len()];
    loop {
        blocks.push(
            s.spatial
                .iter()
                .zip(&block_idx)
                .map(|(&(d, b), &i)| {
                    let start = i * b;
                    (d, (start, (start + b).min(s.smg.extent(d))))
                })
                .collect(),
        );
        // Advance the multi-index.
        let mut carry = true;
        for (i, c) in block_idx.iter_mut().zip(&block_counts) {
            if carry {
                *i += 1;
                if *i == *c {
                    *i = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    blocks
}

fn execute_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &[OutputSlot],
    spatial: &Restrict,
    pool: &mut ScratchPool,
) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let Some(t) = &s.temporal else {
        // Unsliced block: evaluate everything on the block tile.
        let mut local: HashMap<ValueId, Tensor> = HashMap::new();
        for (oi, op) in graph.ops().iter().enumerate() {
            let out = eval_op(graph, &s.smg, oi, spatial, pool, &|v| {
                value_view(graph, &s.smg, env, &local, v, spatial)
            })?;
            local.insert(op.output, out);
        }
        for slot in outputs {
            let tile = local
                .get(&slot.value)
                .ok_or_else(|| SfError::Codegen("output not computed".into()))?;
            scatter(graph, &s.smg, slot, spatial, tile)?;
        }
        for (_, tensor) in local.drain() {
            pool.recycle_tensor(tensor);
        }
        return Ok(());
    };

    let n_tiles = s.smg.extent(t.plan.dim).div_ceil(t.block);

    // Phase 1 over each split-K partition's tile range (one partition
    // spanning every tile when unsplit), folding the partial aggregate
    // states in fixed partition order. The parallel split path computes
    // the same per-partition states concurrently and folds them in the
    // same order, so results are bit-identical at every thread count.
    let mut accs: HashMap<ValueId, Tensor> = HashMap::new();
    for p in 0..t.partitions() {
        let (lo, hi) = t.partition_tiles(n_tiles, p);
        let state = phase1_partition(kp, env, spatial, pool, lo, hi)?;
        accs = if p == 0 {
            state
        } else {
            combine_partition_states(kp, accs, state, pool)?
        };
    }
    finish_block(kp, env, outputs, spatial, accs, pool)
}

/// Runs the phase-1 intra-block loop over tiles `[tile_lo, tile_hi)`
/// of the sliced dimension, returning the partial aggregate states
/// (one tensor per sliced reduction, keyed by its output value).
///
/// With the full tile range this is exactly the serial phase-1 loop; a
/// split-K partition runs it over its own sub-range, producing a
/// partial state later folded by [`combine_partition_states`].
fn phase1_partition(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    spatial: &Restrict,
    pool: &mut ScratchPool,
    tile_lo: usize,
    tile_hi: usize,
) -> Result<HashMap<ValueId, Tensor>> {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let t = s
        .temporal
        .as_ref()
        .ok_or_else(|| SfError::Codegen("phase-1 partition without temporal slicing".into()))?;
    let dim = t.plan.dim;
    let extent = s.smg.extent(dim);

    // Outputs of UTA update-factor dependencies. Their pre-tile values
    // are double-buffered in `prev` by moving them out of `accs` at
    // re-aggregation time, replacing the old whole-map `accs.clone()`
    // snapshot per tile.
    let uta_deps: Vec<ValueId> = t
        .plan
        .sliced
        .iter()
        .filter_map(|sl| match &sl.agg {
            AggKind::Uta(factors) => Some(factors.as_slice()),
            _ => None,
        })
        .flatten()
        .map(|f| graph.ops()[f.dep.0].output)
        .collect();

    let mut accs: HashMap<ValueId, Tensor> = HashMap::new();
    let mut prev: HashMap<ValueId, Tensor> = HashMap::new();
    let mut local: HashMap<ValueId, Tensor> = HashMap::new();
    for tile in tile_lo..tile_hi {
        let start = tile * t.block;
        let mut restrict = spatial.clone();
        restrict.push((dim, (start, (start + t.block).min(extent))));

        for (_, stale) in prev.drain() {
            pool.recycle_tensor(stale);
        }
        for (oi, op) in graph.ops().iter().enumerate() {
            if !kp.needed_phase1[oi] || kp.roles[oi] == OpRole::PostLoop {
                continue;
            }
            match kp.roles[oi] {
                OpRole::SlicedReduction(idx) => {
                    let partial =
                        eval_sliced_partial(graph, &s.smg, oi, dim, &restrict, pool, &|v| {
                            reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                        })?;
                    let agg = &t.plan.sliced[idx].agg;
                    let combined = match accs.remove(&op.output) {
                        None => partial,
                        Some(old) => {
                            let combined = match agg {
                                AggKind::Simple => combine(graph, oi, &old, &partial, pool)?,
                                AggKind::Uta(factors) => {
                                    let updated =
                                        apply_update(graph, &old, factors, &prev, &accs, pool)?;
                                    let combined = combine(graph, oi, &updated, &partial, pool)?;
                                    pool.recycle_tensor(updated);
                                    combined
                                }
                            };
                            pool.recycle_tensor(partial);
                            // Later UTA updates in this tile read the
                            // dependency's pre-tile value from `prev`.
                            if uta_deps.contains(&op.output) {
                                prev.insert(op.output, old);
                            } else {
                                pool.recycle_tensor(old);
                            }
                            combined
                        }
                    };
                    accs.insert(op.output, combined);
                }
                _ => {
                    let out = eval_op(graph, &s.smg, oi, &restrict, pool, &|v| {
                        reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                    })?;
                    local.insert(op.output, out);
                }
            }
        }
        for (_, tensor) in local.drain() {
            pool.recycle_tensor(tensor);
        }
    }
    for (_, tensor) in prev.drain() {
        pool.recycle_tensor(tensor);
    }
    Ok(accs)
}

/// Folds partition `right`'s partial aggregate states into `left`
/// (partitions are folded left-to-right in partition order — the fixed
/// combine order that keeps results reproducible at every thread
/// count).
///
/// Walks the sliced reductions in plan (topological) order building the
/// combined map: a Simple aggregate merges directly with its combine
/// operator; a UTA partial first rescales **both** sides by the update
/// factors evaluated against the already-combined dependency values
/// (the serial tile loop only updates its old side because a fresh
/// tile partial is already expressed against the current factor values
/// — a partition's state is not). For attention this computes the
/// FlashDecoding fixup `o = o_a·(s_a/s)·e^(m_a−m) + o_b·(s_b/s)·e^(m_b−m)`.
fn combine_partition_states(
    kp: &KernelProgram,
    left: HashMap<ValueId, Tensor>,
    right: HashMap<ValueId, Tensor>,
    pool: &mut ScratchPool,
) -> Result<HashMap<ValueId, Tensor>> {
    let graph = &kp.graph;
    let t = kp
        .schedule
        .temporal
        .as_ref()
        .ok_or_else(|| SfError::Codegen("combine without temporal slicing".into()))?;
    let mut combined: HashMap<ValueId, Tensor> = HashMap::new();
    for sl in &t.plan.sliced {
        let out = graph.ops()[sl.op.0].output;
        let (l, r) = match (left.get(&out), right.get(&out)) {
            (Some(l), Some(r)) => (l, r),
            _ => return Err(SfError::Codegen("partition state missing aggregate".into())),
        };
        let merged = match &sl.agg {
            AggKind::Simple => combine(graph, sl.op.0, l, r, pool)?,
            AggKind::Uta(factors) => {
                // Dependencies precede this reduction in plan order, so
                // `combined` already holds their folded values.
                let l_upd = apply_update(graph, l, factors, &left, &combined, pool)?;
                let r_upd = apply_update(graph, r, factors, &right, &combined, pool)?;
                let merged = combine(graph, sl.op.0, &l_upd, &r_upd, pool)?;
                pool.recycle_tensor(l_upd);
                pool.recycle_tensor(r_upd);
                merged
            }
        };
        combined.insert(out, merged);
    }
    for (_, tensor) in left.into_iter().chain(right) {
        pool.recycle_tensor(tensor);
    }
    Ok(combined)
}

/// Finalizes a block from its folded aggregate states: mean division,
/// post-loop ops, the phase-2 output re-stream, and the scatters into
/// the shared output slots.
fn finish_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &[OutputSlot],
    spatial: &Restrict,
    mut accs: HashMap<ValueId, Tensor>,
    pool: &mut ScratchPool,
) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let t = s
        .temporal
        .as_ref()
        .ok_or_else(|| SfError::Codegen("finish without temporal slicing".into()))?;
    let dim = t.plan.dim;
    let extent = s.smg.extent(dim);
    let n_tiles = extent.div_ceil(t.block);
    let mut local: HashMap<ValueId, Tensor> = HashMap::new();

    // Finalize mean accumulators (in place; same scalar division the
    // reference `binary_scalar(Div, ...)` performs).
    for (oi, op) in graph.ops().iter().enumerate() {
        if let OpRole::SlicedReduction(_) = kp.roles[oi] {
            if let OpKind::Reduce {
                op: ReduceOp::Mean, ..
            } = op.kind
            {
                if let Some(acc) = accs.get_mut(&op.output) {
                    for v in acc.data_mut() {
                        *v /= extent as f32;
                    }
                }
            }
        }
    }

    // Post-loop ops on finalized aggregates.
    let no_local: HashMap<ValueId, Tensor> = HashMap::new();
    let mut post: HashMap<ValueId, Tensor> = HashMap::new();
    for (oi, op) in graph.ops().iter().enumerate() {
        if kp.roles[oi] != OpRole::PostLoop {
            continue;
        }
        let out = eval_op(graph, &s.smg, oi, spatial, pool, &|v| {
            if let Some(a) = accs.get(&v) {
                return Ok(a.view());
            }
            if let Some(p) = post.get(&v) {
                return Ok(p.view());
            }
            value_view(graph, &s.smg, env, &no_local, v, spatial)
        })?;
        post.insert(op.output, out);
    }

    // Phase 2: re-stream tiles to produce outputs spanning the sliced
    // dimension, now with finalized aggregates.
    if t.plan.two_phase {
        for tile in 0..n_tiles {
            let start = tile * t.block;
            let mut restrict = spatial.clone();
            restrict.push((dim, (start, (start + t.block).min(extent))));
            for (oi, op) in graph.ops().iter().enumerate() {
                if kp.roles[oi] != OpRole::InLoop || !kp.needed_output[oi] {
                    continue;
                }
                let out = eval_op(graph, &s.smg, oi, &restrict, pool, &|v| {
                    if let Some(l) = local.get(&v) {
                        return Ok(l.view());
                    }
                    if let Some(a) = accs.get(&v) {
                        return Ok(a.view());
                    }
                    if let Some(p) = post.get(&v) {
                        return Ok(p.view());
                    }
                    value_view(graph, &s.smg, env, &no_local, v, &restrict)
                })?;
                local.insert(op.output, out);
            }
            for slot in outputs {
                if s.smg.value_has_dim(graph, slot.value, dim) {
                    let tile_val = local
                        .get(&slot.value)
                        .ok_or_else(|| SfError::Codegen("phase-2 output missing".into()))?;
                    scatter(graph, &s.smg, slot, &restrict, tile_val)?;
                }
            }
            for (_, tensor) in local.drain() {
                pool.recycle_tensor(tensor);
            }
        }
    }

    // Outputs that do not span the sliced dimension come from the
    // aggregates / post-loop values.
    for slot in outputs {
        if s.smg.value_has_dim(graph, slot.value, dim) {
            continue; // written in phase 2.
        }
        let tile = accs
            .get(&slot.value)
            .or_else(|| post.get(&slot.value))
            .ok_or_else(|| SfError::Codegen("block output missing".into()))?;
        scatter(graph, &s.smg, slot, spatial, tile)?;
    }

    // Recycle the block's remaining buffers for the next block on this
    // worker.
    for (_, tensor) in accs.drain() {
        pool.recycle_tensor(tensor);
    }
    for (_, tensor) in post.drain() {
        pool.recycle_tensor(tensor);
    }
    Ok(())
}

/// View of a value restricted to the given ranges: computed tiles come
/// from `local`, globals are viewed directly in `env` storage.
fn value_view<'a>(
    graph: &Graph,
    smg: &Smg,
    env: &'a HashMap<String, Tensor>,
    local: &'a HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    if let Some(t) = local.get(&v) {
        return Ok(t.view());
    }
    let name = &graph.value(v).name;
    let full = env
        .get(name)
        .ok_or_else(|| SfError::Codegen(format!("missing binding '{name}'")))?;
    let declared = &graph.value(v).shape;
    if full.shape() != declared {
        // The binding was materialized upstream of a layout barrier and
        // carries the producing kernel's layout; view it under this
        // segment's declared shape before extracting the block tile.
        let reinterpreted = full.view_reshaped(declared.clone())?;
        return extract(graph, smg, reinterpreted, v, restrict);
    }
    extract(graph, smg, full.view(), v, restrict)
}

/// Like [`value_view`] but lets running aggregates shadow global values.
fn reduction_input_view<'a>(
    graph: &Graph,
    smg: &Smg,
    env: &'a HashMap<String, Tensor>,
    local: &'a HashMap<ValueId, Tensor>,
    accs: &'a HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    if let Some(t) = local.get(&v) {
        return Ok(t.view());
    }
    if let Some(a) = accs.get(&v) {
        return Ok(a.view());
    }
    value_view(graph, smg, env, local, v, restrict)
}

/// Per-axis `[start, end)` ranges of `v` under a restriction.
fn restricted_ranges(
    graph: &Graph,
    smg: &Smg,
    v: ValueId,
    restrict: &Restrict,
) -> Vec<(usize, usize)> {
    graph
        .shape(v)
        .dims()
        .iter()
        .enumerate()
        .map(|(axis, &e)| {
            let d = smg.value_axes[v.0][axis];
            if e == smg.extent(d) {
                if let Some(&(_, (s, t))) = restrict.iter().find(|&&(rd, _)| rd == d) {
                    return (s.min(e), t.min(e));
                }
            }
            (0, e)
        })
        .collect()
}

/// Zero-copy view of the restricted sub-tensor of a full value.
fn extract<'a>(
    graph: &Graph,
    smg: &Smg,
    full: TensorView<'a>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<TensorView<'a>> {
    let ranges = restricted_ranges(graph, smg, v, restrict);
    full.slice(&ranges).map_err(Into::into)
}

/// Writes a tile into its disjoint region of the shared output buffer.
///
/// Lock-free: the destination region is handed out as a
/// [`TensorViewMut`] over the slot's storage
/// ([`OutputSlot::region_mut`]); the view's dense-suffix copy decomposes
/// the region into contiguous runs copied slice-to-slice, exactly like
/// the old in-place scatter but without taking any mutex.
fn scatter(
    graph: &Graph,
    smg: &Smg,
    slot: &OutputSlot,
    restrict: &Restrict,
    tile: &Tensor,
) -> Result<()> {
    let ranges = restricted_ranges(graph, smg, slot.value, restrict);
    let out_dims: Vec<usize> = ranges.iter().map(|&(s, t)| t - s).collect();
    if out_dims != tile.shape().dims() {
        return Err(SfError::Codegen(format!(
            "scatter shape mismatch: tile {:?} vs region {:?}",
            tile.shape().dims(),
            out_dims
        )));
    }
    let mut region = slot.region_mut(&ranges);
    region.copy_from_dense(tile.data()).map_err(Into::into)
}

/// Evaluates one (non-sliced) operator on restricted views.
fn eval_op<'a>(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    restrict: &Restrict,
    pool: &mut ScratchPool,
    get: &dyn Fn(ValueId) -> Result<TensorView<'a>>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let out = match &op.kind {
        OpKind::Gemm { transpose_b } => {
            let a = get(op.inputs[0])?;
            let b = get(op.inputs[1])?;
            viewed::matmul(&a, &b, *transpose_b, pool)?
        }
        OpKind::Unary(u) => viewed::unary(*u, &get(op.inputs[0])?, pool),
        OpKind::Binary(b) => {
            let x = get(op.inputs[0])?;
            let y = get(op.inputs[1])?;
            viewed::binary(*b, &x, &y, pool)?
        }
        OpKind::Scalar { op: b, value } => {
            viewed::binary_scalar(*b, &get(op.inputs[0])?, *value, pool)
        }
        OpKind::Reduce { op: r, dim } => viewed::reduce(*r, &get(op.inputs[0])?, *dim, pool)?,
        OpKind::Broadcast { dim, .. } => {
            // The broadcast target extent is the *restricted* extent.
            let d = smg.value_axes[op.output.0][*dim];
            let full = smg.extent(d);
            let ext = restrict
                .iter()
                .find(|&&(rd, _)| rd == d)
                .map(|&(_, (s, t))| (t - s).min(full))
                .unwrap_or(full);
            viewed::broadcast_to(&get(op.inputs[0])?, *dim, ext, pool)?
        }
        OpKind::LayoutBarrier => {
            return Err(SfError::Codegen("layout barrier inside a kernel".into()))
        }
    };
    Ok(out)
}

/// Evaluates the partial result of a sliced reduction on one tile.
///
/// Mean reductions accumulate raw sums (finalized at loop end).
fn eval_sliced_partial<'a>(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    dim: DimId,
    _restrict: &Restrict,
    pool: &mut ScratchPool,
    get: &dyn Fn(ValueId) -> Result<TensorView<'a>>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    match &op.kind {
        OpKind::Gemm { transpose_b } => {
            let a = get(op.inputs[0])?;
            let b = get(op.inputs[1])?;
            Ok(viewed::matmul(&a, &b, *transpose_b, pool)?)
        }
        OpKind::Reduce { op: r, dim: axis } => {
            let input = get(op.inputs[0])?;
            // Sanity: the reduce axis must be the sliced dimension.
            debug_assert_eq!(smg.value_axes[op.inputs[0].0][*axis], dim);
            let kind = if *r == ReduceOp::Mean {
                ReduceOp::Sum
            } else {
                *r
            };
            Ok(viewed::reduce(kind, &input, *axis, pool)?)
        }
        other => Err(SfError::Codegen(format!(
            "op {} cannot be a sliced reduction",
            other.name()
        ))),
    }
}

/// Combines an (updated) accumulator with a tile partial.
fn combine(
    graph: &Graph,
    op_idx: usize,
    acc: &Tensor,
    partial: &Tensor,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let b = match &op.kind {
        OpKind::Reduce {
            op: ReduceOp::Max, ..
        } => BinaryOp::Max,
        _ => BinaryOp::Add,
    };
    Ok(viewed::binary(b, &acc.view(), &partial.view(), pool)?)
}

/// Applies the UTA update function: multiplies the old accumulator by
/// `Π g(dep_old, dep_new)`.
///
/// `prev` holds the dependencies' pre-tile values (moved out of the
/// accumulator map when the dependency re-aggregated this tile);
/// `current` holds their freshly combined values.
fn apply_update(
    graph: &Graph,
    old_acc: &Tensor,
    factors: &[crate::slicer::UpdateFactor],
    prev: &HashMap<ValueId, Tensor>,
    current: &HashMap<ValueId, Tensor>,
    pool: &mut ScratchPool,
) -> Result<Tensor> {
    let mut result: Option<Tensor> = None;
    for f in factors {
        let dep_out = graph.ops()[f.dep.0].output;
        let old = prev
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing old dependency value".into()))?;
        let new = current
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing new dependency value".into()))?;
        let g = match f.form {
            FactorForm::Recip => viewed::binary(BinaryOp::Div, &old.view(), &new.view(), pool)?,
            FactorForm::ExpNeg => {
                let diff = viewed::binary(BinaryOp::Sub, &old.view(), &new.view(), pool)?;
                let exp = viewed::unary(UnaryOp::Exp, &diff.view(), pool);
                pool.recycle_tensor(diff);
                exp
            }
            FactorForm::Value => viewed::binary(BinaryOp::Div, &new.view(), &old.view(), pool)?,
        };
        let next = match result.take() {
            None => viewed::binary(BinaryOp::Mul, &old_acc.view(), &g.view(), pool)?,
            Some(r) => {
                let m = viewed::binary(BinaryOp::Mul, &r.view(), &g.view(), pool)?;
                pool.recycle_tensor(r);
                m
            }
        };
        pool.recycle_tensor(g);
        result = Some(next);
    }
    Ok(result.unwrap_or_else(|| old_acc.clone()))
}
