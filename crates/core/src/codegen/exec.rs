//! Numeric interpretation of kernel programs.
//!
//! Executes a [`KernelProgram`] exactly as a GPU would: one pass over the
//! spatial blocks, and within each block either a direct evaluation of
//! the fused subgraph on the block's tiles, or the temporal intra-block
//! loop with running aggregations (Simple Aggregate and Update-then-
//! Aggregate) and, for two-phase schedules, a second streaming pass that
//! produces the outputs from the finalized aggregates.
//!
//! This interpreter is the correctness oracle of the whole compiler: the
//! test suites compare its results bit-for-bit-ish (to float tolerance)
//! against the unfused reference execution of the same graph.

use super::program::KernelProgram;
use crate::error::{Result, SfError};
use crate::sched::OpRole;
use crate::slicer::{AggKind, FactorForm};
use crate::smg::{DimId, Smg};
use sf_ir::{Graph, OpKind, ValueId};
use sf_tensor::ops::{self, BinaryOp, ReduceOp, UnaryOp};
use sf_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Dimension restrictions: `dim -> [start, end)`.
type Restrict = Vec<(DimId, (usize, usize))>;

/// Executes one kernel over the environment of named tensors.
///
/// Inputs and weights are read from `env` by value name; outputs are
/// inserted into `env` under their value names.
pub fn execute_kernel(kp: &KernelProgram, env: &mut HashMap<String, Tensor>) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;

    // Allocate full output tensors.
    let mut outputs: HashMap<ValueId, Tensor> = HashMap::new();
    for &o in graph.outputs() {
        outputs.insert(o, Tensor::zeros(graph.shape(o).clone(), graph.dtype()));
    }

    // Iterate spatial blocks.
    let block_counts: Vec<usize> = s
        .spatial
        .iter()
        .map(|&(d, b)| s.smg.extent(d).div_ceil(b))
        .collect();
    let mut block_idx = vec![0usize; s.spatial.len()];
    loop {
        let spatial_restrict: Restrict = s
            .spatial
            .iter()
            .zip(&block_idx)
            .map(|(&(d, b), &i)| {
                let start = i * b;
                (d, (start, (start + b).min(s.smg.extent(d))))
            })
            .collect();

        execute_block(kp, env, &mut outputs, &spatial_restrict)?;

        // Advance the multi-index.
        let mut carry = true;
        for (i, c) in block_idx.iter_mut().zip(&block_counts) {
            if carry {
                *i += 1;
                if *i == *c {
                    *i = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }

    for (v, t) in outputs {
        env.insert(graph.value(v).name.clone(), t);
    }
    Ok(())
}

fn execute_block(
    kp: &KernelProgram,
    env: &HashMap<String, Tensor>,
    outputs: &mut HashMap<ValueId, Tensor>,
    spatial: &Restrict,
) -> Result<()> {
    let graph = &kp.graph;
    let s = &kp.schedule;
    let Some(t) = &s.temporal else {
        // Unsliced block: evaluate everything on the block tile.
        let mut local: HashMap<ValueId, Tensor> = HashMap::new();
        for (oi, _) in graph.ops().iter().enumerate() {
            let out = eval_op(graph, &s.smg, oi, spatial, &|v| {
                value_view(graph, &s.smg, env, &local, v, spatial)
            })?;
            local.insert(graph.ops()[oi].output, out);
        }
        for (&o, full) in outputs.iter_mut() {
            let tile = local
                .get(&o)
                .cloned()
                .ok_or_else(|| SfError::Codegen("output not computed".into()))?;
            scatter(graph, &s.smg, full, o, spatial, &tile)?;
        }
        return Ok(());
    };

    let dim = t.plan.dim;
    let extent = s.smg.extent(dim);
    let n_tiles = extent.div_ceil(t.block);

    // Phase 1: the intra-block loop computing the sliced reductions.
    let mut accs: HashMap<ValueId, Tensor> = HashMap::new();
    for tile in 0..n_tiles {
        let start = tile * t.block;
        let mut restrict = spatial.clone();
        restrict.push((dim, (start, (start + t.block).min(extent))));

        let snapshot = accs.clone();
        let mut local: HashMap<ValueId, Tensor> = HashMap::new();
        for (oi, op) in graph.ops().iter().enumerate() {
            if !kp.needed_phase1[oi] || kp.roles[oi] == OpRole::PostLoop {
                continue;
            }
            match kp.roles[oi] {
                OpRole::SlicedReduction(idx) => {
                    let partial = eval_sliced_partial(graph, &s.smg, oi, dim, &restrict, &|v| {
                        reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                    })?;
                    let agg = &t.plan.sliced[idx].agg;
                    let combined = match accs.get(&op.output) {
                        None => partial,
                        Some(old) => {
                            let updated = match agg {
                                AggKind::Simple => old.clone(),
                                AggKind::Uta(factors) => {
                                    apply_update(graph, old, factors, &snapshot, &accs)?
                                }
                            };
                            combine(graph, oi, &updated, &partial)?
                        }
                    };
                    accs.insert(op.output, combined);
                }
                _ => {
                    let out = eval_op(graph, &s.smg, oi, &restrict, &|v| {
                        reduction_input_view(graph, &s.smg, env, &local, &accs, v, &restrict)
                    })?;
                    local.insert(op.output, out);
                }
            }
        }
    }

    // Finalize mean accumulators.
    for (oi, op) in graph.ops().iter().enumerate() {
        if let OpRole::SlicedReduction(_) = kp.roles[oi] {
            if let OpKind::Reduce {
                op: ReduceOp::Mean, ..
            } = op.kind
            {
                if let Some(acc) = accs.get_mut(&op.output) {
                    *acc = ops::binary_scalar(BinaryOp::Div, acc, extent as f32);
                }
            }
        }
    }

    // Post-loop ops on finalized aggregates.
    let mut post: HashMap<ValueId, Tensor> = HashMap::new();
    for (oi, op) in graph.ops().iter().enumerate() {
        if kp.roles[oi] != OpRole::PostLoop {
            continue;
        }
        let out = eval_op(graph, &s.smg, oi, spatial, &|v| {
            if let Some(a) = accs.get(&v) {
                return Ok(a.clone());
            }
            if let Some(p) = post.get(&v) {
                return Ok(p.clone());
            }
            value_view(graph, &s.smg, env, &HashMap::new(), v, spatial)
        })?;
        post.insert(op.output, out);
    }

    // Phase 2: re-stream tiles to produce outputs spanning the sliced
    // dimension, now with finalized aggregates.
    if t.plan.two_phase {
        for tile in 0..n_tiles {
            let start = tile * t.block;
            let mut restrict = spatial.clone();
            restrict.push((dim, (start, (start + t.block).min(extent))));
            let mut local: HashMap<ValueId, Tensor> = HashMap::new();
            for (oi, op) in graph.ops().iter().enumerate() {
                if kp.roles[oi] != OpRole::InLoop || !kp.needed_output[oi] {
                    continue;
                }
                let out = eval_op(graph, &s.smg, oi, &restrict, &|v| {
                    if let Some(l) = local.get(&v) {
                        return Ok(l.clone());
                    }
                    if let Some(a) = accs.get(&v) {
                        return Ok(a.clone());
                    }
                    if let Some(p) = post.get(&v) {
                        return Ok(p.clone());
                    }
                    value_view(graph, &s.smg, env, &HashMap::new(), v, &restrict)
                })?;
                local.insert(op.output, out);
            }
            for (&o, full) in outputs.iter_mut() {
                if s.smg.value_has_dim(graph, o, dim) {
                    let tile_val = local
                        .get(&o)
                        .cloned()
                        .ok_or_else(|| SfError::Codegen("phase-2 output missing".into()))?;
                    scatter(graph, &s.smg, full, o, &restrict, &tile_val)?;
                }
            }
        }
    }

    // Outputs that do not span the sliced dimension come from the
    // aggregates / post-loop values.
    for (&o, full) in outputs.iter_mut() {
        if s.smg.value_has_dim(graph, o, dim) {
            continue; // written in phase 2.
        }
        let tile = accs
            .get(&o)
            .or_else(|| post.get(&o))
            .cloned()
            .ok_or_else(|| SfError::Codegen("block output missing".into()))?;
        scatter(graph, &s.smg, full, o, spatial, &tile)?;
    }
    Ok(())
}

/// View of a value restricted to the given ranges: computed tiles come
/// from `local`, globals are extracted from `env`.
fn value_view(
    graph: &Graph,
    smg: &Smg,
    env: &HashMap<String, Tensor>,
    local: &HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<Tensor> {
    if let Some(t) = local.get(&v) {
        return Ok(t.clone());
    }
    let name = &graph.value(v).name;
    let full = env
        .get(name)
        .ok_or_else(|| SfError::Codegen(format!("missing binding '{name}'")))?;
    let declared = &graph.value(v).shape;
    if full.shape() != declared {
        // The binding was materialized upstream of a layout barrier and
        // carries the producing kernel's layout; view it under this
        // segment's declared shape before extracting the block tile.
        let viewed = full.reshape(declared.clone())?;
        return Ok(extract(graph, smg, &viewed, v, restrict));
    }
    Ok(extract(graph, smg, full, v, restrict))
}

/// Like [`value_view`] but lets running aggregates shadow global values.
fn reduction_input_view(
    graph: &Graph,
    smg: &Smg,
    env: &HashMap<String, Tensor>,
    local: &HashMap<ValueId, Tensor>,
    accs: &HashMap<ValueId, Tensor>,
    v: ValueId,
    restrict: &Restrict,
) -> Result<Tensor> {
    if let Some(t) = local.get(&v) {
        return Ok(t.clone());
    }
    if let Some(a) = accs.get(&v) {
        return Ok(a.clone());
    }
    value_view(graph, smg, env, local, v, restrict)
}

/// Extracts the restricted sub-tensor of a full value.
fn extract(graph: &Graph, smg: &Smg, full: &Tensor, v: ValueId, restrict: &Restrict) -> Tensor {
    let shape = graph.shape(v);
    let ranges: Vec<(usize, usize)> = shape
        .dims()
        .iter()
        .enumerate()
        .map(|(axis, &e)| {
            let d = smg.value_axes[v.0][axis];
            if e == smg.extent(d) {
                if let Some(&(_, (s, t))) = restrict.iter().find(|&&(rd, _)| rd == d) {
                    return (s.min(e), t.min(e));
                }
            }
            (0, e)
        })
        .collect();
    let out_dims: Vec<usize> = ranges.iter().map(|&(s, t)| t - s).collect();
    let out_shape = Shape::new(out_dims.clone());
    let mut out = Tensor::zeros(out_shape, full.dtype());
    let mut idx = vec![0usize; ranges.len()];
    let volume = out.shape().volume();
    let mut src_index = vec![0usize; ranges.len()];
    for lin in 0..volume {
        // Decode lin into idx.
        let mut rem = lin;
        for (i, &d) in out_dims.iter().enumerate().rev() {
            idx[i] = rem % d.max(1);
            rem /= d.max(1);
        }
        for i in 0..ranges.len() {
            src_index[i] = ranges[i].0 + idx[i];
        }
        out.data_mut()[lin] = full.at(&src_index);
    }
    out
}

/// Writes a tile back into the full output tensor.
fn scatter(
    graph: &Graph,
    smg: &Smg,
    full: &mut Tensor,
    v: ValueId,
    restrict: &Restrict,
    tile: &Tensor,
) -> Result<()> {
    let shape = graph.shape(v).clone();
    let ranges: Vec<(usize, usize)> = shape
        .dims()
        .iter()
        .enumerate()
        .map(|(axis, &e)| {
            let d = smg.value_axes[v.0][axis];
            if e == smg.extent(d) {
                if let Some(&(_, (s, t))) = restrict.iter().find(|&&(rd, _)| rd == d) {
                    return (s.min(e), t.min(e));
                }
            }
            (0, e)
        })
        .collect();
    let out_dims: Vec<usize> = ranges.iter().map(|&(s, t)| t - s).collect();
    if out_dims != tile.shape().dims() {
        return Err(SfError::Codegen(format!(
            "scatter shape mismatch: tile {:?} vs region {:?}",
            tile.shape().dims(),
            out_dims
        )));
    }
    let volume = tile.shape().volume();
    let mut idx = vec![0usize; ranges.len()];
    let mut dst_index = vec![0usize; ranges.len()];
    for lin in 0..volume {
        let mut rem = lin;
        for (i, &d) in out_dims.iter().enumerate().rev() {
            idx[i] = rem % d.max(1);
            rem /= d.max(1);
        }
        for i in 0..ranges.len() {
            dst_index[i] = ranges[i].0 + idx[i];
        }
        full.set(&dst_index, tile.data()[lin]);
    }
    Ok(())
}

/// Evaluates one (non-sliced) operator on restricted views.
fn eval_op(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    restrict: &Restrict,
    get: &dyn Fn(ValueId) -> Result<Tensor>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let out = match &op.kind {
        OpKind::Gemm { transpose_b } => {
            ops::matmul(&get(op.inputs[0])?, &get(op.inputs[1])?, *transpose_b)?
        }
        OpKind::Unary(u) => ops::unary(*u, &get(op.inputs[0])?),
        OpKind::Binary(b) => ops::binary(*b, &get(op.inputs[0])?, &get(op.inputs[1])?)?,
        OpKind::Scalar { op: b, value } => ops::binary_scalar(*b, &get(op.inputs[0])?, *value),
        OpKind::Reduce { op: r, dim } => ops::reduce(*r, &get(op.inputs[0])?, *dim)?,
        OpKind::Broadcast { dim, .. } => {
            // The broadcast target extent is the *restricted* extent.
            let d = smg.value_axes[op.output.0][*dim];
            let full = smg.extent(d);
            let ext = restrict
                .iter()
                .find(|&&(rd, _)| rd == d)
                .map(|&(_, (s, t))| (t - s).min(full))
                .unwrap_or(full);
            ops::broadcast_to(&get(op.inputs[0])?, *dim, ext)?
        }
        OpKind::LayoutBarrier => {
            return Err(SfError::Codegen("layout barrier inside a kernel".into()))
        }
    };
    Ok(out)
}

/// Evaluates the partial result of a sliced reduction on one tile.
///
/// Mean reductions accumulate raw sums (finalized at loop end).
fn eval_sliced_partial(
    graph: &Graph,
    smg: &Smg,
    op_idx: usize,
    dim: DimId,
    _restrict: &Restrict,
    get: &dyn Fn(ValueId) -> Result<Tensor>,
) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    match &op.kind {
        OpKind::Gemm { transpose_b } => Ok(ops::matmul(
            &get(op.inputs[0])?,
            &get(op.inputs[1])?,
            *transpose_b,
        )?),
        OpKind::Reduce { op: r, dim: axis } => {
            let input = get(op.inputs[0])?;
            // Sanity: the reduce axis must be the sliced dimension.
            debug_assert_eq!(smg.value_axes[op.inputs[0].0][*axis], dim);
            let kind = if *r == ReduceOp::Mean {
                ReduceOp::Sum
            } else {
                *r
            };
            Ok(ops::reduce(kind, &input, *axis)?)
        }
        other => Err(SfError::Codegen(format!(
            "op {} cannot be a sliced reduction",
            other.name()
        ))),
    }
}

/// Combines an (updated) accumulator with a tile partial.
fn combine(graph: &Graph, op_idx: usize, acc: &Tensor, partial: &Tensor) -> Result<Tensor> {
    let op = &graph.ops()[op_idx];
    let b = match &op.kind {
        OpKind::Reduce {
            op: ReduceOp::Max, ..
        } => BinaryOp::Max,
        _ => BinaryOp::Add,
    };
    Ok(ops::binary(b, acc, partial)?)
}

/// Applies the UTA update function: multiplies the old accumulator by
/// `Π g(dep_old, dep_new)`.
fn apply_update(
    graph: &Graph,
    old_acc: &Tensor,
    factors: &[crate::slicer::UpdateFactor],
    snapshot: &HashMap<ValueId, Tensor>,
    current: &HashMap<ValueId, Tensor>,
) -> Result<Tensor> {
    let mut result = old_acc.clone();
    for f in factors {
        let dep_out = graph.ops()[f.dep.0].output;
        let old = snapshot
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing old dependency value".into()))?;
        let new = current
            .get(&dep_out)
            .ok_or_else(|| SfError::Codegen("missing new dependency value".into()))?;
        let g = match f.form {
            FactorForm::Recip => ops::binary(BinaryOp::Div, old, new)?,
            FactorForm::ExpNeg => ops::unary(UnaryOp::Exp, &ops::binary(BinaryOp::Sub, old, new)?),
            FactorForm::Value => ops::binary(BinaryOp::Div, new, old)?,
        };
        result = ops::binary(BinaryOp::Mul, &result, &g)?;
    }
    Ok(result)
}
