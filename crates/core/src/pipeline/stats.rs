//! Instrumentation events and compile-time statistics.
//!
//! Every pass of the Fig. 9 pipeline reports what it did through a
//! [`PassEvent`] delivered to a pluggable [`EventSink`] owned by the
//! [`CompileSession`](super::CompileSession). Events carry the pass
//! name, the segment/unit they ran on, their wall-clock duration and a
//! pass-specific payload (cache hit/miss, candidates generated,
//! evaluated, pruned, …). This replaces the scattered `Instant::now()`
//! bookkeeping the monolithic compiler used, while [`CompileStats`] is
//! still populated for backward compatibility (Table 4 reads it).

use std::sync::Mutex;

/// Identity of one pipeline pass (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassId {
    /// Splitting the graph into subprograms at layout barriers.
    Segment,
    /// Splitting a segment into fusion groups under the policy.
    Group,
    /// Space-Mapping Graph construction (§4.1).
    SmgBuild,
    /// Spatial-slicer analysis: `SS.getDims + SS.slice` (§4.2).
    SpatialSlice,
    /// Temporal-slicer analysis: `TS.getPriorDim + TS.slice` (§4.3).
    TemporalSlice,
    /// Configuration enumeration under resource constraints (`enumCfg`,
    /// Alg. 1).
    EnumCfg,
    /// SMG partitioning fallback (Alg. 2 + §5.3).
    Partition,
    /// Block-size auto-tuning (§6.5).
    Tune,
    /// Schedule-cache probe (repetitive subprograms compile once, §5).
    CacheLookup,
    /// Kernel assembly and output resolution.
    Emit,
    /// Static verification of the compiled kernels (SMG invariants,
    /// slicing legality, resource budgets, barrier/race analysis).
    Verify,
    /// One differential-fuzzing seed: generate, compile under every
    /// policy, execute at every thread count, diff against the
    /// reference (the `sf-fuzz` oracle reports through the same sink
    /// the compiler passes use).
    Fuzz,
    /// A unit fell down the degradation ladder (or recovered in place
    /// after a corrupt cache entry); see [`crate::resilience::ladder`].
    Degrade,
    /// One fault-injection plan run by `sfc faultsim` / the `--faults`
    /// fuzz mode.
    FaultSim,
}

impl PassId {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PassId::Segment => "segment",
            PassId::Group => "group",
            PassId::SmgBuild => "smg-build",
            PassId::SpatialSlice => "spatial-slice",
            PassId::TemporalSlice => "temporal-slice",
            PassId::EnumCfg => "enum-cfg",
            PassId::Partition => "partition",
            PassId::Tune => "tune",
            PassId::CacheLookup => "cache-lookup",
            PassId::Emit => "emit",
            PassId::Verify => "verify",
            PassId::Fuzz => "fuzz",
            PassId::Degrade => "degrade",
            PassId::FaultSim => "faultsim",
        }
    }

    /// All passes in pipeline order.
    pub fn all() -> [PassId; 14] {
        [
            PassId::Segment,
            PassId::Group,
            PassId::CacheLookup,
            PassId::SmgBuild,
            PassId::SpatialSlice,
            PassId::TemporalSlice,
            PassId::EnumCfg,
            PassId::Partition,
            PassId::Tune,
            PassId::Emit,
            PassId::Verify,
            PassId::Degrade,
            PassId::Fuzz,
            PassId::FaultSim,
        ]
    }
}

/// Pass-specific payload of a [`PassEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventDetail {
    /// No payload beyond the duration.
    None,
    /// The graph split into this many segments.
    Segments {
        /// Segment count.
        count: usize,
    },
    /// A segment split into this many fusion groups.
    Groups {
        /// Group count.
        count: usize,
    },
    /// A schedule-cache probe.
    Cache {
        /// Whether the probe hit.
        hit: bool,
        /// The shape component of the cache key.
        key: String,
    },
    /// Configuration enumeration produced this many candidates.
    Candidates {
        /// Feasible configurations generated.
        generated: usize,
    },
    /// Auto-tuning outcome over one candidate set.
    Tune {
        /// Candidates fully evaluated.
        evaluated: usize,
        /// Candidates abandoned by the early-quit rule.
        pruned: usize,
        /// Estimated time of the winner, µs.
        best_us: f64,
    },
    /// A partitioning round split a group into two fragments.
    Partition {
        /// Operator count of the leading fragment.
        cut: usize,
    },
    /// Verifier outcome over one kernel set.
    Verify {
        /// Diagnostics at [`Severity::Error`](crate::verify::Severity).
        errors: usize,
        /// Diagnostics at [`Severity::Warning`](crate::verify::Severity).
        warnings: usize,
    },
    /// Differential-fuzzing outcome over one generated seed.
    Fuzz {
        /// The generator seed.
        seed: u64,
        /// Operator count of the generated graph.
        ops: usize,
        /// Oracle failures recorded for this seed.
        failures: usize,
    },
    /// A unit degraded (or recovered in place): one
    /// [`DegradationStep`](crate::resilience::DegradationStep).
    Degrade {
        /// Ladder rung the unit landed on.
        rung: &'static str,
        /// The error that forced the step.
        reason: String,
    },
    /// One fault-injection plan's outcome.
    FaultSim {
        /// Graph seed the plan ran against.
        seed: u64,
        /// Fault-plan seed.
        plan_seed: u64,
        /// Faults that actually fired.
        fired: usize,
        /// Degradation steps recorded across compile + execute.
        degraded: usize,
        /// Hard failures (wrong output, abort, unrecovered error).
        failures: usize,
    },
}

/// One structured instrumentation record.
#[derive(Debug, Clone, PartialEq)]
pub struct PassEvent {
    /// Which pass produced the event.
    pub pass: PassId,
    /// Segment index the pass ran on (`0` for whole-graph passes).
    pub segment: usize,
    /// Name of the (sub)graph the pass ran on.
    pub unit: String,
    /// Wall-clock duration, µs.
    pub duration_us: f64,
    /// Pass-specific payload.
    pub detail: EventDetail,
}

/// Receives instrumentation events. Implementations must be cheap and
/// thread-safe: events arrive concurrently from segment workers.
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: PassEvent);
}

/// Discards every event (the default sink).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: PassEvent) {}
}

/// Buffers events for later inspection (powers `sfc --timings` and the
/// instrumentation tests).
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<PassEvent>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<PassEvent> {
        self.lock().clone()
    }

    /// Drains and returns all recorded events.
    pub fn take(&self) -> Vec<PassEvent> {
        std::mem::take(&mut *self.lock())
    }

    // The buffer stays usable even if a panicking pass (now caught at
    // the isolation boundary) poisoned the mutex mid-record.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<PassEvent>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl EventSink for CollectingSink {
    fn record(&self, event: PassEvent) {
        self.lock().push(event);
    }
}

/// Renders an aggregated per-pass timing table from collected events
/// (the `--timings` report).
pub fn render_timings(events: &[PassEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>12}   notes",
        "pass", "events", "total"
    );
    let mut grand = 0.0f64;
    for pass in PassId::all() {
        let of_pass: Vec<&PassEvent> = events.iter().filter(|e| e.pass == pass).collect();
        if of_pass.is_empty() {
            continue;
        }
        let total_us: f64 = of_pass.iter().map(|e| e.duration_us).sum();
        grand += total_us;
        let mut notes = String::new();
        match pass {
            PassId::Tune => {
                let (mut ev, mut pr) = (0usize, 0usize);
                for e in &of_pass {
                    if let EventDetail::Tune {
                        evaluated, pruned, ..
                    } = e.detail
                    {
                        ev += evaluated;
                        pr += pruned;
                    }
                }
                let _ = write!(notes, "evaluated {ev}, pruned {pr}");
            }
            PassId::EnumCfg => {
                let gen: usize = of_pass
                    .iter()
                    .map(|e| match e.detail {
                        EventDetail::Candidates { generated } => generated,
                        _ => 0,
                    })
                    .sum();
                let _ = write!(notes, "{gen} candidate(s)");
            }
            PassId::Verify => {
                let (mut er, mut wa) = (0usize, 0usize);
                for e in &of_pass {
                    if let EventDetail::Verify { errors, warnings } = e.detail {
                        er += errors;
                        wa += warnings;
                    }
                }
                let _ = write!(notes, "{er} error(s), {wa} warning(s)");
            }
            PassId::Fuzz => {
                let (mut seeds, mut fails) = (0usize, 0usize);
                for e in &of_pass {
                    if let EventDetail::Fuzz { failures, .. } = e.detail {
                        seeds += 1;
                        fails += failures;
                    }
                }
                let _ = write!(notes, "{seeds} seed(s), {fails} failure(s)");
            }
            PassId::Degrade => {
                let unfused = of_pass
                    .iter()
                    .filter(|e| {
                        matches!(
                            e.detail,
                            EventDetail::Degrade {
                                rung: "unfused",
                                ..
                            }
                        )
                    })
                    .count();
                let _ = write!(notes, "{} step(s), {} to unfused", of_pass.len(), unfused);
            }
            PassId::FaultSim => {
                let (mut fired, mut deg, mut fails) = (0usize, 0usize, 0usize);
                for e in &of_pass {
                    if let EventDetail::FaultSim {
                        fired: f,
                        degraded,
                        failures,
                        ..
                    } = e.detail
                    {
                        fired += f;
                        deg += degraded;
                        fails += failures;
                    }
                }
                let _ = write!(
                    notes,
                    "{} plan(s), {fired} fired, {deg} degraded, {fails} failure(s)",
                    of_pass.len()
                );
            }
            _ => {}
        }
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>9.2} µs   {}",
            pass.name(),
            of_pass.len(),
            total_us,
            notes
        );
    }
    let cache_probes: Vec<&PassEvent> = events
        .iter()
        .filter(|e| matches!(e.detail, EventDetail::Cache { .. }))
        .collect();
    if !cache_probes.is_empty() {
        let hits = cache_probes
            .iter()
            .filter(|e| matches!(e.detail, EventDetail::Cache { hit: true, .. }))
            .count();
        let _ = writeln!(
            out,
            "schedule cache: {} probe(s), {} hit(s)",
            cache_probes.len(),
            hits
        );
    }
    let _ = writeln!(out, "instrumented total: {grand:.2} µs");
    out
}

/// Timing and search-space statistics of one compilation.
///
/// Populated from the same measurements that feed the event sink, so
/// pre-pipeline consumers (the Table 4 binary, the ablation sweeps)
/// keep working unchanged.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Time in spatial-slicer analysis (`SS.getDims + SS.slice`), µs.
    pub spatial_us: f64,
    /// Time in temporal-slicer analysis (`TS.getPriorDim + TS.slice`), µs.
    pub temporal_us: f64,
    /// Time enumerating and checking configurations (`enumCfg`), µs.
    pub enum_us: f64,
    /// Time evaluating candidates in the tuner, µs.
    pub tune_us: f64,
    /// Wall-clock total, µs.
    pub total_us: f64,
    /// Configurations generated.
    pub configs: usize,
    /// Configurations fully evaluated by the tuner.
    pub evaluated: usize,
    /// Configurations abandoned by the early-quit rule.
    pub pruned: usize,
    /// Subprograms served from the schedule cache.
    pub cache_hits: usize,
    /// Pattern signatures of fused kernels containing ≥ 2 All-to-One
    /// mappings (the paper's §6.6 census unit).
    pub fusion_patterns: Vec<String>,
    /// Units that fell down the degradation ladder (or recovered in
    /// place), in recording order.
    pub degradations: Vec<crate::resilience::DegradationStep>,
    /// Kernels whose disjoint-write proof failed, with the prover's
    /// reason: they execute on the serial path instead of the lock-free
    /// pool (see [`crate::verify::races::DisjointProof`]).
    pub lockfree_fallbacks: Vec<(String, String)>,
}

impl CompileStats {
    /// Accumulates another unit's statistics into `self` (everything
    /// except `total_us`, which is wall-clock and set by the session).
    pub(crate) fn absorb(&mut self, other: &CompileStats) {
        self.spatial_us += other.spatial_us;
        self.temporal_us += other.temporal_us;
        self.enum_us += other.enum_us;
        self.tune_us += other.tune_us;
        self.configs += other.configs;
        self.evaluated += other.evaluated;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.fusion_patterns
            .extend(other.fusion_patterns.iter().cloned());
        self.degradations.extend(other.degradations.iter().cloned());
        self.lockfree_fallbacks
            .extend(other.lockfree_fallbacks.iter().cloned());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_buffers_events() {
        let sink = CollectingSink::new();
        sink.record(PassEvent {
            pass: PassId::Tune,
            segment: 0,
            unit: "g".into(),
            duration_us: 1.5,
            detail: EventDetail::Tune {
                evaluated: 3,
                pruned: 1,
                best_us: 9.0,
            },
        });
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.take().len(), 1);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn timings_render_aggregates_per_pass() {
        let sink = CollectingSink::new();
        for i in 0..3 {
            sink.record(PassEvent {
                pass: PassId::SmgBuild,
                segment: 0,
                unit: format!("u{i}"),
                duration_us: 2.0,
                detail: EventDetail::None,
            });
        }
        sink.record(PassEvent {
            pass: PassId::Tune,
            segment: 0,
            unit: "u0".into(),
            duration_us: 10.0,
            detail: EventDetail::Tune {
                evaluated: 5,
                pruned: 2,
                best_us: 1.0,
            },
        });
        let table = render_timings(&sink.events());
        assert!(table.contains("smg-build"), "{table}");
        assert!(table.contains("evaluated 5, pruned 2"), "{table}");
    }

    #[test]
    fn stats_absorb_sums_everything_but_total() {
        let mut a = CompileStats {
            tune_us: 1.0,
            configs: 2,
            ..Default::default()
        };
        let b = CompileStats {
            tune_us: 3.0,
            configs: 5,
            total_us: 99.0,
            fusion_patterns: vec!["p".into()],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.configs, 7);
        assert!((a.tune_us - 4.0).abs() < 1e-12);
        assert_eq!(a.total_us, 0.0);
        assert_eq!(a.fusion_patterns, vec!["p".to_string()]);
    }
}
