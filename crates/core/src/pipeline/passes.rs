//! The pipeline passes (paper Fig. 9).
//!
//! * [`SegmentPass`] — split the graph into subprograms at layout
//!   barriers.
//! * [`GroupPass`] — split each segment into fusion groups according to
//!   the [`FusionPolicy`](super::FusionPolicy).
//! * [`SchedulePass`] — schedule every group: SMG construction, spatial
//!   and temporal slicing, configuration enumeration, the partitioning
//!   fallback (Alg. 2 + §5.3) and block-size auto-tuning. Groups are
//!   independent, so they fan out across `std::thread::scope` workers;
//!   results land in per-unit slots and are merged in deterministic
//!   unit order. The shared [`ScheduleCache`](super::ScheduleCache)
//!   guarantees identical subprograms are tuned exactly once, even when
//!   two workers (or two concurrent compilations) reach them
//!   simultaneously.
//! * [`EmitPass`] — merge kernels and statistics in unit order and
//!   resolve program outputs through trailing layout barriers.

use super::cache::{CacheEntry, CacheKey, Claim, SavedConfig};
use super::stats::{CompileStats, EventDetail, PassEvent, PassId};
use super::{CompileOptions, FusionPolicy, Pass, PassCtx, PipelineState, Unit};
use crate::codegen::{estimate_cost, KernelProgram};
use crate::error::{Result, SfError};
use crate::resilience::{panic_payload, DegradationStep, FaultKind, FaultStage, Rung};
use crate::sched::{
    assign_memory, partition, resource_aware_slicing, FusedSchedule, TemporalSchedule,
};
use crate::slicer::{eligible_spatial_dims, pick_temporal_dim, plan_temporal};
use crate::smg::{build_smg, Smg};
use crate::tune::tune_bounded;
use sf_gpu_sim::GpuArch;
use sf_ir::{analysis, segment, Graph, OpKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Splits the graph into subprograms at layout barriers.
pub struct SegmentPass;

impl Pass for SegmentPass {
    fn name(&self) -> &'static str {
        PassId::Segment.name()
    }

    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()> {
        let t = Instant::now();
        let has_barrier = state
            .graph
            .ops()
            .iter()
            .any(|o| matches!(o.kind, OpKind::LayoutBarrier));
        state.segments = if has_barrier {
            segment::segment(&state.graph)?
        } else {
            vec![state.graph.clone()]
        };
        ctx.emit(PassEvent {
            pass: PassId::Segment,
            segment: 0,
            unit: state.graph.name().to_string(),
            duration_us: t.elapsed().as_secs_f64() * 1e6,
            detail: EventDetail::Segments {
                count: state.segments.len(),
            },
        });
        Ok(())
    }
}

/// Splits each segment into fusion groups according to the policy.
pub struct GroupPass;

impl Pass for GroupPass {
    fn name(&self) -> &'static str {
        PassId::Group.name()
    }

    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()> {
        let mut index = 0;
        for (si, seg) in state.segments.iter().enumerate() {
            let t = Instant::now();
            let groups = split_into_groups(ctx.opts.policy, seg)?;
            ctx.emit(PassEvent {
                pass: PassId::Group,
                segment: si,
                unit: seg.name().to_string(),
                duration_us: t.elapsed().as_secs_f64() * 1e6,
                detail: EventDetail::Groups {
                    count: groups.len(),
                },
            });
            for graph in groups {
                state.units.push(Unit {
                    segment: si,
                    index,
                    graph,
                    kernels: Vec::new(),
                    stats: CompileStats::default(),
                });
                index += 1;
            }
        }
        Ok(())
    }
}

/// Schedules every fusion group, fanning independent groups out across
/// worker threads.
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()> {
        let workers = ctx.workers.min(state.units.len()).max(1);
        if workers == 1 {
            for unit in state.units.iter_mut() {
                Scheduler {
                    ctx,
                    segment: unit.segment,
                }
                .schedule_unit(unit)?;
            }
            return Ok(());
        }

        // Dynamic work queue over per-unit slots: each slot is locked by
        // exactly one worker, results stay in deterministic unit order.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut Unit>> = state.units.iter_mut().map(Mutex::new).collect();
        let failures: Mutex<Vec<(usize, SfError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else { break };
                    let mut unit = slot.lock().unwrap_or_else(PoisonError::into_inner);
                    let segment = unit.segment;
                    if let Err(e) = (Scheduler { ctx, segment }).schedule_unit(&mut unit) {
                        failures
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push((i, e));
                    }
                });
            }
        });
        // First failure in unit order, so errors are deterministic too.
        let mut failures = failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        failures.sort_by_key(|(i, _)| *i);
        match failures.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}

/// Merges scheduled kernels and statistics in unit order and resolves
/// program outputs.
pub struct EmitPass;

impl Pass for EmitPass {
    fn name(&self) -> &'static str {
        PassId::Emit.name()
    }

    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()> {
        let t = Instant::now();
        for unit in state.units.iter_mut() {
            state.stats.absorb(&unit.stats);
            state.kernels.append(&mut unit.kernels);
        }
        // Record every kernel the disjoint-write prover refused: the
        // engine will pin them to the serial path at execution time, and
        // `sfc compile` surfaces them next to the degradations.
        for kp in &state.kernels {
            if let crate::verify::DisjointProof::Unproven(reason) = &kp.disjoint {
                state
                    .stats
                    .lockfree_fallbacks
                    .push((kp.name.clone(), reason.clone()));
            }
        }
        // Resolve each output through any trailing layout barriers: the
        // kernels materialize the barrier's *source* value.
        state.outputs = state
            .graph
            .outputs()
            .iter()
            .map(|&v| {
                let shape = state.graph.shape(v).clone();
                let mut src = v;
                while let Some(op) = state.graph.producer(src) {
                    if matches!(op.kind, OpKind::LayoutBarrier) {
                        src = op.inputs[0];
                    } else {
                        break;
                    }
                }
                (state.graph.value(src).name.clone(), shape)
            })
            .collect();
        ctx.emit(PassEvent {
            pass: PassId::Emit,
            segment: 0,
            unit: state.graph.name().to_string(),
            duration_us: t.elapsed().as_secs_f64() * 1e6,
            detail: EventDetail::None,
        });
        Ok(())
    }
}

/// Final pass: static verification of the emitted kernels
/// ([`crate::verify`]). Gated by
/// [`CompileOptions::verify`](super::CompileOptions) — on by default in
/// debug builds — and fails the compilation with
/// [`SfError::Verify`] when any error-level diagnostic survives.
pub struct VerifyPass;

impl Pass for VerifyPass {
    fn name(&self) -> &'static str {
        PassId::Verify.name()
    }

    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()> {
        if !ctx.opts.verify {
            return Ok(());
        }
        let t = Instant::now();
        let diags = crate::verify::verify_program(
            &state.kernels,
            ctx.arch,
            &crate::verify::VerifyConfig::default(),
        );
        let (errors, warnings) = crate::verify::counts(&diags);
        ctx.emit(PassEvent {
            pass: PassId::Verify,
            segment: 0,
            unit: state.graph.name().to_string(),
            duration_us: t.elapsed().as_secs_f64() * 1e6,
            detail: EventDetail::Verify { errors, warnings },
        });
        if errors > 0 {
            let head: Vec<String> = diags
                .iter()
                .filter(|d| d.severity == crate::verify::Severity::Error)
                .take(3)
                .map(|d| d.to_string())
                .collect();
            return Err(SfError::Verify(format!(
                "{errors} error(s): {}",
                head.join("; ")
            )));
        }
        Ok(())
    }
}

/// Whether ops `[i, i+5)` form the canonical softmax chain
/// `max → sub → exp → sum → div` over one dimension.
fn is_softmax_chain(g: &Graph, i: usize) -> bool {
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    let ops = g.ops();
    if i + 5 > ops.len() {
        return false;
    }
    let dim = match ops[i].kind {
        OpKind::Reduce {
            op: ReduceOp::Max,
            dim,
        } => dim,
        _ => return false,
    };
    matches!(ops[i + 1].kind, OpKind::Binary(BinaryOp::Sub))
        && ops[i + 1].inputs[1] == ops[i].output
        && matches!(ops[i + 2].kind, OpKind::Unary(UnaryOp::Exp))
        && ops[i + 2].inputs[0] == ops[i + 1].output
        && matches!(ops[i + 3].kind, OpKind::Reduce { op: ReduceOp::Sum, dim: d } if d == dim)
        && ops[i + 3].inputs[0] == ops[i + 2].output
        && matches!(ops[i + 4].kind, OpKind::Binary(BinaryOp::Div))
        && ops[i + 4].inputs[0] == ops[i + 2].output
        && ops[i + 4].inputs[1] == ops[i + 3].output
}

/// Splits a segment into fusion groups according to the policy.
fn split_into_groups(policy: FusionPolicy, g: &Graph) -> Result<Vec<Graph>> {
    let n = g.ops().len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let boundaries: Vec<usize> = match policy {
        FusionPolicy::SpaceFusion | FusionPolicy::TileGraph => vec![0],
        FusionPolicy::Unfused => {
            // PyTorch-eager: one kernel per *framework op*. Softmax
            // is a single framework op (one fused CUDA kernel in
            // eager mode), so its five-primitive chain stays one
            // kernel; everything else launches separately.
            let mut b = Vec::new();
            let mut i = 0;
            while i < n {
                b.push(i);
                i += if is_softmax_chain(g, i) { 5 } else { 1 };
            }
            b
        }
        FusionPolicy::EpilogueOnly => {
            let mut b = vec![0];
            for (i, op) in g.ops().iter().enumerate().skip(1) {
                match op.kind {
                    // GEMMs and reductions start new kernels;
                    // element-wise ops ride along as epilogues.
                    OpKind::Gemm { .. } | OpKind::Reduce { .. } => b.push(i),
                    _ => {}
                }
            }
            b
        }
        FusionPolicy::MiOnly => {
            let mut b = vec![0];
            for (i, op) in g.ops().iter().enumerate().skip(1) {
                let is_ci = matches!(op.kind, OpKind::Gemm { .. });
                let prev_ci = matches!(g.ops()[i - 1].kind, OpKind::Gemm { .. });
                if is_ci || prev_ci {
                    b.push(i);
                }
            }
            b
        }
    };
    let mut groups = Vec::with_capacity(boundaries.len());
    for (bi, &start) in boundaries.iter().enumerate() {
        let end = boundaries.get(bi + 1).copied().unwrap_or(n);
        groups.push(partition::extract_ops(
            g,
            start,
            end,
            &format!("{}.g{}", g.name(), bi),
        )?);
    }
    Ok(groups)
}

/// Per-unit scheduling engine: the SMG → slice → (partition) → tune
/// pipeline of one fusion group, instrumented and cache-aware.
struct Scheduler<'c, 's> {
    ctx: &'c PassCtx<'s>,
    segment: usize,
}

impl Scheduler<'_, '_> {
    fn emit(&self, pass: PassId, unit: &str, duration_us: f64, detail: EventDetail) {
        self.ctx.emit(PassEvent {
            pass,
            segment: self.segment,
            unit: unit.to_string(),
            duration_us,
            detail,
        });
    }

    /// Schedules one fusion group into its unit slot, retrying down the
    /// degradation ladder when [`CompileOptions::resilient`] is on:
    /// current policy → forced Alg.-2 partitioning → per-op unfused.
    /// Every fall is recorded in the unit's stats and as a
    /// [`PassId::Degrade`] event; the error only propagates when the
    /// bottom rung fails twice (or resilience is off).
    fn schedule_unit(&self, unit: &mut Unit) -> Result<()> {
        let name = unit.graph.name().to_string();
        let mut rung = Rung::Primary;
        let mut bottom_retried = false;
        loop {
            match self.attempt(rung, &name, &unit.graph) {
                Ok((kernels, stats)) => {
                    unit.stats.absorb(&stats);
                    unit.kernels = kernels;
                    return Ok(());
                }
                Err(e) => {
                    if !self.ctx.opts.resilient {
                        return Err(e);
                    }
                    // Single-op unfused kernels are feasible by
                    // construction, so a bottom-rung failure is
                    // transient (a caught panic, an injected fault):
                    // one bounded retry absorbs it; a second failure
                    // is a real bug and escapes.
                    let (next, reason) = match rung.next() {
                        Some(next) => (next, e.to_string()),
                        None if !bottom_retried => {
                            bottom_retried = true;
                            (Rung::Unfused, format!("{e}; bottom rung retried"))
                        }
                        None => return Err(e),
                    };
                    unit.stats.degradations.push(DegradationStep {
                        unit: name.clone(),
                        rung: next,
                        reason: reason.clone(),
                    });
                    self.emit(
                        PassId::Degrade,
                        &name,
                        0.0,
                        EventDetail::Degrade {
                            rung: next.name(),
                            reason,
                        },
                    );
                    rung = next;
                }
            }
        }
    }

    /// Runs one rung of the ladder behind a panic-isolation boundary.
    /// Returns the kernels plus the statistics of this attempt only, so
    /// a failed attempt contributes nothing to the unit's totals.
    fn attempt(
        &self,
        rung: Rung,
        name: &str,
        g: &Graph,
    ) -> Result<(Vec<KernelProgram>, CompileStats)> {
        let opts = self.ctx.opts;
        isolate(name, || {
            let mut stats = CompileStats::default();
            let kernels = match rung {
                Rung::Primary => self.schedule_group(opts, g.clone(), &mut stats, false)?,
                Rung::Partitioned => self.schedule_partitioned(opts, g, &mut stats)?.0,
                Rung::Unfused => {
                    let mut out = Vec::new();
                    for piece in split_into_groups(FusionPolicy::Unfused, g)? {
                        out.extend(self.schedule_group(opts, piece, &mut stats, true)?);
                    }
                    out
                }
            };
            // Per-rung verification: a kernel set the verifier rejects
            // must fall to the next rung, not ship. (The VerifyPass
            // still checks the merged program at the end.)
            if opts.verify && opts.resilient {
                verify_kernels(&kernels, self.ctx.arch)?;
            }
            Ok((kernels, stats))
        })
    }

    /// Schedules a fusion group through the shared cache, partitioning
    /// recursively when slicing fails (Algorithm 2 + §5.3 candidates).
    /// `partitioned` records that this group is a fallback fragment of a
    /// failed fusion: fragments execute fine but do not count as
    /// *discovered* fusion patterns in the §6.6 census.
    fn schedule_group(
        &self,
        opts: &CompileOptions,
        g: Graph,
        stats: &mut CompileStats,
        partitioned: bool,
    ) -> Result<Vec<KernelProgram>> {
        // Schedule cache (repetitive subprograms compile once). A miss
        // claims the key: concurrent claimants of the same key block
        // until this thread publishes (or abandons) the entry.
        let key = CacheKey::new(&g, opts.policy, self.ctx.arch);
        // A cached entry that fails validation on rebuild (corruption,
        // shape drift) is evicted and recomputed: two attempts suffice
        // — hit-then-evict, then a guaranteed miss.
        for _attempt in 0..2 {
            let t = Instant::now();
            let claim = self.ctx.cache.claim(&key);
            self.emit(
                PassId::CacheLookup,
                g.name(),
                t.elapsed().as_secs_f64() * 1e6,
                EventDetail::Cache {
                    hit: matches!(claim, Claim::Hit(_)),
                    key: key.shape.clone(),
                },
            );
            match claim {
                Claim::Hit(entry) => {
                    stats.cache_hits += 1;
                    match self.rebuild_from_cache(opts, &g, &entry) {
                        Ok(kps) => {
                            if !partitioned {
                                census(stats, &kps);
                            }
                            return Ok(kps);
                        }
                        Err(e) if self.ctx.opts.resilient => {
                            // In-place recovery: evict the bad entry so
                            // the next claim recomputes it.
                            self.ctx.cache.invalidate(&key);
                            stats.degradations.push(DegradationStep {
                                unit: g.name().to_string(),
                                rung: Rung::Primary,
                                reason: format!("{e}; entry evicted and recomputed"),
                            });
                            self.emit(
                                PassId::Degrade,
                                g.name(),
                                0.0,
                                EventDetail::Degrade {
                                    rung: Rung::Primary.name(),
                                    reason: e.to_string(),
                                },
                            );
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                Claim::Miss(ticket) => {
                    let (kps, intended_fusion) = self.schedule_uncached(opts, &g, stats)?;
                    let mut entry = CacheEntry {
                        piece_lens: kps.iter().map(|k| k.graph.ops().len()).collect(),
                        configs: kps
                            .iter()
                            .map(|k| SavedConfig {
                                spatial: k.schedule.spatial.iter().map(|&(_, b)| b).collect(),
                                temporal: k.schedule.temporal.as_ref().map(|t| t.block),
                                split: k
                                    .schedule
                                    .temporal
                                    .as_ref()
                                    .and_then(|t| t.split.as_ref())
                                    .map(|s| s.partitions),
                            })
                            .collect(),
                    };
                    if let Some(inj) = self.ctx.faults {
                        if inj.fire(FaultStage::CachePublish, g.name())
                            == Some(FaultKind::PoisonCache)
                        {
                            // Publish a corrupted entry (the kernels
                            // returned from *this* compilation are
                            // good); the next hit on this key must
                            // detect the corruption and recover.
                            entry.piece_lens = vec![usize::MAX / 2];
                            entry.configs.clear();
                        }
                    }
                    ticket.fulfill(entry);
                    // §6.6 census: only *intended* fusions count as
                    // discovered patterns — fragments produced by the
                    // Algorithm-2 fallback are fusion failures, not
                    // discoveries.
                    if !partitioned && intended_fusion {
                        census(stats, &kps);
                    }
                    return Ok(kps);
                }
            }
        }
        // Both attempts hit corrupt entries (another thread kept
        // republishing bad data) — let the ladder take over.
        Err(SfError::Codegen(format!(
            "cache entry for '{}' unusable after eviction",
            g.name()
        )))
    }

    /// Schedules a group that missed the cache. Returns the kernels and
    /// whether they realize the *intended* fusion (false when the group
    /// fell back to partitioning).
    fn schedule_uncached(
        &self,
        opts: &CompileOptions,
        g: &Graph,
        stats: &mut CompileStats,
    ) -> Result<(Vec<KernelProgram>, bool)> {
        let mut opts = opts.clone();
        loop {
            match self.schedule_fused(&opts, g, stats) {
                Ok(kp) => return Ok((vec![kp], true)),
                Err(SfError::ResourceInfeasible(_))
                | Err(SfError::NoSpatialDim(_))
                | Err(SfError::SmgBuild(_)) => {
                    // Expert-pinned block sizes can be infeasible for
                    // shapes the expert never tuned (a fixed 16-row
                    // LayerNorm block at N = 32K). Hand-tuned kernels
                    // adapt their block count rather than refuse; model
                    // that by halving the pinned sizes, then falling
                    // back to full tuning.
                    if opts.slicing.fixed_spatial_block.is_some()
                        || opts.slicing.fixed_temporal_block.is_some()
                    {
                        let hs = opts.slicing.fixed_spatial_block.map(|b| (b / 2).max(1));
                        let ht = opts.slicing.fixed_temporal_block.map(|b| (b / 2).max(1));
                        if hs != opts.slicing.fixed_spatial_block
                            || ht != opts.slicing.fixed_temporal_block
                        {
                            opts.slicing.fixed_spatial_block = hs;
                            opts.slicing.fixed_temporal_block = ht;
                        } else {
                            opts.slicing.fixed_spatial_block = None;
                            opts.slicing.fixed_temporal_block = None;
                            opts.autotune = true;
                        }
                        continue;
                    }
                    return self.schedule_partitioned(&opts, g, stats);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The Algorithm-2 fallback: split the group and schedule both
    /// halves, then consider the §5.3 alternative cut.
    fn schedule_partitioned(
        &self,
        opts: &CompileOptions,
        g: &Graph,
        stats: &mut CompileStats,
    ) -> Result<(Vec<KernelProgram>, bool)> {
        let arch = self.ctx.arch;
        let slicing = opts.slicing.clone();
        let schedulable = |cand: &Graph| -> bool {
            build_smg(cand)
                .ok()
                .and_then(|smg| resource_aware_slicing(cand, &smg, arch, &slicing).ok())
                .is_some()
        };
        let t = Instant::now();
        let round = partition::partition_round(g, &schedulable);
        let cut = round.as_ref().map(|(gf, _)| gf.ops().len()).unwrap_or(0);
        self.emit(
            PassId::Partition,
            g.name(),
            t.elapsed().as_secs_f64() * 1e6,
            EventDetail::Partition { cut },
        );
        let (gf, gl) = round?;

        let mut primary = self.schedule_group(opts, gf, stats, true)?;
        primary.extend(self.schedule_group(opts, gl, stats, true)?);

        // §5.3: also consider moving the trailing non-A2O unit.
        if let Some(alt) = partition::alternative_cut(g, cut) {
            if let Ok((gf2, gl2)) = partition::split_graph(g, alt) {
                if schedulable(&gf2) {
                    let mut alt_stats = CompileStats::default();
                    if let (Ok(mut a), Ok(b)) = (
                        self.schedule_group(opts, gf2, &mut alt_stats, true),
                        self.schedule_group(opts, gl2, &mut alt_stats, true),
                    ) {
                        a.extend(b);
                        if self.sequence_us(&a, g.instances) + f64::EPSILON
                            < self.sequence_us(&primary, g.instances)
                        {
                            primary = a;
                        }
                    }
                }
            }
        }
        Ok((primary, false))
    }

    /// Total estimated time of a kernel sequence (for §5.3 comparison).
    fn sequence_us(&self, kps: &[KernelProgram], instances: usize) -> f64 {
        kps.iter()
            .map(|k| {
                self.ctx
                    .arch
                    .kernel_time_us(&estimate_cost(k, instances as u64))
            })
            .sum()
    }

    /// Schedules one graph as a single fused kernel (Alg. 1 + tuning).
    fn schedule_fused(
        &self,
        opts: &CompileOptions,
        g: &Graph,
        stats: &mut CompileStats,
    ) -> Result<KernelProgram> {
        let name = g.name();
        if let Some(inj) = self.ctx.faults {
            match inj.fire(FaultStage::Schedule, name) {
                Some(FaultKind::Panic) => panic!("injected panic at schedule of '{name}'"),
                Some(FaultKind::ForceInfeasible) => {
                    return Err(SfError::ResourceInfeasible(format!(
                        "injected resource infeasibility at schedule of '{name}'"
                    )));
                }
                Some(FaultKind::ExpireDeadline) => {
                    return Err(SfError::Timeout(format!(
                        "injected deadline expiry at schedule of '{name}'"
                    )));
                }
                _ => {}
            }
        }
        let t = Instant::now();
        let smg = build_smg(g);
        self.emit(
            PassId::SmgBuild,
            name,
            t.elapsed().as_secs_f64() * 1e6,
            EventDetail::None,
        );
        let smg = smg?;

        // Phase timings (Table 4 instrumentation).
        let t = Instant::now();
        let spatial_dims = eligible_spatial_dims(g, &smg);
        let spatial_us = t.elapsed().as_secs_f64() * 1e6;
        stats.spatial_us += spatial_us;
        self.emit(PassId::SpatialSlice, name, spatial_us, EventDetail::None);

        let t = Instant::now();
        if opts.slicing.enable_temporal {
            if let Some(d) = pick_temporal_dim(g, &smg, &spatial_dims) {
                let _ = plan_temporal(g, &smg, d);
            }
        }
        let temporal_us = t.elapsed().as_secs_f64() * 1e6;
        stats.temporal_us += temporal_us;
        self.emit(PassId::TemporalSlice, name, temporal_us, EventDetail::None);

        let t = Instant::now();
        let mut slicing = opts.slicing.clone();
        slicing.deadline = slicing.deadline.earliest(self.ctx.deadline);
        let schedules = resource_aware_slicing(g, &smg, self.ctx.arch, &slicing);
        let enum_us = t.elapsed().as_secs_f64() * 1e6;
        stats.enum_us += enum_us;
        self.emit(
            PassId::EnumCfg,
            name,
            enum_us,
            EventDetail::Candidates {
                generated: schedules.as_ref().map(|s| s.len()).unwrap_or(0),
            },
        );
        let schedules = schedules?;
        stats.configs += schedules.len();

        let candidates: Vec<KernelProgram> = schedules
            .into_iter()
            .map(|s| KernelProgram::new(g.name().to_string(), g.clone(), s))
            .collect();

        let t = Instant::now();
        let pick = if opts.autotune {
            let r = tune_bounded(
                &candidates,
                self.ctx.arch,
                g.instances as u64,
                opts.alpha,
                self.ctx.deadline,
            )
            .ok_or_else(|| {
                SfError::ResourceInfeasible(format!("no schedule candidates to tune for '{name}'"))
            })?;
            stats.evaluated += r.evaluated;
            stats.pruned += r.pruned;
            let tune_us = t.elapsed().as_secs_f64() * 1e6;
            stats.tune_us += tune_us;
            self.emit(
                PassId::Tune,
                name,
                tune_us,
                EventDetail::Tune {
                    evaluated: r.evaluated,
                    pruned: r.pruned,
                    best_us: r.best_us,
                },
            );
            r.best
        } else {
            let last = candidates.len().checked_sub(1).ok_or_else(|| {
                SfError::ResourceInfeasible(format!("no feasible schedule candidates for '{name}'"))
            })?;
            let tune_us = t.elapsed().as_secs_f64() * 1e6;
            stats.tune_us += tune_us;
            self.emit(
                PassId::Tune,
                name,
                tune_us,
                EventDetail::Tune {
                    evaluated: 0,
                    pruned: 0,
                    best_us: f64::NAN,
                },
            );
            last
        };

        candidates
            .into_iter()
            .nth(pick)
            .ok_or_else(|| SfError::Codegen(format!("tuner pick out of range for '{name}'")))
    }

    /// Rebuilds kernels for a graph whose shape was already scheduled.
    /// Validates the entry's piece layout first so a corrupted entry is
    /// rejected (and recoverable) instead of panicking downstream.
    fn rebuild_from_cache(
        &self,
        opts: &CompileOptions,
        g: &Graph,
        entry: &CacheEntry,
    ) -> Result<Vec<KernelProgram>> {
        let total = entry
            .piece_lens
            .iter()
            .copied()
            .fold(0usize, usize::saturating_add);
        if total != g.ops().len()
            || entry.piece_lens.len() != entry.configs.len()
            || entry.piece_lens.contains(&0)
        {
            return Err(SfError::Codegen(format!(
                "cache entry corrupt for '{}': piece layout does not match graph",
                g.name()
            )));
        }
        let mut out = Vec::with_capacity(entry.piece_lens.len());
        let mut start = 0usize;
        for (len, cfg) in entry.piece_lens.iter().zip(&entry.configs) {
            let piece = partition::extract_ops(g, start, start + len, g.name())?;
            start += len;
            out.push(self.schedule_from_config(opts, piece, cfg)?);
        }
        Ok(out)
    }

    /// Builds a kernel directly from a saved block configuration.
    fn schedule_from_config(
        &self,
        opts: &CompileOptions,
        g: Graph,
        cfg: &SavedConfig,
    ) -> Result<KernelProgram> {
        let smg = build_smg(&g)?;
        let dims = eligible_spatial_dims(&g, &smg);
        if dims.len() != cfg.spatial.len() {
            return Err(SfError::Codegen("cache shape drift".into()));
        }
        let spatial: Vec<_> = dims.into_iter().zip(cfg.spatial.iter().copied()).collect();
        let temporal = match cfg.temporal {
            Some(block) => {
                let plan = self.cached_plan(opts, &g, &smg, &spatial)?;
                // A saved split factor is rebuilt from the plan: the
                // combine algebra is a pure function of (graph, plan),
                // so only the partition count needs caching. A plan
                // that no longer derives a combine means shape drift.
                let split = match cfg.split {
                    Some(partitions) => Some(crate::sched::SplitK {
                        partitions,
                        combine: crate::slicer::derive_combine(&g, &plan).ok_or_else(|| {
                            SfError::Codegen("cached split-K combine not reproducible".into())
                        })?,
                    }),
                    None => None,
                };
                Some(TemporalSchedule { plan, block, split })
            }
            None => None,
        };
        let mem = assign_memory(
            &g,
            &smg,
            &spatial,
            temporal.as_ref(),
            self.ctx.arch.smem_per_block / 4,
        );
        let schedule = FusedSchedule {
            smg,
            spatial,
            temporal,
            mem,
        };
        Ok(KernelProgram::new(g.name().to_string(), g, schedule))
    }

    fn cached_plan(
        &self,
        opts: &CompileOptions,
        g: &Graph,
        smg: &Smg,
        spatial: &[(crate::smg::DimId, usize)],
    ) -> Result<crate::slicer::TemporalPlan> {
        let spatial_dims: Vec<_> = spatial.iter().map(|&(d, _)| d).collect();
        let mut excluded = spatial_dims.clone();
        while let Some(dim) = pick_temporal_dim(g, smg, &excluded) {
            match plan_temporal(g, smg, dim) {
                Ok(plan) => {
                    let needs_uta = plan
                        .sliced
                        .iter()
                        .any(|s| matches!(s.agg, crate::slicer::AggKind::Uta(_)));
                    if needs_uta && !opts.slicing.enable_uta {
                        excluded.push(dim);
                        continue;
                    }
                    return Ok(plan);
                }
                Err(_) => excluded.push(dim),
            }
        }
        Err(SfError::Codegen(
            "cached temporal plan not reproducible".into(),
        ))
    }
}

/// Panic-isolation boundary for one scheduling attempt: a panic inside
/// `f` (a buggy pass, an injected fault) becomes [`SfError::Internal`]
/// naming the site. Cache tickets claimed inside `f` are abandoned
/// during the unwind, so waiters on the same key are never wedged.
fn isolate<T>(site: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(SfError::Internal {
            pass: format!("schedule:{site}"),
            payload: panic_payload(payload),
        })
    })
}

/// Statically verifies one unit's kernels so a verify failure can feed
/// the degradation ladder (the final [`VerifyPass`] still checks the
/// merged program).
fn verify_kernels(kernels: &[KernelProgram], arch: &GpuArch) -> Result<()> {
    let diags =
        crate::verify::verify_program(kernels, arch, &crate::verify::VerifyConfig::default());
    let (errors, _) = crate::verify::counts(&diags);
    if errors > 0 {
        let head: Vec<String> = diags
            .iter()
            .filter(|d| d.severity == crate::verify::Severity::Error)
            .take(3)
            .map(|d| d.to_string())
            .collect();
        return Err(SfError::Verify(format!(
            "{errors} error(s): {}",
            head.join("; ")
        )));
    }
    Ok(())
}

/// Adds the §6.6 census patterns of `kps` to `stats`: fused kernels
/// containing ≥ 2 All-to-One mappings.
fn census(stats: &mut CompileStats, kps: &[KernelProgram]) {
    for k in kps {
        if k.is_fused() && k.schedule.smg.a2o_count() >= 2 {
            stats
                .fusion_patterns
                .push(analysis::pattern_signature(&k.graph));
        }
    }
}
