//! The end-to-end compilation pipeline (paper Fig. 9) as explicit passes.
//!
//! `Graph → segments → fusion groups → SMG → resource-aware slicing →
//! (partitioning) → auto-tuning → kernel programs`, structured as named
//! [`Pass`] units running over a shared [`CompileSession`]:
//!
//! * [`passes`] — the pass implementations: segmentation, policy
//!   grouping, per-group scheduling (SMG build, slicing, enumeration,
//!   partitioning, tuning) and kernel emission.
//! * [`cache`] — the thread-safe schedule cache, keyed by `(shape key,
//!   fusion policy, architecture)` and shared across compilations and
//!   threads. Repetitive subprograms are compiled once (paper §5).
//! * [`stats`] — structured instrumentation events ([`PassEvent`])
//!   delivered to a pluggable [`EventSink`], plus the aggregate
//!   [`CompileStats`] retained for pre-pipeline consumers.
//!
//! Independent fusion groups are compiled concurrently on
//! `std::thread::scope` workers (see [`CompileSession::with_workers`]);
//! results are merged in deterministic group order, so parallel and
//! sequential compilation yield identical programs.
//!
//! The [`FusionPolicy`] knob restricts the pipeline's capabilities to
//! model the baseline systems of the evaluation (Table 2).

pub mod cache;
pub mod passes;
pub mod stats;

pub use cache::{CacheEntry, CacheKey, Claim, ClaimMap, ClaimTicket, SavedConfig, ScheduleCache};
pub use stats::{
    render_timings, CollectingSink, CompileStats, EventDetail, EventSink, NullSink, PassEvent,
    PassId,
};

use crate::codegen::{estimate_cost, trace_kernel, ExecEngine, ExecOptions, KernelProgram};
use crate::error::{Result, SfError};
use crate::resilience::{panic_payload, Deadline, DegradationReport, FaultInjector, Rung};
use crate::sched::SlicingOptions;
use sf_gpu_sim::{Arch, GpuArch, KernelCost, Profiler, ProgramStats};
use sf_ir::{Graph, ValueKind};
use sf_tensor::{ScratchPool, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// What the compiler is allowed to fuse — SpaceFusion itself plus the
/// restricted capability sets of the baseline systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionPolicy {
    /// Full SpaceFusion: SMG slicing, UTA, partitioning, tuning.
    SpaceFusion,
    /// One kernel per operator (PyTorch-eager / cuBLAS style).
    Unfused,
    /// GEMMs absorb their element-wise epilogues (cuBLASLt style).
    EpilogueOnly,
    /// Only memory-intensive operators fuse; GEMMs stay standalone
    /// (AStitch / BladeDISC style).
    MiOnly,
    /// Tile-graph fusion: full fusion scope but no intra-operator
    /// dependency transformation — UTA disabled (Welder / NNFusion
    /// style). Oversized fusions fall back to partitioning.
    TileGraph,
}

impl FusionPolicy {
    /// All policies, in presentation order.
    pub fn all() -> [FusionPolicy; 5] {
        [
            FusionPolicy::SpaceFusion,
            FusionPolicy::Unfused,
            FusionPolicy::EpilogueOnly,
            FusionPolicy::MiOnly,
            FusionPolicy::TileGraph,
        ]
    }

    /// Stable lowercase name, shared by the `sfc` flag vocabulary, the
    /// serve protocol, and the schedule-cache snapshot format.
    pub fn name(self) -> &'static str {
        match self {
            FusionPolicy::SpaceFusion => "spacefusion",
            FusionPolicy::Unfused => "unfused",
            FusionPolicy::EpilogueOnly => "epilogue",
            FusionPolicy::MiOnly => "mi-only",
            FusionPolicy::TileGraph => "tile-graph",
        }
    }

    /// Inverse of [`name`](FusionPolicy::name).
    pub fn parse(s: &str) -> Option<FusionPolicy> {
        FusionPolicy::all().into_iter().find(|p| p.name() == s)
    }
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Fusion capability set.
    pub policy: FusionPolicy,
    /// Slicing options (temporal/UTA toggles, fixed blocks for
    /// ablations).
    pub slicing: SlicingOptions,
    /// Whether to auto-tune block sizes. When disabled, the last
    /// (most-sliced) feasible candidate is used — the paper's
    /// expert-fixed-configuration ablation.
    pub autotune: bool,
    /// Early-quit proportion α (paper §6.5 uses 0.25).
    pub alpha: f64,
    /// Whether to run the static verifier ([`crate::verify`]) over the
    /// compiled kernels as a final pass. Defaults to on in debug builds
    /// (every test compile is checked) and off in release builds.
    pub verify: bool,
    /// Optional wall-clock budget for schedule exploration, in
    /// milliseconds. When the budget runs out, enumeration and tuning
    /// return best-so-far instead of searching further; expiry never
    /// fails a compilation on its own. `None` (the default) explores
    /// unbounded.
    pub schedule_budget_ms: Option<u64>,
    /// Whether a unit that fails to schedule or verify retries down the
    /// degradation ladder (current policy → Alg.-2 partitioned →
    /// per-op unfused; see [`crate::resilience::ladder`]) instead of
    /// failing the compilation. Each fall is recorded in
    /// [`CompileStats::degradations`] and as a
    /// [`PassId::Degrade`] event. On by default.
    pub resilient: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            policy: FusionPolicy::SpaceFusion,
            slicing: SlicingOptions::default(),
            autotune: true,
            alpha: 0.25,
            verify: cfg!(debug_assertions),
            schedule_budget_ms: None,
            resilient: true,
        }
    }
}

/// A compiled program: an ordered list of kernels over a shared tensor
/// environment.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Kernels in execution order.
    pub kernels: Vec<KernelProgram>,
    /// Dependency-free instance multiplier (batch × heads).
    pub instances: usize,
    /// Program outputs: the environment name that holds each value
    /// (layout barriers are resolved to their source) and the declared
    /// output shape it is viewed under.
    pub outputs: Vec<(String, sf_tensor::Shape)>,
    /// Architecture compiled for.
    pub arch: GpuArch,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// The execution engine every `execute*` call runs on (inherited
    /// from the compiling session; the process-shared engine by
    /// default), carrying the persistent worker pool and scratch
    /// arenas.
    engine: Arc<ExecEngine>,
}

/// Result of profiling a compiled program on the simulator.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Cache and DRAM counters.
    pub stats: ProgramStats,
    /// Per-kernel costs.
    pub kernels: Vec<KernelCost>,
    /// Simulated wall time, µs.
    pub time_us: f64,
}

impl CompiledProgram {
    /// Executes the program numerically over named bindings with
    /// default execution options.
    ///
    /// Returns the output tensors in the original graph's output order.
    pub fn execute(&self, bindings: &HashMap<String, Tensor>) -> Result<Vec<Tensor>> {
        self.execute_with(bindings, &ExecOptions::default())
    }

    /// Executes the program with explicit execution options (worker
    /// thread count for the spatial block loop).
    ///
    /// Results are bit-identical for every thread count.
    pub fn execute_with(
        &self,
        bindings: &HashMap<String, Tensor>,
        opts: &ExecOptions,
    ) -> Result<Vec<Tensor>> {
        let mut env = bindings.clone();
        for k in &self.kernels {
            self.engine.execute_kernel(k, &mut env, opts, None)?;
        }
        self.resolve_outputs(&env)
    }

    /// The execution engine this program runs on.
    pub fn engine(&self) -> &Arc<ExecEngine> {
        &self.engine
    }

    /// Executes the program over many independent binding sets — the
    /// batched throughput path — returning each item's outputs in
    /// input order.
    ///
    /// Items fan out over the engine's persistent worker pool, one item
    /// per worker at a time; within a worker an item's kernels run
    /// serially with the worker's pinned scratch arena (batch items
    /// already occupy the pool, so kernels must not re-enter it).
    /// Results are bit-identical to executing each binding set
    /// individually at any thread count. On failure, the error of the
    /// lowest-index failing item is returned, independent of worker
    /// scheduling.
    pub fn execute_many(
        &self,
        batches: &[HashMap<String, Tensor>],
        opts: &ExecOptions,
    ) -> Result<Vec<Vec<Tensor>>> {
        let workers = opts.effective_threads().min(batches.len()).max(1);
        if workers == 1 {
            // Single worker: run inline, still reusing the engine's
            // serial scratch arena via the per-kernel path.
            return batches.iter().map(|b| self.execute_with(b, opts)).collect();
        }
        let results: Vec<OnceLock<Result<Vec<Tensor>>>> =
            (0..batches.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let panicked = self
            .engine
            .run_batch(workers, &|pool: &mut ScratchPool| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= batches.len() {
                    return;
                }
                let mut env = batches[i].clone();
                let mut failed = None;
                for k in &self.kernels {
                    if let Err(e) =
                        crate::codegen::exec::execute_kernel_pooled(k, &mut env, pool, None)
                    {
                        failed = Some(e);
                        break;
                    }
                }
                let out = match failed {
                    Some(e) => Err(e),
                    None => self.resolve_outputs(&env),
                };
                // Each index is claimed exactly once, so the slot is empty.
                let _ = results[i].set(out);
            });
        if panicked {
            return Err(SfError::Internal {
                pass: "exec:batch".into(),
                payload: "worker panicked during batched execution".into(),
            });
        }
        let mut out = Vec::with_capacity(batches.len());
        for (i, slot) in results.into_iter().enumerate() {
            match slot.into_inner() {
                Some(r) => out.push(r?),
                None => {
                    return Err(SfError::Internal {
                        pass: "exec:batch".into(),
                        payload: format!("batch item {i} produced no result"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Executes the program with per-kernel fault isolation: a kernel
    /// that fails (panicking worker, injected fault, internal error) is
    /// re-run on the reference interpreter over the same environment —
    /// the always-correct unfused path — and the fall is recorded in
    /// the returned [`DegradationReport`]. A failed kernel leaves the
    /// environment untouched (outputs are only published on success),
    /// so the fallback sees exactly the inputs the kernel saw.
    pub fn execute_resilient(
        &self,
        bindings: &HashMap<String, Tensor>,
        opts: &ExecOptions,
        faults: Option<&FaultInjector>,
    ) -> Result<(Vec<Tensor>, DegradationReport)> {
        let mut env = bindings.clone();
        let mut report = DegradationReport::default();
        for k in &self.kernels {
            if let Err(e) = self.engine.execute_kernel(k, &mut env, opts, faults) {
                reference_kernel(k, &mut env)?;
                report.record(k.name.clone(), Rung::Unfused, e.to_string());
            }
        }
        Ok((self.resolve_outputs(&env)?, report))
    }

    fn resolve_outputs(&self, env: &HashMap<String, Tensor>) -> Result<Vec<Tensor>> {
        self.outputs
            .iter()
            .map(|(n, shape)| {
                let t = env
                    .get(n)
                    .ok_or_else(|| SfError::Codegen(format!("missing output '{n}'")))?;
                if t.shape() == shape {
                    Ok(t.clone())
                } else {
                    // The declared output sits behind a layout barrier.
                    Ok(t.reshape(shape.clone())?)
                }
            })
            .collect()
    }

    /// Profiles the program through the cache-simulating profiler.
    ///
    /// `replay_instances` caps how many batch instances are replayed in
    /// detail; counters are scaled up to the full instance count.
    pub fn profile(&self, replay_instances: usize) -> ProfileReport {
        let mut profiler = Profiler::new(&self.arch);
        // Allocate every distinct global value once, across all kernels.
        let mut bufs = HashMap::new();
        for k in &self.kernels {
            for v in k.graph.values() {
                let global = matches!(v.kind, ValueKind::Input | ValueKind::Weight)
                    || k.graph
                        .outputs()
                        .iter()
                        .any(|&o| k.graph.value(o).name == v.name);
                if global && !bufs.contains_key(&v.name) {
                    let bytes =
                        (v.shape.volume() * v.dtype.size_bytes()) as u64 * self.instances as u64;
                    bufs.insert(v.name.clone(), profiler.alloc(bytes));
                }
            }
        }
        let replay = replay_instances.clamp(1, self.instances);
        for k in &self.kernels {
            trace_kernel(k, &mut profiler, &bufs, replay, self.instances as u64);
        }
        let factor = self.instances as f64 / replay as f64;
        let scale = |x: u64| (x as f64 * factor) as u64;

        let mut stats = profiler.stats().clone();
        stats.l1_accesses = scale(stats.l1_accesses);
        stats.l1_misses = scale(stats.l1_misses);
        stats.l2_accesses = scale(stats.l2_accesses);
        stats.l2_misses = scale(stats.l2_misses);
        stats.dram_read_bytes = scale(stats.dram_read_bytes);
        stats.dram_write_bytes = scale(stats.dram_write_bytes);

        let kernels: Vec<KernelCost> = profiler
            .kernels()
            .iter()
            .map(|k| {
                let mut k = k.clone();
                k.flops = scale(k.flops);
                k.global_read_bytes = scale(k.global_read_bytes);
                k.global_write_bytes = scale(k.global_write_bytes);
                k.dram_read_bytes = scale(k.dram_read_bytes);
                k.dram_write_bytes = scale(k.dram_write_bytes);
                k.l2_bytes = scale(k.l2_bytes);
                k
            })
            .collect();
        let time_us = self.arch.program_time_us(&kernels);
        ProfileReport {
            stats,
            kernels,
            time_us,
        }
    }

    /// Analytic time estimate (no cache simulation), µs.
    pub fn estimate_us(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| {
                self.arch
                    .kernel_time_us(&estimate_cost(k, self.instances as u64))
            })
            .sum()
    }
}

/// Evaluates one kernel's subgraph on the reference interpreter,
/// publishing its outputs into the shared environment. This is the
/// executor-side bottom rung of the degradation ladder.
fn reference_kernel(k: &KernelProgram, env: &mut HashMap<String, Tensor>) -> Result<()> {
    let mut bindings = HashMap::new();
    for v in k.graph.values() {
        if !matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
            continue;
        }
        let t = env.get(&v.name).ok_or_else(|| {
            SfError::Codegen(format!("reference fallback: missing input '{}'", v.name))
        })?;
        let t = if t.shape() == &v.shape {
            t.clone()
        } else {
            t.reshape(v.shape.clone())?
        };
        bindings.insert(v.name.clone(), t);
    }
    let outs = k
        .graph
        .execute(&bindings)
        .map_err(|e| SfError::Codegen(format!("reference fallback failed: {e}")))?;
    for (&oid, t) in k.graph.outputs().iter().zip(outs) {
        env.insert(k.graph.value(oid).name.clone(), t);
    }
    Ok(())
}

/// One fusion group flowing through the pipeline: a contiguous slice of
/// a segment, scheduled independently of its peers.
#[derive(Debug)]
pub struct Unit {
    /// Index of the segment this group came from.
    pub segment: usize,
    /// Global unit order (defines deterministic result merging).
    pub index: usize,
    /// The group's subgraph.
    pub graph: Graph,
    /// Kernels the scheduler produced (filled by the schedule pass).
    pub kernels: Vec<KernelProgram>,
    /// Per-unit statistics, merged in unit order after scheduling.
    pub stats: CompileStats,
}

/// Mutable state threaded through the passes of one compilation.
#[derive(Debug)]
pub struct PipelineState {
    /// The input graph.
    pub graph: Graph,
    /// Layout-barrier segments of the input graph.
    pub segments: Vec<Graph>,
    /// Fusion groups, in deterministic (segment, group) order.
    pub units: Vec<Unit>,
    /// Merged kernels in execution order (filled by the emit pass).
    pub kernels: Vec<KernelProgram>,
    /// Resolved program outputs (filled by the emit pass).
    pub outputs: Vec<(String, sf_tensor::Shape)>,
    /// Merged statistics (filled by the emit pass).
    pub stats: CompileStats,
}

impl PipelineState {
    /// Fresh state for one compilation of `graph`.
    pub fn new(graph: Graph) -> Self {
        PipelineState {
            graph,
            segments: Vec::new(),
            units: Vec::new(),
            kernels: Vec::new(),
            outputs: Vec::new(),
            stats: CompileStats::default(),
        }
    }
}

/// Per-compilation view of the session handed to every pass.
pub struct PassCtx<'s> {
    /// Target configuration.
    pub arch: &'s GpuArch,
    /// Session compile options.
    pub opts: &'s CompileOptions,
    /// The shared schedule cache.
    pub cache: &'s ScheduleCache,
    /// Instrumentation sink.
    pub sink: &'s dyn EventSink,
    /// Worker-thread budget for the schedule pass.
    pub workers: usize,
    /// Schedule-exploration budget for this compilation (derived from
    /// [`CompileOptions::schedule_budget_ms`]).
    pub deadline: Deadline,
    /// Fault-injection hooks, `None` in normal operation.
    pub faults: Option<&'s FaultInjector>,
}

impl PassCtx<'_> {
    /// Records one instrumentation event.
    pub fn emit(&self, event: PassEvent) {
        self.sink.record(event);
    }

    /// Runs `f`, recording a timed event for `pass` with the detail
    /// computed from its output.
    pub fn timed<T>(
        &self,
        pass: PassId,
        segment: usize,
        unit: &str,
        f: impl FnOnce() -> T,
        detail: impl FnOnce(&T) -> EventDetail,
    ) -> T {
        let t = Instant::now();
        let out = f();
        self.emit(PassEvent {
            pass,
            segment,
            unit: unit.to_string(),
            duration_us: t.elapsed().as_secs_f64() * 1e6,
            detail: detail(&out),
        });
        out
    }
}

/// A named unit of the compilation pipeline.
pub trait Pass: Sync {
    /// Stable pass name (matches the [`PassId`] it reports under).
    fn name(&self) -> &'static str;
    /// Transforms the pipeline state, emitting events through `ctx`.
    fn run(&self, ctx: &PassCtx<'_>, state: &mut PipelineState) -> Result<()>;
}

/// Default worker budget: the machine's parallelism, capped — segment
/// counts are small, so more threads only add scheduling noise.
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// A long-lived compilation context: one target architecture, one option
/// set, a shared schedule cache and an instrumentation sink.
///
/// Sessions are cheap to share (`&CompileSession` is `Sync`): many
/// threads may call [`compile`](CompileSession::compile) concurrently
/// and observe one consistent cache — identical subprograms are tuned
/// exactly once per session, no matter which thread gets there first.
pub struct CompileSession {
    arch: GpuArch,
    opts: CompileOptions,
    cache: Arc<ScheduleCache>,
    sink: Arc<dyn EventSink>,
    workers: usize,
    faults: Option<Arc<FaultInjector>>,
    engine: Arc<ExecEngine>,
}

impl CompileSession {
    /// Creates a session for the given architecture.
    pub fn new(arch: Arch, opts: CompileOptions) -> Self {
        CompileSession::with_config(arch.config(), opts)
    }

    /// Creates a session for an explicit hardware configuration (e.g. a
    /// variant with a different per-kernel launch overhead).
    pub fn with_config(arch: GpuArch, opts: CompileOptions) -> Self {
        CompileSession {
            arch,
            opts,
            cache: Arc::new(ScheduleCache::new()),
            sink: Arc::new(NullSink),
            workers: default_workers(),
            faults: None,
            engine: ExecEngine::shared(),
        }
    }

    /// Shares an explicit execution engine: programs compiled by this
    /// session execute on its persistent worker pool and scratch
    /// arenas. Defaults to the process-wide [`ExecEngine::shared`]
    /// instance, so sessions already share one engine unless isolated
    /// on purpose (as the engine's own tests are).
    pub fn with_engine(mut self, engine: Arc<ExecEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the instrumentation sink.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Shares an existing schedule cache (e.g. one cache across several
    /// per-thread sessions for the same target).
    pub fn with_cache(mut self, cache: Arc<ScheduleCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the worker-thread budget for independent fusion groups.
    /// `1` forces fully sequential compilation.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Arms a deterministic fault-injection plan for this session's
    /// compilations (see [`crate::resilience::fault`]). Used by
    /// `sfc faultsim` and the resilience tests; normal operation leaves
    /// this unset.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Target configuration.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Session options.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// The shared schedule cache.
    pub fn cache(&self) -> &Arc<ScheduleCache> {
        &self.cache
    }

    /// The instrumentation sink.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// The execution engine compiled programs will run on.
    pub fn engine(&self) -> &Arc<ExecEngine> {
        &self.engine
    }

    /// Compiles a graph into a [`CompiledProgram`] by running the full
    /// pass pipeline.
    pub fn compile(&self, graph: &Graph) -> Result<CompiledProgram> {
        let t0 = Instant::now();
        let ctx = PassCtx {
            arch: &self.arch,
            opts: &self.opts,
            cache: &self.cache,
            sink: self.sink.as_ref(),
            workers: self.workers,
            deadline: Deadline::from_budget_ms(self.opts.schedule_budget_ms),
            faults: self.faults.as_deref(),
        };
        let mut state = PipelineState::new(graph.clone());
        let pipeline: [&dyn Pass; 5] = [
            &passes::SegmentPass,
            &passes::GroupPass,
            &passes::SchedulePass,
            &passes::EmitPass,
            &passes::VerifyPass,
        ];
        for pass in pipeline {
            // Isolation boundary: a panicking pass becomes an
            // `SfError::Internal` instead of unwinding through the
            // caller. Claimed-but-unfulfilled cache tickets are
            // abandoned during the unwind, so waiters are not wedged.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pass.run(&ctx, &mut state)))
                .unwrap_or_else(|payload| {
                Err(SfError::Internal {
                    pass: pass.name().to_string(),
                    payload: panic_payload(payload),
                })
            })?;
        }
        let mut stats = std::mem::take(&mut state.stats);
        stats.total_us = t0.elapsed().as_secs_f64() * 1e6;
        Ok(CompiledProgram {
            kernels: std::mem::take(&mut state.kernels),
            instances: graph.instances,
            outputs: std::mem::take(&mut state.outputs),
            arch: self.arch.clone(),
            stats,
            engine: Arc::clone(&self.engine),
        })
    }
}
