//! The shared, thread-safe claim-based caches.
//!
//! Scheduling decisions are cached by `(shape key, fusion policy,
//! architecture)` (paper §5: "SpaceFusion compiles the repetitive ones
//! only once"). The cache lives in a
//! [`CompileSession`](super::CompileSession) and is shared across
//! compilations *and* threads: concurrent compilations of subprograms
//! with equal keys never tune twice. The first claimant computes while
//! later claimants block on a condition variable until the entry is
//! published (or the computation is abandoned, in which case the next
//! waiter takes over).
//!
//! The claim protocol itself is generic: [`ClaimMap`] maps any
//! hashable key to any clonable value with exactly-one-computation
//! semantics. [`ScheduleCache`] instantiates it for schedule decisions;
//! the serving layer ([`crate::serve`]) instantiates it again for whole
//! compiled programs, so N identical in-flight requests trigger exactly
//! one compile.
//!
//! Resilience properties (see [`crate::resilience`]): a claimant that
//! panics drops its [`ClaimTicket`] during unwinding, which abandons
//! the claim and wakes the next waiter — a crashed compilation never
//! wedges other threads. All internal locks recover from mutex
//! poisoning (the guarded state is only mutated while consistent), and
//! [`ScheduleCache::invalidate`] evicts an entry that fails validation
//! on rebuild so the next claimant recomputes it.

use super::FusionPolicy;
use sf_gpu_sim::GpuArch;
use sf_ir::{segment, Graph};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Cache key: what makes two scheduling problems identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural shape key of the subgraph (op kinds + shapes).
    pub shape: String,
    /// Fusion capability set the schedule was derived under.
    pub policy: FusionPolicy,
    /// Fingerprint of the target configuration: every `GpuArch` field
    /// participates, so two variants of one chip (e.g. a different
    /// launch overhead) do not alias.
    pub arch: String,
}

impl CacheKey {
    /// Builds the key for one subgraph under a policy and target.
    pub fn new(graph: &Graph, policy: FusionPolicy, arch: &GpuArch) -> Self {
        CacheKey {
            shape: segment::shape_key(graph),
            policy,
            arch: format!("{arch:?}"),
        }
    }
}

/// Saved scheduling decision for one (sub)graph shape: how the graph
/// split into consecutive kernels and each kernel's block configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Op counts of the consecutive kernels the graph splits into.
    pub piece_lens: Vec<usize>,
    /// Per-kernel block configuration.
    pub configs: Vec<SavedConfig>,
}

impl CacheEntry {
    /// Structural sanity of a (possibly deserialized) entry: a schedule
    /// must cover at least one kernel piece, carry one configuration
    /// per piece, and every recorded block size must be non-zero. The
    /// snapshot loader ([`crate::serve::snapshot`]) evicts entries that
    /// fail this check — the same recompute-in-place recovery the
    /// rebuild path uses for poisoned in-memory entries.
    pub fn is_well_formed(&self) -> bool {
        !self.piece_lens.is_empty()
            && self.piece_lens.len() == self.configs.len()
            && self.piece_lens.iter().all(|&l| l > 0)
            && self.configs.iter().all(|c| {
                c.spatial.iter().all(|&b| b > 0)
                    && c.temporal.is_none_or(|b| b > 0)
                    && c.split.is_none_or(|p| p > 1)
            })
    }
}

/// One kernel's saved block configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedConfig {
    /// Spatial block size per eligible dimension.
    pub spatial: Vec<usize>,
    /// Temporal block size, when the kernel is temporally sliced.
    pub temporal: Option<usize>,
    /// Split-K partition count, when the tile loop is split. The
    /// combine algebra is re-derived from the plan on rebuild.
    pub split: Option<usize>,
}

/// Outcome of [`ClaimMap::claim`] / [`ScheduleCache::claim`].
pub enum Claim<'c, K: Eq + Hash + Clone = CacheKey, V: Clone = CacheEntry> {
    /// The key was already computed; here is the published value.
    Hit(V),
    /// The caller must compute the value and then
    /// [`fulfill`](ClaimTicket::fulfill) the ticket. Dropping the
    /// ticket unfulfilled (error or panic) wakes the next waiter, which
    /// claims the key in turn.
    Miss(ClaimTicket<'c, K, V>),
}

/// Exclusive right (and obligation) to compute one cache entry.
pub struct ClaimTicket<'c, K: Eq + Hash + Clone = CacheKey, V: Clone = CacheEntry> {
    map: &'c ClaimMap<K, V>,
    key: K,
    done: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> ClaimTicket<'_, K, V> {
    /// Publishes the computed value and wakes all waiters.
    pub fn fulfill(mut self, value: V) {
        let mut state = self.map.lock_state();
        state.in_flight.remove(&self.key);
        state.ready.insert(self.key.clone(), value);
        self.done = true;
        drop(state);
        self.map.cv.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for ClaimTicket<'_, K, V> {
    fn drop(&mut self) {
        if !self.done {
            let mut state = self.map.lock_state();
            state.in_flight.remove(&self.key);
            drop(state);
            self.map.cv.notify_all();
        }
    }
}

struct MapState<K, V> {
    ready: HashMap<K, V>,
    in_flight: HashSet<K>,
}

impl<K, V> Default for MapState<K, V> {
    fn default() -> Self {
        MapState {
            ready: HashMap::new(),
            in_flight: HashSet::new(),
        }
    }
}

/// A thread-safe map with exactly-one-computation claim semantics: the
/// first thread to [`claim`](ClaimMap::claim) a missing key receives a
/// [`ClaimTicket`] and computes the value; concurrent claimants of the
/// same key block until the ticket is fulfilled (or abandoned, in which
/// case the next waiter takes over the computation).
pub struct ClaimMap<K: Eq + Hash + Clone, V: Clone> {
    state: Mutex<MapState<K, V>>,
    cv: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for ClaimMap<K, V> {
    fn default() -> Self {
        ClaimMap {
            state: Mutex::default(),
            cv: Condvar::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ClaimMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ClaimMap::default()
    }

    // Poison-tolerant lock: a panic elsewhere (caught at a pass
    // isolation boundary) must not take the cache down with it. The
    // guarded maps are only mutated while structurally consistent, so
    // recovering the guard is safe.
    fn lock_state(&self) -> MutexGuard<'_, MapState<K, V>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probes the map, blocking while another thread is computing the
    /// same key.
    pub fn claim(&self, key: &K) -> Claim<'_, K, V> {
        let mut state = self.lock_state();
        loop {
            if let Some(value) = state.ready.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(value.clone());
            }
            if !state.in_flight.contains(key) {
                state.in_flight.insert(key.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Claim::Miss(ClaimTicket {
                    map: self,
                    key: key.clone(),
                    done: false,
                });
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking lookup (no in-flight coordination, no counters).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.lock_state().ready.get(key).cloned()
    }

    /// Publishes a value directly, without the claim protocol — the
    /// warm-start path: snapshot entries are inserted wholesale before
    /// any claimant runs. An insert also wakes waiters of an in-flight
    /// claim on the same key; their next probe hits.
    pub fn insert(&self, key: K, value: V) {
        let mut state = self.lock_state();
        state.ready.insert(key, value);
        drop(state);
        self.cv.notify_all();
    }

    /// Evicts a published value. Returns whether the key was present.
    pub fn invalidate(&self, key: &K) -> bool {
        self.lock_state().ready.remove(key).is_some()
    }

    /// A snapshot of every published `(key, value)` pair. In-flight
    /// claims are not included (they have no value yet).
    pub fn entries(&self) -> Vec<(K, V)> {
        self.lock_state()
            .ready
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of published values.
    pub fn len(&self) -> usize {
        self.lock_state().ready.len()
    }

    /// Whether the map holds no published values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes that found a published value (lifetime total).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that had to compute (lifetime total).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Thread-safe schedule cache shared across compilations: the
/// [`ClaimMap`] claim protocol keyed by [`CacheKey`].
#[derive(Default)]
pub struct ScheduleCache {
    map: ClaimMap<CacheKey, CacheEntry>,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// Probes the cache, blocking while another thread is computing the
    /// same key. Wait chains cannot cycle: a computation only ever
    /// claims keys of strictly smaller subgraphs than its own.
    pub fn claim(&self, key: &CacheKey) -> Claim<'_> {
        self.map.claim(key)
    }

    /// Non-blocking lookup (no in-flight coordination, no counters).
    pub fn peek(&self, key: &CacheKey) -> Option<CacheEntry> {
        self.map.peek(key)
    }

    /// Publishes an entry directly (the snapshot warm-start path).
    pub fn insert(&self, key: CacheKey, entry: CacheEntry) {
        self.map.insert(key, entry);
    }

    /// Evicts a published entry (used when a cached schedule fails
    /// validation on rebuild — e.g. after injected cache poisoning — or
    /// when a snapshot entry fails its checksum on load). The next
    /// claimant recomputes it. Returns whether the key was present.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        self.map.invalidate(key)
    }

    /// A snapshot of every published entry, for disk persistence.
    pub fn entries(&self) -> Vec<(CacheKey, CacheEntry)> {
        self.map.entries()
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes that found a ready entry (lifetime total).
    pub fn hits(&self) -> usize {
        self.map.hits()
    }

    /// Probes that had to compute (lifetime total).
    pub fn misses(&self) -> usize {
        self.map.misses()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn key(shape: &str) -> CacheKey {
        CacheKey {
            shape: shape.into(),
            policy: FusionPolicy::SpaceFusion,
            arch: "test".into(),
        }
    }

    fn entry() -> CacheEntry {
        CacheEntry {
            piece_lens: vec![3],
            configs: vec![SavedConfig {
                spatial: vec![16],
                temporal: None,
                split: None,
            }],
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = ScheduleCache::new();
        match cache.claim(&key("a")) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        }
        assert!(matches!(cache.claim(&key("a")), Claim::Hit(e) if e == entry()));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_policies_do_not_alias() {
        let cache = ScheduleCache::new();
        let k1 = key("a");
        let mut k2 = key("a");
        k2.policy = FusionPolicy::Unfused;
        match cache.claim(&k1) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!(),
        }
        assert!(matches!(cache.claim(&k2), Claim::Miss(_)));
    }

    #[test]
    fn abandoned_claim_hands_over_to_next_claimant() {
        let cache = ScheduleCache::new();
        {
            let c = cache.claim(&key("a"));
            assert!(matches!(c, Claim::Miss(_)));
            // Ticket dropped unfulfilled here.
        }
        assert!(matches!(cache.claim(&key("a")), Claim::Miss(_)));
    }

    #[test]
    fn invalidate_evicts_and_forces_recompute() {
        let cache = ScheduleCache::new();
        match cache.claim(&key("a")) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        }
        assert!(cache.invalidate(&key("a")));
        assert!(!cache.invalidate(&key("a")), "second eviction is a no-op");
        assert!(matches!(cache.claim(&key("a")), Claim::Miss(_)));
    }

    #[test]
    fn insert_publishes_without_a_claim() {
        let cache = ScheduleCache::new();
        cache.insert(key("warm"), entry());
        assert!(matches!(cache.claim(&key("warm")), Claim::Hit(e) if e == entry()));
        assert_eq!(cache.misses(), 0, "warm entries never count as misses");
        let snap = cache.entries();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, key("warm"));
    }

    #[test]
    fn well_formedness_rejects_corrupt_entries() {
        assert!(entry().is_well_formed());
        let empty = CacheEntry {
            piece_lens: vec![],
            configs: vec![],
        };
        assert!(!empty.is_well_formed());
        let mismatched = CacheEntry {
            piece_lens: vec![3, 2],
            configs: entry().configs,
        };
        assert!(!mismatched.is_well_formed());
        let mut zero_block = entry();
        zero_block.configs[0].spatial = vec![0];
        assert!(!zero_block.is_well_formed());
        let mut unit_split = entry();
        unit_split.configs[0].split = Some(1);
        assert!(!unit_split.is_well_formed());
    }

    #[test]
    fn generic_claim_map_serves_arbitrary_values() {
        let map: ClaimMap<u64, String> = ClaimMap::new();
        match map.claim(&7) {
            Claim::Miss(t) => t.fulfill("seven".into()),
            Claim::Hit(_) => panic!("empty map cannot hit"),
        }
        assert!(matches!(map.claim(&7), Claim::Hit(s) if s == "seven"));
        assert_eq!(map.entries(), vec![(7, "seven".to_string())]);
    }

    #[test]
    fn concurrent_claims_compute_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ScheduleCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match cache.claim(&key("hot")) {
                    Claim::Miss(t) => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Give waiters a chance to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        t.fulfill(entry());
                    }
                    Claim::Hit(e) => assert_eq!(e, entry()),
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "exactly one thread computes"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
