//! The shared, thread-safe schedule cache.
//!
//! Scheduling decisions are cached by `(shape key, fusion policy,
//! architecture)` (paper §5: "SpaceFusion compiles the repetitive ones
//! only once"). The cache lives in a
//! [`CompileSession`](super::CompileSession) and is shared across
//! compilations *and* threads: concurrent compilations of subprograms
//! with equal keys never tune twice. The first claimant computes while
//! later claimants block on a condition variable until the entry is
//! published (or the computation is abandoned, in which case the next
//! waiter takes over).
//!
//! Resilience properties (see [`crate::resilience`]): a claimant that
//! panics drops its [`ClaimTicket`] during unwinding, which abandons
//! the claim and wakes the next waiter — a crashed compilation never
//! wedges other threads. All internal locks recover from mutex
//! poisoning (the guarded state is only mutated while consistent), and
//! [`ScheduleCache::invalidate`] evicts an entry that fails validation
//! on rebuild so the next claimant recomputes it.

use super::FusionPolicy;
use sf_gpu_sim::GpuArch;
use sf_ir::{segment, Graph};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Cache key: what makes two scheduling problems identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural shape key of the subgraph (op kinds + shapes).
    pub shape: String,
    /// Fusion capability set the schedule was derived under.
    pub policy: FusionPolicy,
    /// Fingerprint of the target configuration: every `GpuArch` field
    /// participates, so two variants of one chip (e.g. a different
    /// launch overhead) do not alias.
    pub arch: String,
}

impl CacheKey {
    /// Builds the key for one subgraph under a policy and target.
    pub fn new(graph: &Graph, policy: FusionPolicy, arch: &GpuArch) -> Self {
        CacheKey {
            shape: segment::shape_key(graph),
            policy,
            arch: format!("{arch:?}"),
        }
    }
}

/// Saved scheduling decision for one (sub)graph shape: how the graph
/// split into consecutive kernels and each kernel's block configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Op counts of the consecutive kernels the graph splits into.
    pub piece_lens: Vec<usize>,
    /// Per-kernel block configuration.
    pub configs: Vec<SavedConfig>,
}

/// One kernel's saved block configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedConfig {
    /// Spatial block size per eligible dimension.
    pub spatial: Vec<usize>,
    /// Temporal block size, when the kernel is temporally sliced.
    pub temporal: Option<usize>,
    /// Split-K partition count, when the tile loop is split. The
    /// combine algebra is re-derived from the plan on rebuild.
    pub split: Option<usize>,
}

/// Outcome of [`ScheduleCache::claim`].
pub enum Claim<'c> {
    /// The key was already scheduled; here is the saved decision.
    Hit(CacheEntry),
    /// The caller must schedule the subgraph and then
    /// [`fulfill`](ClaimTicket::fulfill) the ticket. Dropping the
    /// ticket unfulfilled (error or panic) wakes the next waiter, which
    /// claims the key in turn.
    Miss(ClaimTicket<'c>),
}

/// Exclusive right (and obligation) to compute one cache entry.
pub struct ClaimTicket<'c> {
    cache: &'c ScheduleCache,
    key: CacheKey,
    done: bool,
}

impl ClaimTicket<'_> {
    /// Publishes the computed entry and wakes all waiters.
    pub fn fulfill(mut self, entry: CacheEntry) {
        let mut state = self.cache.lock_state();
        state.in_flight.remove(&self.key);
        state.ready.insert(self.key.clone(), entry);
        self.done = true;
        drop(state);
        self.cache.cv.notify_all();
    }
}

impl Drop for ClaimTicket<'_> {
    fn drop(&mut self) {
        if !self.done {
            let mut state = self.cache.lock_state();
            state.in_flight.remove(&self.key);
            drop(state);
            self.cache.cv.notify_all();
        }
    }
}

#[derive(Default)]
struct CacheState {
    ready: HashMap<CacheKey, CacheEntry>,
    in_flight: HashSet<CacheKey>,
}

/// Thread-safe schedule cache shared across compilations.
#[derive(Default)]
pub struct ScheduleCache {
    state: Mutex<CacheState>,
    cv: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    // Poison-tolerant lock: a panic elsewhere (caught at a pass
    // isolation boundary) must not take the cache down with it. The
    // guarded maps are only mutated while structurally consistent, so
    // recovering the guard is safe.
    fn lock_state(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probes the cache, blocking while another thread is computing the
    /// same key. Wait chains cannot cycle: a computation only ever
    /// claims keys of strictly smaller subgraphs than its own.
    pub fn claim(&self, key: &CacheKey) -> Claim<'_> {
        let mut state = self.lock_state();
        loop {
            if let Some(entry) = state.ready.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(entry.clone());
            }
            if !state.in_flight.contains(key) {
                state.in_flight.insert(key.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Claim::Miss(ClaimTicket {
                    cache: self,
                    key: key.clone(),
                    done: false,
                });
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking lookup (no in-flight coordination, no counters).
    pub fn peek(&self, key: &CacheKey) -> Option<CacheEntry> {
        self.lock_state().ready.get(key).cloned()
    }

    /// Evicts a published entry (used when a cached schedule fails
    /// validation on rebuild — e.g. after injected cache poisoning).
    /// The next claimant recomputes it. Returns whether the key was
    /// present.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        self.lock_state().ready.remove(key).is_some()
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.lock_state().ready.len()
    }

    /// Whether the cache holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes that found a ready entry (lifetime total).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that had to compute (lifetime total).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn key(shape: &str) -> CacheKey {
        CacheKey {
            shape: shape.into(),
            policy: FusionPolicy::SpaceFusion,
            arch: "test".into(),
        }
    }

    fn entry() -> CacheEntry {
        CacheEntry {
            piece_lens: vec![3],
            configs: vec![SavedConfig {
                spatial: vec![16],
                temporal: None,
                split: None,
            }],
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = ScheduleCache::new();
        match cache.claim(&key("a")) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        }
        assert!(matches!(cache.claim(&key("a")), Claim::Hit(e) if e == entry()));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_policies_do_not_alias() {
        let cache = ScheduleCache::new();
        let k1 = key("a");
        let mut k2 = key("a");
        k2.policy = FusionPolicy::Unfused;
        match cache.claim(&k1) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!(),
        }
        assert!(matches!(cache.claim(&k2), Claim::Miss(_)));
    }

    #[test]
    fn abandoned_claim_hands_over_to_next_claimant() {
        let cache = ScheduleCache::new();
        {
            let c = cache.claim(&key("a"));
            assert!(matches!(c, Claim::Miss(_)));
            // Ticket dropped unfulfilled here.
        }
        assert!(matches!(cache.claim(&key("a")), Claim::Miss(_)));
    }

    #[test]
    fn invalidate_evicts_and_forces_recompute() {
        let cache = ScheduleCache::new();
        match cache.claim(&key("a")) {
            Claim::Miss(t) => t.fulfill(entry()),
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        }
        assert!(cache.invalidate(&key("a")));
        assert!(!cache.invalidate(&key("a")), "second eviction is a no-op");
        assert!(matches!(cache.claim(&key("a")), Claim::Miss(_)));
    }

    #[test]
    fn concurrent_claims_compute_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ScheduleCache::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match cache.claim(&key("hot")) {
                    Claim::Miss(t) => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Give waiters a chance to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        t.fulfill(entry());
                    }
                    Claim::Hit(e) => assert_eq!(e, entry()),
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "exactly one thread computes"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
