//! The degradation ladder and its structured report.
//!
//! When a unit (fusion group) fails to schedule or verify under the
//! active policy, the scheduler retries it down a fixed ladder instead
//! of failing the whole compilation:
//!
//! 1. [`Rung::Primary`] — the configured policy, including the paper's
//!    built-in Alg.-2 partitioning fallback for resource errors;
//! 2. [`Rung::Partitioned`] — forced Alg.-2 SMG partitioning;
//! 3. [`Rung::Unfused`] — every operator scheduled as its own
//!    single-op kernel, the always-correct reference shape.
//!
//! Each fall is recorded as a [`DegradationStep`] naming the unit, the
//! rung landed on, and the error that forced the fall (for injected
//! faults the message embeds the fault site). Steps accumulate in
//! `CompileStats::degradations` and surface through `PassEvent`s, the
//! `sfc --timings` table, `sfc lint`, and `sfc faultsim`. Executor-side
//! fallbacks (a kernel re-run on the reference interpreter after a
//! worker crash) reuse the same step type inside a standalone
//! [`DegradationReport`].

use std::fmt;

/// One level of the degradation ladder. Ordered: falling means moving
/// to a strictly later rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The configured fusion policy (with its built-in Alg.-2 fallback
    /// for resource infeasibility).
    Primary,
    /// Forced Alg.-2 SMG partitioning.
    Partitioned,
    /// Per-op unfused kernels.
    Unfused,
}

impl Rung {
    /// Stable lowercase label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Primary => "primary",
            Rung::Partitioned => "partitioned",
            Rung::Unfused => "unfused",
        }
    }

    /// The next rung down, or `None` at the bottom.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Primary => Some(Rung::Partitioned),
            Rung::Partitioned => Some(Rung::Unfused),
            Rung::Unfused => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded fall (or recovery) of one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationStep {
    /// Unit (compile) or kernel (execute) that degraded.
    pub unit: String,
    /// Rung the unit landed on. [`Rung::Primary`] marks an in-place
    /// recovery (e.g. a corrupt cache entry invalidated and recomputed
    /// without leaving the primary policy).
    pub rung: Rung,
    /// The error that forced the step, fault site included when the
    /// error was injected.
    pub reason: String,
}

impl DegradationStep {
    /// One deterministic report line.
    pub fn render(&self) -> String {
        format!("{}: -> {} ({})", self.unit, self.rung, self.reason)
    }
}

/// Ordered list of degradation steps for one compilation or execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Steps in the order they were recorded.
    pub steps: Vec<DegradationStep>,
}

impl DegradationReport {
    /// Whether nothing degraded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Records a step.
    pub fn record(&mut self, unit: impl Into<String>, rung: Rung, reason: impl Into<String>) {
        self.steps.push(DegradationStep {
            unit: unit.into(),
            rung,
            reason: reason.into(),
        });
    }

    /// The last rung recorded for `unit`, if it degraded.
    pub fn final_rung(&self, unit: &str) -> Option<Rung> {
        self.steps
            .iter()
            .rev()
            .find(|s| s.unit == unit)
            .map(|s| s.rung)
    }

    /// Deterministic multi-line rendering (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_bottom() {
        assert!(Rung::Primary < Rung::Partitioned);
        assert!(Rung::Partitioned < Rung::Unfused);
        assert_eq!(Rung::Primary.next(), Some(Rung::Partitioned));
        assert_eq!(Rung::Partitioned.next(), Some(Rung::Unfused));
        assert_eq!(Rung::Unfused.next(), None);
    }

    #[test]
    fn report_records_and_renders() {
        let mut r = DegradationReport::default();
        assert!(r.is_empty());
        r.record("s0u1", Rung::Partitioned, "injected panic at schedule");
        r.record("s0u1", Rung::Unfused, "partition failed");
        r.record("s1u0", Rung::Primary, "cache entry corrupt, recomputed");
        assert_eq!(r.len(), 3);
        assert_eq!(r.final_rung("s0u1"), Some(Rung::Unfused));
        assert_eq!(r.final_rung("s1u0"), Some(Rung::Primary));
        assert_eq!(r.final_rung("s9u9"), None);
        let text = r.render();
        assert!(text.contains("s0u1: -> partitioned (injected panic at schedule)"));
        assert!(text.contains("s0u1: -> unfused (partition failed)"));
        assert_eq!(text.lines().count(), 3);
    }
}
