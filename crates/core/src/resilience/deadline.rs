//! Monotonic compilation deadlines.
//!
//! A [`Deadline`] is a cheap `Copy` budget handed down from
//! [`CompileOptions::schedule_budget_ms`](crate::pipeline::CompileOptions)
//! through schedule enumeration (`sched::resource_aware_slicing`) and
//! auto-tuning (`tune::tune_bounded`). Deadline-aware loops check
//! [`Deadline::expired`] and stop exploring once the budget is gone,
//! keeping whatever feasible result they already have — expiry trades
//! schedule quality for latency, it does not fail the compilation.
//! Only code that has *nothing* feasible yet converts expiry into
//! [`SfError::Timeout`].

use crate::error::{Result, SfError};
use std::time::{Duration, Instant};

/// A point on the monotonic clock after which exploratory work should
/// stop. `Deadline::default()` / [`Deadline::none`] never expires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Expires `d` from now. Saturates to "never" on overflow.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(d),
        }
    }

    /// Expires `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Deadline::after(Duration::from_millis(ms))
    }

    /// Budget from an optional millisecond count (`None` = unbounded).
    pub fn from_budget_ms(ms: Option<u64>) -> Self {
        match ms {
            Some(ms) => Deadline::after_ms(ms),
            None => Deadline::none(),
        }
    }

    /// Whether a finite budget is attached.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the budget is gone. An unbounded deadline never expires.
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Errors with [`SfError::Timeout`] naming `what` when expired.
    pub fn check(&self, what: &str) -> Result<()> {
        if self.expired() {
            Err(SfError::Timeout(format!("budget exhausted during {what}")))
        } else {
            Ok(())
        }
    }

    /// The tighter of two deadlines.
    pub fn earliest(self, other: Deadline) -> Deadline {
        Deadline {
            at: match (self.at, other.at) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert!(d.check("anything").is_ok());
        assert_eq!(Deadline::default(), Deadline::none());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after_ms(0);
        assert!(d.is_bounded());
        assert!(d.expired());
        match d.check("slicing") {
            Err(SfError::Timeout(m)) => assert!(m.contains("slicing")),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
    }

    #[test]
    fn earliest_picks_the_tighter_budget() {
        let never = Deadline::none();
        let now = Deadline::after_ms(0);
        let later = Deadline::after(Duration::from_secs(3600));
        assert!(never.earliest(now).expired());
        assert!(now.earliest(never).expired());
        assert!(!later.earliest(never).expired());
        assert!(later.earliest(now).expired());
    }

    #[test]
    fn from_budget_ms_roundtrip() {
        assert!(!Deadline::from_budget_ms(None).is_bounded());
        assert!(Deadline::from_budget_ms(Some(0)).expired());
    }
}
