//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a small, seeded list of faults to fire at named
//! sites inside the compiler and executor — no `cfg` feature, no
//! global state: a plan is wrapped in a [`FaultInjector`] and handed to
//! a `CompileSession` (via `with_faults`) or to
//! `CompiledProgram::execute_resilient`. Production code paths carry an
//! `Option<&FaultInjector>` that is `None` in normal operation, so the
//! hooks cost one branch when disabled.
//!
//! Every fault fires **at most once** per injector, and the injector
//! records a human-readable site string for each fired fault, which is
//! how `sfc faultsim` proves the [`DegradationReport`]
//! (`crate::resilience::DegradationReport`) names the fault site.

use sf_tensor::rng::XorShiftRng;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside group scheduling — exercises the `catch_unwind`
    /// pass isolation, `SfError::Internal` conversion, and
    /// schedule-cache claim abandonment.
    Panic,
    /// Publish a corrupted schedule-cache entry — exercises cache
    /// validation plus invalidate-and-recompute recovery on the next
    /// compilation that hits the entry.
    PoisonCache,
    /// Force `SfError::ResourceInfeasible` out of group scheduling —
    /// exercises the Alg.-2 partitioning fallback.
    ForceInfeasible,
    /// Panic inside an executor worker on a chosen spatial block —
    /// exercises block isolation and the per-kernel unfused fallback.
    CrashWorker,
    /// Force `SfError::Timeout` out of group scheduling — exercises
    /// the deadline rung of the degradation ladder.
    ExpireDeadline,
    /// Serve: truncate an outbound response frame at a seeded byte
    /// offset (the fault's `block` field) and sever the connection —
    /// exercises the client's torn-frame detection and retry.
    TornFrame,
    /// Serve: the chaos harness's client writes a partial frame and
    /// then stalls for longer than the session timeout — exercises the
    /// daemon's per-session read timeout and idle reaper. Fired by the
    /// client driver, never by a server-side hook.
    StallClient,
    /// Serve: close the connection after reading a request, before any
    /// response is written — exercises client reconnect + resend.
    DropConnection,
    /// Serve: panic inside a session thread — exercises session panic
    /// isolation (the admission slot is freed, `ServeCore` state stays
    /// healthy, the crash is counted).
    CrashSession,
    /// Serve: abandon the schedule-cache snapshot write at a seeded
    /// byte offset (the fault's `block` field): the temp file is left
    /// partial and never renamed — exercises tmp+rename atomicity (the
    /// previous snapshot must stay fully intact).
    KillDuringSnapshot,
}

impl FaultKind {
    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::PoisonCache => "poison-cache",
            FaultKind::ForceInfeasible => "force-infeasible",
            FaultKind::CrashWorker => "crash-worker",
            FaultKind::ExpireDeadline => "expire-deadline",
            FaultKind::TornFrame => "torn-frame",
            FaultKind::StallClient => "stall-client",
            FaultKind::DropConnection => "drop-connection",
            FaultKind::CrashSession => "crash-session",
            FaultKind::KillDuringSnapshot => "kill-during-snapshot",
        }
    }

    /// Whether this kind belongs to the serving layer (fired by the
    /// serve session/write/snapshot hooks or the chaos client driver)
    /// rather than the compile/execute pipeline.
    pub fn is_serve(self) -> bool {
        matches!(
            self,
            FaultKind::TornFrame
                | FaultKind::StallClient
                | FaultKind::DropConnection
                | FaultKind::CrashSession
                | FaultKind::KillDuringSnapshot
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a fault hook lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Entry of fused group scheduling (`Scheduler::schedule_fused`).
    Schedule,
    /// Publication of a freshly computed schedule-cache entry.
    CachePublish,
    /// Execution of one spatial block of one kernel.
    ExecBlock,
    /// A serve session thread, after a request frame is read and
    /// before it is submitted ([`FaultKind::CrashSession`],
    /// [`FaultKind::DropConnection`]).
    ServeSession,
    /// The outbound response frame write of a serve session
    /// ([`FaultKind::TornFrame`]).
    ServeWrite,
    /// The schedule-cache snapshot save
    /// ([`FaultKind::KillDuringSnapshot`]).
    ServeSnapshot,
    /// The chaos harness's client driver ([`FaultKind::StallClient`] —
    /// client-side behaviour, never a server hook).
    ServeClient,
}

impl FaultStage {
    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultStage::Schedule => "schedule",
            FaultStage::CachePublish => "cache-publish",
            FaultStage::ExecBlock => "exec-block",
            FaultStage::ServeSession => "serve-session",
            FaultStage::ServeWrite => "serve-write",
            FaultStage::ServeSnapshot => "serve-snapshot",
            FaultStage::ServeClient => "serve-client",
        }
    }
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Hook site the fault is armed at.
    pub stage: FaultStage,
    /// Behaviour when it fires.
    pub kind: FaultKind,
    /// Restricts firing to units/kernels whose name contains this
    /// substring; the empty string matches any site.
    pub unit: String,
    /// For [`FaultStage::ExecBlock`] faults: targeted spatial block
    /// (the hook fires on block index `block % n_blocks`, so any value
    /// maps onto a real block of the kernel it lands in). Serve-layer
    /// faults reuse it as the seeded byte offset: [`FaultKind::TornFrame`]
    /// truncates the frame at `block % frame_len`,
    /// [`FaultKind::KillDuringSnapshot`] abandons the snapshot write at
    /// `block % snapshot_len`.
    pub block: usize,
}

/// A deterministic, seeded list of faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was derived from.
    pub seed: u64,
    /// Faults, in arming order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A single-fault plan (convenient in tests).
    pub fn single(stage: FaultStage, kind: FaultKind) -> Self {
        FaultPlan {
            seed: 0,
            faults: vec![Fault {
                stage,
                kind,
                unit: String::new(),
                block: 0,
            }],
        }
    }

    /// Derives a plan of one or two faults from `seed`. The mapping is
    /// pure: the same seed always yields the same plan, and the five
    /// [`FaultKind`]s are all reachable within any 10 consecutive
    /// seeds.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = XorShiftRng::seed_from_u64(seed ^ 0xFA01_75EE_D000_0001);
        let n = 1 + rng.below(2) as usize;
        let faults = (0..n)
            .map(|i| {
                // Cycle the first fault's kind through all five so low
                // seed counts still cover every kind; later faults are
                // fully random.
                let kind = match if i == 0 { seed % 5 } else { rng.below(5) } {
                    0 => FaultKind::Panic,
                    1 => FaultKind::PoisonCache,
                    2 => FaultKind::ForceInfeasible,
                    3 => FaultKind::CrashWorker,
                    _ => FaultKind::ExpireDeadline,
                };
                let stage = match kind {
                    FaultKind::PoisonCache => FaultStage::CachePublish,
                    FaultKind::CrashWorker => FaultStage::ExecBlock,
                    _ => FaultStage::Schedule,
                };
                Fault {
                    stage,
                    kind,
                    unit: String::new(),
                    block: rng.below(64) as usize,
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Derives a serve-layer plan of one or two faults from `seed`,
    /// with the same determinism contract as [`FaultPlan::from_seed`]:
    /// the mapping is pure and the five serve [`FaultKind`]s are all
    /// reachable within any 10 consecutive seeds (the first fault's
    /// kind cycles with `seed % 5`).
    pub fn serve_from_seed(seed: u64) -> Self {
        let mut rng = XorShiftRng::seed_from_u64(seed ^ 0x5EB0_FA01_7C4A_0517);
        let n = 1 + rng.below(2) as usize;
        let faults = (0..n)
            .map(|i| {
                let kind = match if i == 0 { seed % 5 } else { rng.below(5) } {
                    0 => FaultKind::TornFrame,
                    1 => FaultKind::StallClient,
                    2 => FaultKind::DropConnection,
                    3 => FaultKind::CrashSession,
                    _ => FaultKind::KillDuringSnapshot,
                };
                let stage = match kind {
                    FaultKind::TornFrame => FaultStage::ServeWrite,
                    FaultKind::StallClient => FaultStage::ServeClient,
                    FaultKind::KillDuringSnapshot => FaultStage::ServeSnapshot,
                    _ => FaultStage::ServeSession,
                };
                Fault {
                    stage,
                    kind,
                    unit: String::new(),
                    // Doubles as the seeded byte offset for torn frames
                    // and abandoned snapshot writes.
                    block: rng.below(1 << 20) as usize,
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }
}

/// Arms a [`FaultPlan`] and fires each fault at most once.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    armed: Vec<AtomicBool>,
    fired: Mutex<Vec<String>>,
}

impl FaultInjector {
    /// Arms every fault in `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let armed = plan.faults.iter().map(|_| AtomicBool::new(true)).collect();
        FaultInjector {
            plan,
            armed,
            fired: Mutex::new(Vec::new()),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn trigger(&self, idx: usize, site: String) -> FaultKind {
        let fault = &self.plan.faults[idx];
        let mut fired = self
            .fired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        fired.push(format!("{} {} at {}", fault.kind, fault.stage, site));
        fault.kind
    }

    /// Fires the first armed fault matching `stage` whose unit pattern
    /// matches `unit`. At most one fault fires per call; each fault
    /// fires at most once per injector.
    pub fn fire(&self, stage: FaultStage, unit: &str) -> Option<FaultKind> {
        self.fire_fault(stage, unit).map(|f| f.kind)
    }

    /// Like [`FaultInjector::fire`] but returns the full fired
    /// [`Fault`], so serve-layer hooks can read the seeded byte offset
    /// carried in `block`.
    pub fn fire_fault(&self, stage: FaultStage, unit: &str) -> Option<Fault> {
        for (i, f) in self.plan.faults.iter().enumerate() {
            let matches = f.stage == stage && (f.unit.is_empty() || unit.contains(f.unit.as_str()));
            if matches && self.armed[i].swap(false, Ordering::SeqCst) {
                self.trigger(i, unit.to_string());
                return Some(f.clone());
            }
        }
        None
    }

    /// Fires an [`FaultStage::ExecBlock`] fault when `block` is the
    /// fault's targeted block (`fault.block % n_blocks`) of a matching
    /// kernel.
    pub fn fire_block(&self, kernel: &str, block: usize, n_blocks: usize) -> Option<FaultKind> {
        for (i, f) in self.plan.faults.iter().enumerate() {
            let matches = f.stage == FaultStage::ExecBlock
                && (f.unit.is_empty() || kernel.contains(f.unit.as_str()))
                && block == f.block % n_blocks.max(1);
            if matches && self.armed[i].swap(false, Ordering::SeqCst) {
                return Some(self.trigger(i, format!("{kernel} block {block}")));
            }
        }
        None
    }

    /// Human-readable "kind stage at site" lines for the faults that
    /// actually fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.fired
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// Installs (once per process) a panic hook that swallows the default
/// "thread panicked" stderr noise for *injected* panics — payloads
/// containing the word `injected` — and delegates everything else to
/// the previously installed hook. Fault-injection sweeps (`sfc
/// faultsim`, `sf-fuzz --faults`) panic on purpose dozens of times;
/// without this the output drowns in backtrace spam for events that
/// are caught and recovered by design.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Stringifies a caught panic payload (`&str` and `String` payloads
/// pass through; anything else becomes an opaque marker).
pub fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_all_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..10 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.faults.is_empty() && a.faults.len() <= 2);
            for f in &a.faults {
                kinds.insert(f.kind.label());
            }
        }
        assert_eq!(kinds.len(), 5, "10 seeds must cover all 5 fault kinds");
    }

    #[test]
    fn stage_matches_kind() {
        for seed in 0..50 {
            for f in &FaultPlan::from_seed(seed).faults {
                match f.kind {
                    FaultKind::PoisonCache => assert_eq!(f.stage, FaultStage::CachePublish),
                    FaultKind::CrashWorker => assert_eq!(f.stage, FaultStage::ExecBlock),
                    _ => assert_eq!(f.stage, FaultStage::Schedule),
                }
            }
        }
    }

    #[test]
    fn serve_plans_are_deterministic_and_cover_all_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..10 {
            let a = FaultPlan::serve_from_seed(seed);
            let b = FaultPlan::serve_from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.faults.is_empty() && a.faults.len() <= 2);
            for f in &a.faults {
                assert!(f.kind.is_serve(), "serve plans carry serve kinds only");
                kinds.insert(f.kind.label());
            }
        }
        assert_eq!(kinds.len(), 5, "10 seeds must cover all 5 serve kinds");
    }

    #[test]
    fn serve_stage_matches_kind() {
        for seed in 0..50 {
            for f in &FaultPlan::serve_from_seed(seed).faults {
                match f.kind {
                    FaultKind::TornFrame => assert_eq!(f.stage, FaultStage::ServeWrite),
                    FaultKind::StallClient => assert_eq!(f.stage, FaultStage::ServeClient),
                    FaultKind::KillDuringSnapshot => {
                        assert_eq!(f.stage, FaultStage::ServeSnapshot)
                    }
                    _ => assert_eq!(f.stage, FaultStage::ServeSession),
                }
            }
        }
    }

    #[test]
    fn fire_fault_returns_the_seeded_block_offset() {
        let mut plan = FaultPlan::single(FaultStage::ServeWrite, FaultKind::TornFrame);
        plan.faults[0].block = 1234;
        let inj = FaultInjector::new(plan);
        let fired = inj.fire_fault(FaultStage::ServeWrite, "session").unwrap();
        assert_eq!(fired.kind, FaultKind::TornFrame);
        assert_eq!(fired.block, 1234);
        assert!(inj.fire_fault(FaultStage::ServeWrite, "session").is_none());
    }

    #[test]
    fn faults_fire_at_most_once() {
        let inj = FaultInjector::new(FaultPlan::single(FaultStage::Schedule, FaultKind::Panic));
        assert_eq!(inj.fire(FaultStage::Schedule, "u0"), Some(FaultKind::Panic));
        assert_eq!(inj.fire(FaultStage::Schedule, "u0"), None);
        assert_eq!(inj.fired().len(), 1);
        assert!(inj.fired()[0].contains("panic schedule at u0"));
    }

    #[test]
    fn unit_pattern_restricts_firing() {
        let mut plan = FaultPlan::single(FaultStage::Schedule, FaultKind::ForceInfeasible);
        plan.faults[0].unit = "s1".into();
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.fire(FaultStage::Schedule, "s0u0"), None);
        assert_eq!(inj.fire(FaultStage::CachePublish, "s1u0"), None);
        assert_eq!(
            inj.fire(FaultStage::Schedule, "s1u0"),
            Some(FaultKind::ForceInfeasible)
        );
    }

    #[test]
    fn block_faults_wrap_into_range() {
        let mut plan = FaultPlan::single(FaultStage::ExecBlock, FaultKind::CrashWorker);
        plan.faults[0].block = 10;
        let inj = FaultInjector::new(plan);
        // 10 % 4 == 2: fires on block 2 of a 4-block kernel.
        assert_eq!(inj.fire_block("k", 0, 4), None);
        assert_eq!(inj.fire_block("k", 2, 4), Some(FaultKind::CrashWorker));
        assert_eq!(inj.fire_block("k", 2, 4), None);
    }

    #[test]
    fn panic_payload_strings() {
        assert_eq!(panic_payload(Box::new("boom")), "boom");
        assert_eq!(panic_payload(Box::new(String::from("bang"))), "bang");
        assert_eq!(panic_payload(Box::new(17u32)), "opaque panic payload");
    }
}
