//! Resilience layer: degradation ladder, panic isolation, deadlines,
//! and deterministic fault injection.
//!
//! The paper's auto-scheduler already contains one fallback — Alg. 2
//! partitions an SMG when no schedule fits the resource budget — but a
//! production compiler faces failures that Alg. 2 does not cover: a
//! panicking pass, a corrupted schedule-cache entry, a crashed executor
//! worker, a tuning search that runs long. This module turns all of
//! those into *degradations* instead of process aborts:
//!
//! * [`ladder`] — the fixed retry ladder (current policy → Alg.-2
//!   partitioned → per-op unfused) and the structured
//!   [`DegradationReport`] recorded when a group falls down it.
//! * `catch_unwind` boundaries in `pipeline::passes` and
//!   `codegen::exec` convert panics into
//!   [`SfError::Internal`](crate::error::SfError::Internal) values that
//!   feed the ladder; [`panic_payload`] stringifies the payload.
//! * [`deadline`] — a monotonic [`Deadline`] budget threaded through
//!   schedule enumeration and auto-tuning so candidate exploration
//!   returns best-so-far instead of running unbounded.
//! * [`fault`] — a seeded, `cfg`-free fault-injection harness
//!   ([`FaultPlan`] / [`FaultInjector`]) that fires panics, cache
//!   poisoning, forced resource infeasibility, deadline expiry, and
//!   worker crashes at chosen pass/group/block sites. `sfc faultsim`
//!   and `sf-fuzz --faults` drive it to prove every injected fault
//!   either fully recovers or degrades to output identical to the
//!   unfused reference.

pub mod deadline;
pub mod fault;
pub mod ladder;

pub use deadline::Deadline;
pub use fault::{
    panic_payload, silence_injected_panics, Fault, FaultInjector, FaultKind, FaultPlan, FaultStage,
};
pub use ladder::{DegradationReport, DegradationStep, Rung};
