//! Spatial and temporal slicers (paper §4.2, §4.3).
//!
//! Slicers decompose the fused space defined by an SMG:
//!
//! * The **spatial slicer** selects dimensions along which the SMG can be
//!   cut into independent, parallel SMG blocks (one per GPU thread
//!   block). Per Table 3 it refuses any dimension carrying flow
//!   dependencies — only *input* One-to-All mappings (sources resident in
//!   global memory) or no mappings at all are admissible.
//! * The **temporal slicer** serializes one SMG block into intra-blocks
//!   along a remaining dimension to shrink the on-chip footprint. Sliced
//!   All-to-One mappings become running aggregations: *Simple Aggregate*
//!   for independent reductions, *Update-then-Aggregate* (UTA) when
//!   reductions form a dependency chain. Update functions are derived by
//!   broadcast postposition and update-path back-tracing in [`update`];
//!   for attention this recovers exactly the FlashAttention online-softmax
//!   rescaling without any attention-specific code.

pub mod combine;
pub mod spatial;
pub mod temporal;
pub mod update;

pub use combine::{derive_combine, CombineSpec};
pub use spatial::eligible_spatial_dims;
pub use temporal::{pick_temporal_dim, plan_temporal, AggKind, SlicedReduction, TemporalPlan};
pub use update::{FactorForm, UpdateFactor};
