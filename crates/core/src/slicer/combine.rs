//! Split-K combine algebra: folding per-partition partial aggregates.
//!
//! A split-K schedule evaluates the temporal loop of a sliced reduction
//! in `P` independent partitions — each partition runs the ordinary
//! intra-block loop over its own tile range and produces the same kind
//! of partial state the serial loop carries between tiles (a running
//! sum, a running max, or a UTA-rescaled pair such as the online-softmax
//! `(max, rescaled sum, rescaled output)`). A *combine phase* then folds
//! the `P` partial states pairwise in fixed partition order.
//!
//! The fold reuses the existing UTA machinery: combining partitions `a`
//! and `b` applies each sliced reduction's update factors to **both**
//! sides (the serial loop only rescales the old side because the new
//! tile is already expressed against the current factor values — a
//! partition's state is not, so both need rescaling onto the combined
//! factor values) and then merges with the reduction's combine operator.
//! For attention this is exactly the FlashDecoding fixup:
//! `o = o_a·(s_a/s)·exp(m_a−m) + o_b·(s_b/s)·exp(m_b−m)`.
//!
//! [`derive_combine`] decides, per sliced reduction of a temporal plan,
//! whether a legal combine exists and what it looks like. A plan where
//! any sliced reduction has no combinable algebra cannot be split.

use crate::slicer::temporal::{AggKind, TemporalPlan};
use sf_ir::{Graph, OpKind};
use sf_tensor::ops::{BinaryOp, ReduceOp};

/// How one sliced reduction's per-partition partial states fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineSpec {
    /// Associative merge of two partial states (applied after any
    /// rescaling): `Max` for max-reductions, `Add` for sums, means
    /// (which accumulate raw sums and finalize once at the end), and
    /// GEMM partial products.
    pub op: BinaryOp,
    /// Whether both sides must be rescaled by the reduction's UTA
    /// update factors before merging (the (max, rescaled-sum)
    /// softmax/attention algebra). `false` for Simple aggregates.
    pub rescale: bool,
}

/// Derives the combine phase for every sliced reduction of `plan`, in
/// [`TemporalPlan::sliced`] order. Returns `None` when any sliced
/// reduction has no associative partial-state algebra — such plans must
/// stay serial.
pub fn derive_combine(graph: &Graph, plan: &TemporalPlan) -> Option<Vec<CombineSpec>> {
    plan.sliced
        .iter()
        .map(|s| {
            let rescale = matches!(s.agg, AggKind::Uta(_));
            let op = match &graph.ops()[s.op.0].kind {
                // Max partials fold with max; Sum partials add. Mean
                // accumulates raw sums in the loop (the interpreter
                // divides by the extent once, after the loop), so its
                // partials also add.
                OpKind::Reduce {
                    op: ReduceOp::Max, ..
                } => BinaryOp::Max,
                OpKind::Reduce {
                    op: ReduceOp::Sum | ReduceOp::Mean,
                    ..
                } => BinaryOp::Add,
                // A K-sliced GEMM accumulates partial dot products.
                OpKind::Gemm { .. } => BinaryOp::Add,
                // Anything else sliced along the temporal dim has no
                // known partial-state algebra.
                _ => return None,
            };
            Some(CombineSpec { op, rescale })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::slicer::{eligible_spatial_dims, pick_temporal_dim, plan_temporal};
    use crate::smg::build_smg;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp as B, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn plan_of(g: &Graph) -> (TemporalPlan, Graph) {
        let smg = build_smg(g).unwrap();
        let spatial = eligible_spatial_dims(g, &smg);
        let dim = pick_temporal_dim(g, &smg, &spatial).unwrap();
        (plan_temporal(g, &smg, dim).unwrap(), g.clone())
    }

    #[test]
    fn softmax_combines_max_then_rescaled_add() {
        let mut g = Graph::new("sm", DType::F32);
        let x = g.input("x", Shape::new(vec![8, 64]));
        let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(B::Sub, x, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(B::Div, e, z).unwrap();
        g.mark_output(d);
        let (plan, g) = plan_of(&g);
        let specs = derive_combine(&g, &plan).unwrap();
        assert_eq!(specs.len(), 2);
        // Running max: Simple aggregate, folds with max, no rescale.
        assert_eq!(
            specs[0],
            CombineSpec {
                op: B::Max,
                rescale: false
            }
        );
        // Rescaled sum: UTA partial, folds with add after rescaling.
        assert_eq!(
            specs[1],
            CombineSpec {
                op: B::Add,
                rescale: true
            }
        );
    }

    #[test]
    fn mean_partials_fold_with_add() {
        let mut g = Graph::new("mean", DType::F32);
        let x = g.input("x", Shape::new(vec![8, 64]));
        let m = g.reduce(ReduceOp::Mean, x, 1).unwrap();
        g.mark_output(m);
        let (plan, g) = plan_of(&g);
        let specs = derive_combine(&g, &plan).unwrap();
        assert_eq!(
            specs,
            vec![CombineSpec {
                op: B::Add,
                rescale: false
            }]
        );
    }

    #[test]
    fn attention_output_gemm_is_rescaled_add() {
        let mut g = Graph::new("attn", DType::F32);
        let q = g.input("q", Shape::new(vec![1, 16]));
        let k = g.input("k", Shape::new(vec![128, 16]));
        let v = g.input("v", Shape::new(vec![128, 16]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let s = g.binary(B::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(B::Div, e, z).unwrap();
        let o = g.gemm(d, v, false).unwrap();
        g.mark_output(o);
        let (plan, g) = plan_of(&g);
        let specs = derive_combine(&g, &plan).unwrap();
        // max, sum, out-GEMM along the kv dim.
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().any(|s| s.op == B::Max && !s.rescale));
        // The output GEMM carries UTA factors -> rescaled add
        // (the FlashDecoding combine).
        assert_eq!(
            *specs.last().unwrap(),
            CombineSpec {
                op: B::Add,
                rescale: true
            }
        );
    }
}
