//! Update-function generation (paper §4.3, Fig. 8).
//!
//! When a temporal slicer cuts *dependent* All-to-Ones — reductions whose
//! inputs consume the results of earlier sliced reductions — Simple
//! Aggregate is incorrect: the later intra-blocks see different values of
//! the dependency than the earlier ones did. The paper's Update-then-
//! Aggregate (UTA) fixes this by rescaling the old accumulator before
//! each aggregation step.
//!
//! The derivation here follows the paper's recipe:
//!
//! 1. **Broadcast postposition**: the input expression of each dependent
//!    reduction is algebraically factored into `core × Π factorᵢ(dᵢ)`,
//!    where each `factorᵢ` is a function of an earlier sliced reduction
//!    `dᵢ` that is *invariant along the sliced dimension* (the broadcast
//!    is pushed past the reduction). Supported factor forms:
//!    `exp(−d)` (from `exp(x − d)`), `1/d` (from `x / d`) and `d` (from
//!    `x · d`). These are exactly the algebraic rules of Fig. 8.
//! 2. **Update-path back-tracing**: the collected factors become the
//!    update function `acc ← acc · Π gᵢ(dᵢᵒˡᵈ, dᵢⁿᵉʷ)` with
//!    `g = exp(dᵒˡᵈ − dⁿᵉʷ)` for `exp(−d)`, `g = dᵒˡᵈ/dⁿᵉʷ` for `1/d`,
//!    and `g = dⁿᵉʷ/dᵒˡᵈ` for `d`.
//!
//! Applied to attention this yields
//! `updateSum = Sum·exp(Max_old − Max_new)` and
//! `updateOut = Out·(Sum_old/Sum_new)·exp(Max_old − Max_new)` — the
//! paper's Fig. 8(e), i.e. the FlashAttention online softmax, derived
//! mechanically.

use crate::error::{Result, SfError};
use crate::smg::{DimId, Smg};
use sf_ir::{Graph, OpId, OpKind, ValueId};
use sf_tensor::ops::{BinaryOp, UnaryOp};
use std::collections::HashSet;

/// The algebraic form of one multiplicative factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorForm {
    /// `factor(d) = 1/d`  →  update multiplies by `d_old / d_new`.
    Recip,
    /// `factor(d) = exp(−d)`  →  update multiplies by `exp(d_old − d_new)`.
    ExpNeg,
    /// `factor(d) = d`  →  update multiplies by `d_new / d_old`.
    Value,
}

/// One term of an update function: a factor form applied to the result of
/// an earlier sliced reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateFactor {
    /// The sliced reduction this factor depends on.
    pub dep: OpId,
    /// The algebraic form.
    pub form: FactorForm,
}

/// Derives the update factors for the sliced reduction `target`.
///
/// `sliced` lists all reductions sliced along `dim` (in topological
/// order); factors may only reference reductions appearing *before*
/// `target`. Returns an empty list when `target` is independent.
///
/// Fails with [`SfError::UpdatePath`] when the input expression cannot be
/// factored — the paper's "not all the All-to-One chains end up with
/// simplification results" case, in which the temporal slicer must give
/// up on this dimension.
pub fn update_factors(
    graph: &Graph,
    smg: &Smg,
    dim: DimId,
    target: OpId,
    sliced: &[OpId],
) -> Result<Vec<UpdateFactor>> {
    let earlier: Vec<OpId> = sliced
        .iter()
        .copied()
        .take_while(|&o| o != target)
        .collect();
    let earlier_outputs: HashSet<ValueId> =
        earlier.iter().map(|&o| graph.ops()[o.0].output).collect();

    // Values transitively depending on an earlier sliced reduction.
    let tainted = tainted_values(graph, &earlier_outputs);

    let ctx = Ctx {
        graph,
        smg,
        dim,
        earlier: &earlier,
        tainted: &tainted,
    };
    let op = &graph.ops()[target.0];
    let mut factors = Vec::new();
    for &input in &op.inputs {
        factors.extend(ctx.analyze(input)?);
    }
    // Max-like aggregations do not commute with multiplicative factors.
    if !factors.is_empty() {
        if let OpKind::Reduce { op: r, .. } = &op.kind {
            if *r == sf_tensor::ops::ReduceOp::Max {
                return Err(SfError::UpdatePath(
                    "max reduction depends on an earlier sliced reduction".into(),
                ));
            }
        }
    }
    Ok(factors)
}

/// Values reachable from the given reduction outputs.
fn tainted_values(graph: &Graph, roots: &HashSet<ValueId>) -> HashSet<ValueId> {
    let mut tainted: HashSet<ValueId> = roots.clone();
    for op in graph.ops() {
        if op.inputs.iter().any(|i| tainted.contains(i)) {
            tainted.insert(op.output);
        }
    }
    tainted
}

struct Ctx<'a> {
    graph: &'a Graph,
    smg: &'a Smg,
    dim: DimId,
    earlier: &'a [OpId],
    tainted: &'a HashSet<ValueId>,
}

impl Ctx<'_> {
    fn depends(&self, v: ValueId) -> bool {
        self.tainted.contains(&v)
    }

    /// If `v` is (a broadcast of) the result of an earlier sliced
    /// reduction, return that reduction.
    fn as_earlier_reduction(&self, mut v: ValueId) -> Option<OpId> {
        loop {
            if let Some(&r) = self
                .earlier
                .iter()
                .find(|&&o| self.graph.ops()[o.0].output == v)
            {
                // The dependency must be invariant along the sliced dim
                // (true by construction: it reduced that dim away).
                if !self.smg.value_has_dim(self.graph, v, self.dim)
                    || self.smg.extent(self.dim) == 1
                {
                    return Some(r);
                }
                return None;
            }
            // See through broadcasts and identity ops.
            match self.graph.producer(v) {
                Some(op)
                    if matches!(op.kind, OpKind::Broadcast { .. })
                        || matches!(op.kind, OpKind::Unary(UnaryOp::Identity)) =>
                {
                    v = op.inputs[0];
                }
                _ => return None,
            }
        }
    }

    /// Factors `value` into `core × Π factor(dᵢ)` and returns the factors.
    fn analyze(&self, value: ValueId) -> Result<Vec<UpdateFactor>> {
        if !self.depends(value) {
            return Ok(Vec::new());
        }
        let op = self
            .graph
            .producer(value)
            .ok_or_else(|| SfError::UpdatePath("tainted kernel input (impossible)".to_string()))?;
        match &op.kind {
            OpKind::Binary(BinaryOp::Div) => {
                let (a, b) = (op.inputs[0], op.inputs[1]);
                if let Some(dep) = self.as_earlier_reduction(b) {
                    let mut f = self.analyze(a)?;
                    f.push(UpdateFactor {
                        dep,
                        form: FactorForm::Recip,
                    });
                    Ok(f)
                } else if !self.depends(b) {
                    self.analyze(a)
                } else {
                    Err(self.fail("division by a non-reduction dependent value", op))
                }
            }
            OpKind::Binary(BinaryOp::Mul) => {
                let (a, b) = (op.inputs[0], op.inputs[1]);
                if let Some(dep) = self.as_earlier_reduction(b) {
                    let mut f = self.analyze(a)?;
                    f.push(UpdateFactor {
                        dep,
                        form: FactorForm::Value,
                    });
                    Ok(f)
                } else if let Some(dep) = self.as_earlier_reduction(a) {
                    let mut f = self.analyze(b)?;
                    f.push(UpdateFactor {
                        dep,
                        form: FactorForm::Value,
                    });
                    Ok(f)
                } else if !self.depends(b) {
                    self.analyze(a)
                } else if !self.depends(a) {
                    self.analyze(b)
                } else {
                    Err(self.fail("product of two dependent values", op))
                }
            }
            OpKind::Unary(UnaryOp::Exp) => self.analyze_exp(op.inputs[0]),
            // A constant scale commutes with the reduction and cancels in
            // the old/new ratio: it contributes no factor.
            OpKind::Scalar {
                op: BinaryOp::Mul | BinaryOp::Div,
                ..
            } => self.analyze(op.inputs[0]),
            OpKind::Broadcast { .. } | OpKind::Unary(UnaryOp::Identity) => {
                self.analyze(op.inputs[0])
            }
            // Additive mixing destroys the multiplicative factorization:
            // reduce(x·f(d) + y) has no `core × factor` form.
            other => Err(self.fail(
                &format!("cannot postpone broadcast through {}", other.name()),
                op,
            )),
        }
    }

    /// Factors `exp(inner)` where `inner` may subtract earlier reduction
    /// results: `exp(x − d) = exp(x)·exp(−d)` (broadcast postposition of
    /// Fig. 8(b)/(c)).
    fn analyze_exp(&self, inner: ValueId) -> Result<Vec<UpdateFactor>> {
        if !self.depends(inner) {
            return Ok(Vec::new());
        }
        let op = self
            .graph
            .producer(inner)
            .ok_or_else(|| SfError::UpdatePath("tainted kernel input under exp".to_string()))?;
        match &op.kind {
            OpKind::Binary(BinaryOp::Sub) => {
                let (a, b) = (op.inputs[0], op.inputs[1]);
                if let Some(dep) = self.as_earlier_reduction(b) {
                    let mut f = self.analyze_exp(a)?;
                    f.push(UpdateFactor {
                        dep,
                        form: FactorForm::ExpNeg,
                    });
                    Ok(f)
                } else if !self.depends(b) {
                    self.analyze_exp(a)
                } else {
                    Err(self.fail("exp of subtraction by non-reduction value", op))
                }
            }
            OpKind::Binary(BinaryOp::Add) => {
                let (a, b) = (op.inputs[0], op.inputs[1]);
                if !self.depends(b) {
                    self.analyze_exp(a)
                } else if !self.depends(a) {
                    self.analyze_exp(b)
                } else {
                    Err(self.fail("exp of sum of two dependent values", op))
                }
            }
            OpKind::Scalar {
                op: BinaryOp::Add | BinaryOp::Sub,
                ..
            } => self.analyze_exp(op.inputs[0]),
            other => Err(self.fail(&format!("cannot factor exp through {}", other.name()), op)),
        }
    }

    fn fail(&self, msg: &str, op: &sf_ir::OpNode) -> SfError {
        SfError::UpdatePath(format!("{msg} (at {})", op.kind.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smg::build_smg;
    use sf_tensor::ops::ReduceOp;
    use sf_tensor::{DType, Shape};

    /// Builds the MHA graph and returns (graph, smg, L dim, sliced ops).
    fn mha_setup() -> (Graph, Smg, DimId, Vec<OpId>) {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![64, 64]));
        let kk = g.input("k", Shape::new(vec![256, 64]));
        let v = g.input("v", Shape::new(vec![256, 64]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        let smg = build_smg(&g).unwrap();
        let l_dim = smg.value_axes[1][0]; // key axis 0.
                                          // Sliced reductions along L: max (op 1), sum (op 4), gemm2 (op 6).
        let sliced = vec![OpId(1), OpId(4), OpId(6)];
        (g, smg, l_dim, sliced)
    }

    #[test]
    fn max_is_independent() {
        let (g, smg, l, sliced) = mha_setup();
        let f = update_factors(&g, &smg, l, OpId(1), &sliced).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn sum_update_matches_paper_update_sum() {
        // Paper Fig. 8(e): updateSum = Sum_old * exp(Max_old)/exp(Max).
        let (g, smg, l, sliced) = mha_setup();
        let f = update_factors(&g, &smg, l, OpId(4), &sliced).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].dep, OpId(1));
        assert_eq!(f[0].form, FactorForm::ExpNeg);
    }

    #[test]
    fn out_update_matches_paper_update_out() {
        // Paper Fig. 8(e): updateOut = Out_old * Sum_old/Sum *
        // exp(Max_old)/exp(Max).
        let (g, smg, l, sliced) = mha_setup();
        let mut f = update_factors(&g, &smg, l, OpId(6), &sliced).unwrap();
        f.sort_by_key(|u| u.dep);
        assert_eq!(f.len(), 2);
        assert_eq!(
            f[0],
            UpdateFactor {
                dep: OpId(1),
                form: FactorForm::ExpNeg
            }
        );
        assert_eq!(
            f[1],
            UpdateFactor {
                dep: OpId(4),
                form: FactorForm::Recip
            }
        );
    }

    #[test]
    fn additive_mixing_fails() {
        // sum2(x + sum1(x)·broadcast) cannot be factored.
        let mut g = Graph::new("bad", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 32]));
        let s1 = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        let mixed = g.binary(BinaryOp::Add, x, s1).unwrap();
        let s2 = g.reduce(ReduceOp::Sum, mixed, 1).unwrap();
        g.mark_output(s2);
        let smg = build_smg(&g).unwrap();
        let dim = smg.value_axes[0][1];
        let sliced = vec![OpId(0), OpId(2)];
        let err = update_factors(&g, &smg, dim, OpId(2), &sliced);
        assert!(matches!(err, Err(SfError::UpdatePath(_))));
    }

    #[test]
    fn dependent_max_fails() {
        // max(x / sum(x)) — a max depending on a sliced sum has no valid
        // update function.
        let mut g = Graph::new("bad", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 32]));
        let s = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        let d = g.binary(BinaryOp::Div, x, s).unwrap();
        let m = g.reduce(ReduceOp::Max, d, 1).unwrap();
        g.mark_output(m);
        let smg = build_smg(&g).unwrap();
        let dim = smg.value_axes[0][1];
        let sliced = vec![OpId(0), OpId(2)];
        let err = update_factors(&g, &smg, dim, OpId(2), &sliced);
        assert!(matches!(err, Err(SfError::UpdatePath(_))));
    }

    #[test]
    fn variance_style_chain_fails() {
        // mean((x − mean(x))²): the square blocks postposition; this is
        // why Fig. 10(c) LayerNorm is scheduled without temporal slicing.
        let mut g = Graph::new("ln_var", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 32]));
        let m = g.reduce(ReduceOp::Mean, x, 1).unwrap();
        let c = g.binary(BinaryOp::Sub, x, m).unwrap();
        let sq = g.unary(UnaryOp::Sqr, c).unwrap();
        let v = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
        g.mark_output(v);
        let smg = build_smg(&g).unwrap();
        let dim = smg.value_axes[0][1];
        let sliced = vec![OpId(0), OpId(3)];
        let err = update_factors(&g, &smg, dim, OpId(3), &sliced);
        assert!(matches!(err, Err(SfError::UpdatePath(_))));
    }

    #[test]
    fn scalar_scale_is_transparent() {
        // sum(exp(x·s − max(x·s))) with a constant scale: same factors.
        let mut g = Graph::new("scaled_softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 32]));
        let sc = g.scalar(BinaryOp::Mul, x, 0.125).unwrap();
        let m = g.reduce(ReduceOp::Max, sc, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, sc, m).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        g.mark_output(s);
        let smg = build_smg(&g).unwrap();
        let dim = smg.value_axes[0][1];
        let sliced = vec![OpId(1), OpId(4)];
        let f = update_factors(&g, &smg, dim, OpId(4), &sliced).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].form, FactorForm::ExpNeg);
    }

    #[test]
    fn mul_by_reduction_yields_value_factor() {
        // dot(x·sum(x), w): factor `Value(sum)`.
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 32]));
        let w = g.input("w", Shape::new(vec![32, 4]));
        let s = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        let m = g.binary(BinaryOp::Mul, x, s).unwrap();
        let out = g.gemm(m, w, false).unwrap();
        g.mark_output(out);
        let smg = build_smg(&g).unwrap();
        let dim = smg.value_axes[0][1];
        let sliced = vec![OpId(0), OpId(2)];
        let f = update_factors(&g, &smg, dim, OpId(2), &sliced).unwrap();
        assert_eq!(
            f,
            vec![UpdateFactor {
                dep: OpId(0),
                form: FactorForm::Value
            }]
        );
    }
}
