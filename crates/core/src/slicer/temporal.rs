//! The temporal slicer (paper §4.3).

use super::update::{update_factors, UpdateFactor};
use crate::error::Result;
use crate::smg::{DimId, MappingKind, Smg, SpaceKind};
use sf_ir::{Graph, OpId, OpKind};
use sf_tensor::ops::ReduceOp;
use std::collections::HashSet;

/// How a sliced reduction aggregates across intra-blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum AggKind {
    /// Simple Aggregate: the reduction is independent; partial results
    /// combine directly (running max / running sum).
    Simple,
    /// Update-then-Aggregate: the old accumulator is rescaled by the
    /// update function before combining (paper Fig. 7, right).
    Uta(Vec<UpdateFactor>),
}

/// One reduction cut by the temporal slicer.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedReduction {
    /// The reduction operator (a `Reduce` or a GEMM whose contraction
    /// dimension is the sliced dimension).
    pub op: OpId,
    /// Aggregation strategy.
    pub agg: AggKind,
}

/// A temporal slicing plan for one SMG block.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalPlan {
    /// The sliced dimension.
    pub dim: DimId,
    /// Reductions cut by the slicer, in topological order.
    pub sliced: Vec<SlicedReduction>,
    /// Whether execution needs two passes over the intra-blocks: pass 1
    /// computes the sliced reductions, pass 2 re-streams the tiles to
    /// produce outputs that span the sliced dimension with the *final*
    /// aggregates. Single-pass execution (the FlashAttention shape) is
    /// possible only when no kernel output spans the sliced dimension and
    /// no mid-loop consumer needs a finalized value.
    pub two_phase: bool,
}

/// Picks the highest-priority dimension for temporal slicing.
///
/// Paper §5.1: "a dimension with higher priority is recognized as a
/// dimension along which an SMG block possesses a larger volume of data
/// space" — slicing it yields the largest on-chip footprint reduction.
/// Dimensions already sliced spatially are excluded.
pub fn pick_temporal_dim(graph: &Graph, smg: &Smg, spatial: &[DimId]) -> Option<DimId> {
    let mut best: Option<(DimId, u64)> = None;
    for d in (0..smg.dims.len()).map(DimId) {
        if spatial.contains(&d) || smg.extent(d) <= 1 {
            continue;
        }
        let volume: u64 = smg
            .spaces
            .iter()
            .filter_map(|s| match s.kind {
                SpaceKind::Data { value } if s.dims.contains(&d) => {
                    Some(graph.shape(value).volume() as u64)
                }
                _ => None,
            })
            .sum();
        if volume == 0 {
            continue;
        }
        if best.map(|(_, v)| volume > v).unwrap_or(true) {
            best = Some((d, volume));
        }
    }
    best.map(|(d, _)| d)
}

/// Builds the temporal slicing plan for dimension `dim`.
///
/// Classifies the All-to-One mappings in the dimension (Table 3):
/// independent reductions get Simple Aggregate; dependent chains get UTA
/// with derived update functions; and an unfactorable chain fails with
/// [`crate::error::SfError::UpdatePath`] (the caller then abandons this
/// dimension).
pub fn plan_temporal(graph: &Graph, smg: &Smg, dim: DimId) -> Result<TemporalPlan> {
    // Reductions whose iteration space carries an A2O along `dim`.
    let mut sliced_ops: Vec<OpId> = Vec::new();
    for m in smg.mappings_in_dim(dim) {
        if let MappingKind::AllToOne(_) = m.kind {
            if let SpaceKind::Iter { op } = smg.spaces[m.src.0].kind {
                if !sliced_ops.contains(&op) {
                    sliced_ops.push(op);
                }
            }
        }
    }
    sliced_ops.sort();

    // Derive aggregation strategies.
    let mut sliced = Vec::with_capacity(sliced_ops.len());
    for &op in &sliced_ops {
        let factors = update_factors(graph, smg, dim, op, &sliced_ops)?;
        let agg = if factors.is_empty() {
            AggKind::Simple
        } else {
            AggKind::Uta(factors)
        };
        sliced.push(SlicedReduction { op, agg });
    }

    // Two-phase analysis.
    let sliced_outputs: HashSet<_> = sliced_ops
        .iter()
        .map(|&o| graph.ops()[o.0].output)
        .collect();

    // Phase-1 feasibility: every op transitively feeding a sliced
    // reduction runs inside the loop, so each of its *produced* inputs
    // must either span `dim` (recomputed per tile) or be a running
    // aggregate of an earlier sliced reduction. A produced value outside
    // the sliced dimension only exists after the loop — no phase
    // ordering can evaluate such a reduction, so the dimension must be
    // abandoned. (Graph inputs and weights are exempt: they live in
    // global memory and stage before the loop.)
    let mut produced_by = vec![None; graph.values().len()];
    for (oi, op) in graph.ops().iter().enumerate() {
        produced_by[op.output.0] = Some(oi);
    }
    let mut needed = vec![false; graph.ops().len()];
    let mut stack: Vec<usize> = sliced_ops.iter().map(|o| o.0).collect();
    while let Some(oi) = stack.pop() {
        if std::mem::replace(&mut needed[oi], true) {
            continue;
        }
        for &input in &graph.ops()[oi].inputs {
            if let Some(p) = produced_by[input.0] {
                stack.push(p);
            }
        }
    }
    for (oi, op) in graph.ops().iter().enumerate() {
        if !needed[oi] {
            continue;
        }
        for &input in &op.inputs {
            if produced_by[input.0].is_some()
                && !sliced_outputs.contains(&input)
                && !smg.value_has_dim(graph, input, dim)
            {
                return Err(crate::error::SfError::UpdatePath(format!(
                    "sliced reduction depends on '{}', a produced value outside the sliced \
                     dimension; it is only available after the loop",
                    graph.value(input).name
                )));
            }
        }
    }

    // (a) A kernel output spanning `dim` cannot be finalized mid-loop.
    let mut two_phase = graph
        .outputs()
        .iter()
        .any(|&v| smg.value_has_dim(graph, v, dim));

    // (b) A mean reduction has no meaningful running value, so any
    // in-loop consumer of it needs the finalized result.
    // (c) An in-loop op consuming a post-loop value (one computed from
    // finalized aggregates) likewise forces a second pass.
    for op in graph.ops() {
        let in_loop = smg.value_has_dim(graph, op.output, dim);
        if !in_loop {
            continue;
        }
        for &input in &op.inputs {
            if sliced_outputs.contains(&input) {
                if let Some(p) = graph.producer(input) {
                    if matches!(
                        p.kind,
                        OpKind::Reduce {
                            op: ReduceOp::Mean,
                            ..
                        }
                    ) {
                        two_phase = true;
                    }
                }
            } else if !smg.value_has_dim(graph, input, dim) && graph.producer(input).is_some() {
                // Input lives outside the loop and is not a running
                // aggregate: it is only available after the loop.
                two_phase = true;
            }
        }
    }

    Ok(TemporalPlan {
        dim,
        sliced,
        two_phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SfError;
    use crate::slicer::update::FactorForm;
    use crate::smg::build_smg;
    use sf_tensor::ops::{BinaryOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(m: usize, l: usize, k: usize) -> (Graph, Smg) {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![m, k]));
        let kk = g.input("k", Shape::new(vec![l, k]));
        let v = g.input("v", Shape::new(vec![l, k]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        let smg = build_smg(&g).unwrap();
        (g, smg)
    }

    #[test]
    fn mha_priority_dim_is_sequence_length() {
        let (g, smg) = mha(64, 512, 64);
        let m_dim = smg.value_axes[0][0];
        let dim = pick_temporal_dim(&g, &smg, &[m_dim]).unwrap();
        assert_eq!(smg.extent(dim), 512);
    }

    #[test]
    fn mha_plan_is_single_pass_flash_attention() {
        let (g, smg) = mha(64, 512, 64);
        let m_dim = smg.value_axes[0][0];
        let dim = pick_temporal_dim(&g, &smg, &[m_dim]).unwrap();
        let plan = plan_temporal(&g, &smg, dim).unwrap();
        // Three sliced reductions: max (SA), sum (UTA/max), out (UTA/
        // max+sum). Output does not span L, so single pass.
        assert!(!plan.two_phase);
        assert_eq!(plan.sliced.len(), 3);
        assert_eq!(plan.sliced[0].agg, AggKind::Simple);
        match &plan.sliced[1].agg {
            AggKind::Uta(f) => {
                assert_eq!(f.len(), 1);
                assert_eq!(f[0].form, FactorForm::ExpNeg);
            }
            other => panic!("sum should be UTA, got {other:?}"),
        }
        match &plan.sliced[2].agg {
            AggKind::Uta(f) => assert_eq!(f.len(), 2),
            other => panic!("out should be UTA, got {other:?}"),
        }
    }

    #[test]
    fn softmax_output_forces_two_phase() {
        // Standalone softmax: the div output spans the sliced dimension.
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![32, 128]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        let smg = build_smg(&g).unwrap();
        let n_dim = smg.value_axes[0][1];
        let plan = plan_temporal(&g, &smg, n_dim).unwrap();
        assert!(plan.two_phase);
        assert_eq!(plan.sliced.len(), 2);
    }

    #[test]
    fn independent_reductions_use_simple_aggregate() {
        // RMSNorm-style: mean(x²) is independent of everything.
        let mut g = Graph::new("rms", DType::F16);
        let x = g.input("x", Shape::new(vec![16, 64]));
        let sq = g.unary(UnaryOp::Sqr, x).unwrap();
        let ms = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
        g.mark_output(ms);
        let smg = build_smg(&g).unwrap();
        let n_dim = smg.value_axes[0][1];
        let plan = plan_temporal(&g, &smg, n_dim).unwrap();
        assert_eq!(plan.sliced.len(), 1);
        assert_eq!(plan.sliced[0].agg, AggKind::Simple);
        assert!(!plan.two_phase, "output does not span the sliced dim");
    }

    #[test]
    fn layernorm_variance_chain_is_rejected() {
        let mut g = Graph::new("ln", DType::F16);
        let x = g.input("x", Shape::new(vec![16, 64]));
        let m = g.reduce(ReduceOp::Mean, x, 1).unwrap();
        let c = g.binary(BinaryOp::Sub, x, m).unwrap();
        let sq = g.unary(UnaryOp::Sqr, c).unwrap();
        let v = g.reduce(ReduceOp::Mean, sq, 1).unwrap();
        g.mark_output(v);
        let smg = build_smg(&g).unwrap();
        let n_dim = smg.value_axes[0][1];
        assert!(matches!(
            plan_temporal(&g, &smg, n_dim),
            Err(SfError::UpdatePath(_))
        ));
    }

    #[test]
    fn reduction_fed_by_value_outside_dim_is_rejected() {
        // softmax(x) @ W, then reduce over the GEMM's N dimension:
        // slicing N puts the whole softmax chain outside the loop, yet
        // the sliced reduction needs it in phase 1. No legal phase
        // ordering exists, so the dimension must be abandoned (the
        // tuner then falls back to the next dimension or stays serial).
        let mut g = Graph::new("smgemm", DType::F32);
        let x = g.input("x", Shape::new(vec![2, 2]));
        let w = g.weight("w", Shape::new(vec![2, 32]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        let mm = g.gemm(d, w, false).unwrap();
        let r = g.reduce(ReduceOp::Sum, mm, 1).unwrap();
        g.mark_output(r);
        let smg = build_smg(&g).unwrap();
        // The GEMM output's N axis (extent 32) is the reduce dim.
        let n_dim = smg.value_axes[mm.0][1];
        assert_eq!(smg.extent(n_dim), 32);
        assert!(matches!(
            plan_temporal(&g, &smg, n_dim),
            Err(SfError::UpdatePath(_))
        ));
    }

    #[test]
    fn pick_dim_excludes_spatial_and_unit_dims() {
        let (g, smg) = mha(64, 512, 64);
        let all: Vec<DimId> = (0..smg.dims.len()).map(DimId).collect();
        assert_eq!(pick_temporal_dim(&g, &smg, &all), None);
    }
}
