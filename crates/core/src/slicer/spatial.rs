//! The spatial slicer (paper §4.2).

use crate::smg::{DimId, MappingKind, Smg};
use sf_ir::Graph;

/// Dimensions eligible for spatial slicing.
///
/// Per Table 3, a dimension can be spatially sliced when every mapping in
/// the dimension is an *input* One-to-All — the source data space is a
/// kernel input resident in global memory, visible to all thread blocks,
/// so slicing induces no inter-block flow dependency — or when the
/// dimension carries no mappings at all. Any All-to-One, or a One-to-All
/// sourced from an intermediate, disqualifies the dimension.
///
/// Dimensions of extent 1 are skipped (nothing to parallelize).
pub fn eligible_spatial_dims(graph: &Graph, smg: &Smg) -> Vec<DimId> {
    (0..smg.dims.len())
        .map(DimId)
        .filter(|&d| smg.extent(d) > 1)
        .filter(|&d| {
            smg.mappings_in_dim(d).iter().all(|m| match m.kind {
                MappingKind::OneToAll(_) => smg.is_kernel_input_space(graph, m.src),
                MappingKind::AllToOne(_) => false,
                MappingKind::OneToOne => true,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smg::build_smg;
    use sf_ir::{Graph, ValueId};
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(m: usize, l: usize, k: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![m, k]));
        let kk = g.input("k", Shape::new(vec![l, k]));
        let v = g.input("v", Shape::new(vec![l, k]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn mha_is_sliceable_along_m_only() {
        // Paper §4.2: "Dim2 is the only dimension eligible for being
        // spatially sliced, as solely an input One-to-All resides within
        // Dim2."
        let g = mha(64, 256, 64);
        let smg = build_smg(&g).unwrap();
        let dims = eligible_spatial_dims(&g, &smg);
        assert_eq!(dims.len(), 1);
        let m_dim = smg.value_axes[ValueId(0).0][0]; // q axis 0 = M.
        assert_eq!(dims[0], m_dim);
    }

    #[test]
    fn standalone_gemm_slices_both_output_dims() {
        let mut g = Graph::new("gemm", DType::F16);
        let a = g.input("a", Shape::new(vec![64, 128]));
        let b = g.weight("b", Shape::new(vec![128, 96]));
        let c = g.gemm(a, b, false).unwrap();
        g.mark_output(c);
        let smg = build_smg(&g).unwrap();
        let dims = eligible_spatial_dims(&g, &smg);
        // M and N are eligible (both carry only input O2As); K is not
        // (A2O).
        assert_eq!(dims.len(), 2);
        let k_dim = smg.value_axes[ValueId(0).0][1];
        assert!(!dims.contains(&k_dim));
    }

    #[test]
    fn softmax_slices_rows_only() {
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![32, 64]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        let smg = build_smg(&g).unwrap();
        let dims = eligible_spatial_dims(&g, &smg);
        assert_eq!(dims.len(), 1);
        assert_eq!(smg.extent(dims[0]), 32);
    }

    #[test]
    fn intermediate_broadcast_blocks_spatial_slicing() {
        // div(exp, sum) as a standalone kernel: sum is a kernel *input*
        // here, so its O2A is an input O2A and N becomes sliceable. The
        // same op fused behind the producing reduction is not sliceable
        // along N — the distinction of Table 3.
        let mut standalone = Graph::new("div", DType::F16);
        let e = standalone.input("exp", Shape::new(vec![8, 32]));
        let s = standalone.input("sum", Shape::new(vec![8, 1]));
        let d = standalone.binary(BinaryOp::Div, e, s).unwrap();
        standalone.mark_output(d);
        let smg = build_smg(&standalone).unwrap();
        let dims = eligible_spatial_dims(&standalone, &smg);
        assert_eq!(dims.len(), 2, "both dims sliceable for standalone div");
    }

    #[test]
    fn unit_extent_dims_are_skipped() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![1, 64]));
        let y = g.unary(UnaryOp::Relu, x).unwrap();
        g.mark_output(y);
        let smg = build_smg(&g).unwrap();
        let dims = eligible_spatial_dims(&g, &smg);
        assert_eq!(dims.len(), 1);
        assert_eq!(smg.extent(dims[0]), 64);
    }
}
