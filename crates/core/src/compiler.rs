//! The end-to-end compilation pipeline (paper Fig. 9).
//!
//! `Graph → segments → SMG → resource-aware slicing → (partitioning) →
//! auto-tuning → kernel programs`. The [`FusionPolicy`] knob restricts
//! the pipeline's capabilities to model the baseline systems of the
//! evaluation (Table 2): an unfused PyTorch-eager baseline, cuBLASLt-like
//! GEMM-epilogue fusion, AStitch-like memory-intensive-only fusion, and
//! Welder-like tile-graph fusion without dependency transformation.
//!
//! Repetitive subprograms are compiled once: scheduling decisions are
//! cached by shape key (paper §5: "SpaceFusion compiles the repetitive
//! ones only once").

use crate::codegen::{estimate_cost, execute_kernel, trace_kernel, KernelProgram};
use crate::error::{Result, SfError};
use crate::sched::{
    assign_memory, partition, resource_aware_slicing, FusedSchedule, SlicingOptions,
    TemporalSchedule,
};
use crate::slicer::{eligible_spatial_dims, pick_temporal_dim, plan_temporal};
use crate::smg::{build_smg, Smg};
use crate::tune::tune;
use sf_gpu_sim::{Arch, GpuArch, KernelCost, Profiler, ProgramStats};
use sf_ir::{analysis, segment, Graph, OpKind, ValueKind};
use sf_tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// What the compiler is allowed to fuse — SpaceFusion itself plus the
/// restricted capability sets of the baseline systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionPolicy {
    /// Full SpaceFusion: SMG slicing, UTA, partitioning, tuning.
    SpaceFusion,
    /// One kernel per operator (PyTorch-eager / cuBLAS style).
    Unfused,
    /// GEMMs absorb their element-wise epilogues (cuBLASLt style).
    EpilogueOnly,
    /// Only memory-intensive operators fuse; GEMMs stay standalone
    /// (AStitch / BladeDISC style).
    MiOnly,
    /// Tile-graph fusion: full fusion scope but no intra-operator
    /// dependency transformation — UTA disabled (Welder / NNFusion
    /// style). Oversized fusions fall back to partitioning.
    TileGraph,
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Fusion capability set.
    pub policy: FusionPolicy,
    /// Slicing options (temporal/UTA toggles, fixed blocks for
    /// ablations).
    pub slicing: SlicingOptions,
    /// Whether to auto-tune block sizes. When disabled, the last
    /// (most-sliced) feasible candidate is used — the paper's
    /// expert-fixed-configuration ablation.
    pub autotune: bool,
    /// Early-quit proportion α (paper §6.5 uses 0.25).
    pub alpha: f64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            policy: FusionPolicy::SpaceFusion,
            slicing: SlicingOptions::default(),
            autotune: true,
            alpha: 0.25,
        }
    }
}

/// Timing and search-space statistics of one compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Time in spatial-slicer analysis (`SS.getDims + SS.slice`), µs.
    pub spatial_us: f64,
    /// Time in temporal-slicer analysis (`TS.getPriorDim + TS.slice`), µs.
    pub temporal_us: f64,
    /// Time enumerating and checking configurations (`enumCfg`), µs.
    pub enum_us: f64,
    /// Time evaluating candidates in the tuner, µs.
    pub tune_us: f64,
    /// Wall-clock total, µs.
    pub total_us: f64,
    /// Configurations generated.
    pub configs: usize,
    /// Configurations fully evaluated by the tuner.
    pub evaluated: usize,
    /// Configurations abandoned by the early-quit rule.
    pub pruned: usize,
    /// Subprograms served from the schedule cache.
    pub cache_hits: usize,
    /// Pattern signatures of fused kernels containing ≥ 2 All-to-One
    /// mappings (the paper's §6.6 census unit).
    pub fusion_patterns: Vec<String>,
}

/// A compiled program: an ordered list of kernels over a shared tensor
/// environment.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Kernels in execution order.
    pub kernels: Vec<KernelProgram>,
    /// Dependency-free instance multiplier (batch × heads).
    pub instances: usize,
    /// Program outputs: the environment name that holds each value
    /// (layout barriers are resolved to their source) and the declared
    /// output shape it is viewed under.
    pub outputs: Vec<(String, sf_tensor::Shape)>,
    /// Architecture compiled for.
    pub arch: GpuArch,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Result of profiling a compiled program on the simulator.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Cache and DRAM counters.
    pub stats: ProgramStats,
    /// Per-kernel costs.
    pub kernels: Vec<KernelCost>,
    /// Simulated wall time, µs.
    pub time_us: f64,
}

impl CompiledProgram {
    /// Executes the program numerically over named bindings.
    ///
    /// Returns the output tensors in the original graph's output order.
    pub fn execute(&self, bindings: &HashMap<String, Tensor>) -> Result<Vec<Tensor>> {
        let mut env = bindings.clone();
        for k in &self.kernels {
            execute_kernel(k, &mut env)?;
        }
        self.outputs
            .iter()
            .map(|(n, shape)| {
                let t = env
                    .get(n)
                    .ok_or_else(|| SfError::Codegen(format!("missing output '{n}'")))?;
                if t.shape() == shape {
                    Ok(t.clone())
                } else {
                    // The declared output sits behind a layout barrier.
                    Ok(t.reshape(shape.clone())?)
                }
            })
            .collect()
    }

    /// Profiles the program through the cache-simulating profiler.
    ///
    /// `replay_instances` caps how many batch instances are replayed in
    /// detail; counters are scaled up to the full instance count.
    pub fn profile(&self, replay_instances: usize) -> ProfileReport {
        let mut profiler = Profiler::new(&self.arch);
        // Allocate every distinct global value once, across all kernels.
        let mut bufs = HashMap::new();
        for k in &self.kernels {
            for v in k.graph.values() {
                let global = matches!(v.kind, ValueKind::Input | ValueKind::Weight)
                    || k.graph
                        .outputs()
                        .iter()
                        .any(|&o| k.graph.value(o).name == v.name);
                if global && !bufs.contains_key(&v.name) {
                    let bytes = (v.shape.volume() * v.dtype.size_bytes()) as u64
                        * self.instances as u64;
                    bufs.insert(v.name.clone(), profiler.alloc(bytes));
                }
            }
        }
        let replay = replay_instances.clamp(1, self.instances);
        for k in &self.kernels {
            trace_kernel(k, &mut profiler, &bufs, replay, self.instances as u64);
        }
        let factor = self.instances as f64 / replay as f64;
        let scale = |x: u64| (x as f64 * factor) as u64;

        let mut stats = profiler.stats().clone();
        stats.l1_accesses = scale(stats.l1_accesses);
        stats.l1_misses = scale(stats.l1_misses);
        stats.l2_accesses = scale(stats.l2_accesses);
        stats.l2_misses = scale(stats.l2_misses);
        stats.dram_read_bytes = scale(stats.dram_read_bytes);
        stats.dram_write_bytes = scale(stats.dram_write_bytes);

        let kernels: Vec<KernelCost> = profiler
            .kernels()
            .iter()
            .map(|k| {
                let mut k = k.clone();
                k.flops = scale(k.flops);
                k.global_read_bytes = scale(k.global_read_bytes);
                k.global_write_bytes = scale(k.global_write_bytes);
                k.dram_read_bytes = scale(k.dram_read_bytes);
                k.dram_write_bytes = scale(k.dram_write_bytes);
                k.l2_bytes = scale(k.l2_bytes);
                k
            })
            .collect();
        let time_us = self.arch.program_time_us(&kernels);
        ProfileReport { stats, kernels, time_us }
    }

    /// Analytic time estimate (no cache simulation), µs.
    pub fn estimate_us(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| self.arch.kernel_time_us(&estimate_cost(k, self.instances as u64)))
            .sum()
    }
}

/// Whether ops `[i, i+5)` form the canonical softmax chain
/// `max → sub → exp → sum → div` over one dimension.
fn is_softmax_chain(g: &Graph, i: usize) -> bool {
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    let ops = g.ops();
    if i + 5 > ops.len() {
        return false;
    }
    let dim = match ops[i].kind {
        OpKind::Reduce { op: ReduceOp::Max, dim } => dim,
        _ => return false,
    };
    matches!(ops[i + 1].kind, OpKind::Binary(BinaryOp::Sub))
        && ops[i + 1].inputs[1] == ops[i].output
        && matches!(ops[i + 2].kind, OpKind::Unary(UnaryOp::Exp))
        && ops[i + 2].inputs[0] == ops[i + 1].output
        && matches!(ops[i + 3].kind, OpKind::Reduce { op: ReduceOp::Sum, dim: d } if d == dim)
        && ops[i + 3].inputs[0] == ops[i + 2].output
        && matches!(ops[i + 4].kind, OpKind::Binary(BinaryOp::Div))
        && ops[i + 4].inputs[0] == ops[i + 2].output
        && ops[i + 4].inputs[1] == ops[i + 3].output
}

/// Saved scheduling decision for one (sub)graph shape.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Op counts of the consecutive kernels the graph splits into.
    piece_lens: Vec<usize>,
    /// Per-kernel block configuration.
    configs: Vec<SavedConfig>,
}

#[derive(Debug, Clone)]
struct SavedConfig {
    spatial: Vec<usize>,
    temporal: Option<usize>,
}

/// The SpaceFusion compiler for one target architecture.
pub struct Compiler {
    arch: GpuArch,
    opts: CompileOptions,
    cache: RefCell<HashMap<String, CacheEntry>>,
}

impl Compiler {
    /// Creates a compiler for the given architecture.
    pub fn new(arch: Arch, opts: CompileOptions) -> Self {
        Compiler { arch: arch.config(), opts, cache: RefCell::new(HashMap::new()) }
    }

    /// Creates a compiler for an explicit hardware configuration (e.g. a
    /// variant with a different per-kernel launch overhead).
    pub fn new_with_config(arch: GpuArch, opts: CompileOptions) -> Self {
        Compiler { arch, opts, cache: RefCell::new(HashMap::new()) }
    }

    /// Compiler with the same target but different options (used for the
    /// fixed-block fallback).
    fn with_options(&self, opts: CompileOptions) -> Self {
        Compiler { arch: self.arch.clone(), opts, cache: RefCell::new(HashMap::new()) }
    }

    /// Creates a compiler with default options under a fusion policy.
    pub fn with_policy(arch: Arch, policy: FusionPolicy) -> Self {
        let mut opts = CompileOptions { policy, ..Default::default() };
        if policy == FusionPolicy::TileGraph {
            opts.slicing.enable_uta = false;
        }
        Compiler::new(arch, opts)
    }

    /// Target configuration.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Compiles a graph into a [`CompiledProgram`].
    pub fn compile(&self, graph: &Graph) -> Result<CompiledProgram> {
        let t0 = Instant::now();
        let mut stats = CompileStats::default();

        let has_barrier = graph
            .ops()
            .iter()
            .any(|o| matches!(o.kind, OpKind::LayoutBarrier));
        let segments: Vec<Graph> =
            if has_barrier { segment(graph)? } else { vec![graph.clone()] };

        let mut kernels = Vec::new();
        for seg in &segments {
            let groups = self.group(seg)?;
            for g in groups {
                kernels.extend(self.lower_group(g, &mut stats, false)?);
            }
        }

        // Resolve each output through any trailing layout barriers: the
        // kernels materialize the barrier's *source* value.
        let outputs = graph
            .outputs()
            .iter()
            .map(|&v| {
                let shape = graph.shape(v).clone();
                let mut src = v;
                while let Some(op) = graph.producer(src) {
                    if matches!(op.kind, OpKind::LayoutBarrier) {
                        src = op.inputs[0];
                    } else {
                        break;
                    }
                }
                (graph.value(src).name.clone(), shape)
            })
            .collect();
        stats.total_us = t0.elapsed().as_secs_f64() * 1e6;
        Ok(CompiledProgram {
            kernels,
            instances: graph.instances,
            outputs,
            arch: self.arch.clone(),
            stats,
        })
    }

    /// Splits a segment into fusion groups according to the policy.
    fn group(&self, g: &Graph) -> Result<Vec<Graph>> {
        let n = g.ops().len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let boundaries: Vec<usize> = match self.opts.policy {
            FusionPolicy::SpaceFusion | FusionPolicy::TileGraph => vec![0],
            FusionPolicy::Unfused => {
                // PyTorch-eager: one kernel per *framework op*. Softmax
                // is a single framework op (one fused CUDA kernel in
                // eager mode), so its five-primitive chain stays one
                // kernel; everything else launches separately.
                let mut b = Vec::new();
                let mut i = 0;
                while i < n {
                    b.push(i);
                    i += if is_softmax_chain(g, i) { 5 } else { 1 };
                }
                b
            }
            FusionPolicy::EpilogueOnly => {
                let mut b = vec![0];
                for (i, op) in g.ops().iter().enumerate().skip(1) {
                    match op.kind {
                        // GEMMs and reductions start new kernels;
                        // element-wise ops ride along as epilogues.
                        OpKind::Gemm { .. } | OpKind::Reduce { .. } => b.push(i),
                        _ => {}
                    }
                }
                b
            }
            FusionPolicy::MiOnly => {
                let mut b = vec![0];
                for (i, op) in g.ops().iter().enumerate().skip(1) {
                    let is_ci = matches!(op.kind, OpKind::Gemm { .. });
                    let prev_ci = matches!(g.ops()[i - 1].kind, OpKind::Gemm { .. });
                    if is_ci || prev_ci {
                        b.push(i);
                    }
                }
                b
            }
        };
        let mut groups = Vec::with_capacity(boundaries.len());
        for (bi, &start) in boundaries.iter().enumerate() {
            let end = boundaries.get(bi + 1).copied().unwrap_or(n);
            groups.push(partition::extract_ops(
                g,
                start,
                end,
                &format!("{}.g{}", g.name(), bi),
            )?);
        }
        Ok(groups)
    }

    /// Schedules a fusion group, partitioning recursively when slicing
    /// fails (Algorithm 2 + §5.3 candidates). `partitioned` records that
    /// this group is a fallback fragment of a failed fusion: fragments
    /// execute fine but do not count as *discovered* fusion patterns in
    /// the §6.6 census.
    fn lower_group(
        &self,
        g: Graph,
        stats: &mut CompileStats,
        partitioned: bool,
    ) -> Result<Vec<KernelProgram>> {
        // Schedule cache (repetitive subprograms compile once).
        let key = format!("{:?}|{}", self.opts.policy, segment::shape_key(&g));
        if let Some(entry) = self.cache.borrow().get(&key).cloned() {
            stats.cache_hits += 1;
            let kps = self.rebuild_from_cache(&g, &entry, stats)?;
            if !partitioned {
                for k in &kps {
                    if k.is_fused() && k.schedule.smg.a2o_count() >= 2 {
                        stats.fusion_patterns.push(analysis::pattern_signature(&k.graph));
                    }
                }
            }
            return Ok(kps);
        }

        let mut intended_fusion = true;
        let kps = match self.try_schedule(&g, stats) {
            Ok(kp) => vec![kp],
            Err(SfError::ResourceInfeasible(_))
            | Err(SfError::NoSpatialDim(_))
            | Err(SfError::SmgBuild(_)) => {
                // Expert-pinned block sizes can be infeasible for shapes
                // the expert never tuned (a fixed 16-row LayerNorm block
                // at N = 32K). Hand-tuned kernels adapt their block
                // count rather than refuse; model that by halving the
                // pinned sizes, then falling back to full tuning.
                if self.opts.slicing.fixed_spatial_block.is_some()
                    || self.opts.slicing.fixed_temporal_block.is_some()
                {
                    let mut relaxed = self.opts.clone();
                    let hs = relaxed.slicing.fixed_spatial_block.map(|b| (b / 2).max(1));
                    let ht = relaxed.slicing.fixed_temporal_block.map(|b| (b / 2).max(1));
                    if hs != relaxed.slicing.fixed_spatial_block
                        || ht != relaxed.slicing.fixed_temporal_block
                    {
                        relaxed.slicing.fixed_spatial_block = hs;
                        relaxed.slicing.fixed_temporal_block = ht;
                    } else {
                        relaxed.slicing.fixed_spatial_block = None;
                        relaxed.slicing.fixed_temporal_block = None;
                        relaxed.autotune = true;
                    }
                    return self.with_options(relaxed).lower_group(g, stats, partitioned);
                }
                intended_fusion = false;
                let arch = &self.arch;
                let slicing = &self.opts.slicing;
                let schedulable = |cand: &Graph| -> bool {
                    build_smg(cand)
                        .ok()
                        .and_then(|smg| {
                            resource_aware_slicing(cand, &smg, arch, slicing).ok()
                        })
                        .is_some()
                };
                let round = partition::partition_round(&g, &schedulable);
                let (gf, gl) = match round {
                    Ok(pair) => pair,
                    Err(e) => {
                        // Expert-pinned block sizes can be infeasible for
                        // a shape the expert never tuned (e.g. a fixed
                        // 16-row LayerNorm block at N = 32K). Hand-tuned
                        // kernels adapt their block count in that case;
                        // model it by relaxing the pinned sizes once.
                        if self.opts.slicing.fixed_spatial_block.is_some()
                            || self.opts.slicing.fixed_temporal_block.is_some()
                        {
                            let mut relaxed = self.opts.clone();
                            relaxed.slicing.fixed_spatial_block = None;
                            relaxed.slicing.fixed_temporal_block = None;
                            relaxed.autotune = true;
                            return self
                                .with_options(relaxed)
                                .lower_group(g, stats, partitioned);
                        }
                        return Err(e);
                    }
                };
                let cut = gf.ops().len();

                let mut primary = self.lower_group(gf, stats, true)?;
                primary.extend(self.lower_group(gl, stats, true)?);

                // §5.3: also consider moving the trailing non-A2O unit.
                if let Some(alt) = partition::alternative_cut(&g, cut) {
                    if let Ok((gf2, gl2)) = partition::split_graph(&g, alt) {
                        if schedulable(&gf2) {
                            let mut alt_stats = CompileStats::default();
                            if let (Ok(mut a), Ok(b)) = (
                                self.lower_group(gf2, &mut alt_stats, true),
                                self.lower_group(gl2, &mut alt_stats, true),
                            ) {
                                a.extend(b);
                                if self.sequence_us(&a, g.instances) +
                                    f64::EPSILON
                                    < self.sequence_us(&primary, g.instances)
                                {
                                    primary = a;
                                }
                            }
                        }
                    }
                }
                primary
            }
            Err(e) => return Err(e),
        };

        // Record in the cache and the fusion-pattern census.
        let entry = CacheEntry {
            piece_lens: kps.iter().map(|k| k.graph.ops().len()).collect(),
            configs: kps
                .iter()
                .map(|k| SavedConfig {
                    spatial: k.schedule.spatial.iter().map(|&(_, b)| b).collect(),
                    temporal: k.schedule.temporal.as_ref().map(|t| t.block),
                })
                .collect(),
        };
        self.cache.borrow_mut().insert(key, entry);
        // §6.6 census: only *intended* fusions count as discovered
        // patterns — fragments produced by the Algorithm-2 fallback are
        // fusion failures, not discoveries.
        if !partitioned && intended_fusion {
            for k in &kps {
                if k.is_fused() && k.schedule.smg.a2o_count() >= 2 {
                    stats.fusion_patterns.push(analysis::pattern_signature(&k.graph));
                }
            }
        }
        Ok(kps)
    }

    /// Total estimated time of a kernel sequence (for §5.3 comparison).
    fn sequence_us(&self, kps: &[KernelProgram], instances: usize) -> f64 {
        kps.iter()
            .map(|k| self.arch.kernel_time_us(&estimate_cost(k, instances as u64)))
            .sum()
    }

    /// Schedules one graph as a single fused kernel (Alg. 1 + tuning).
    fn try_schedule(&self, g: &Graph, stats: &mut CompileStats) -> Result<KernelProgram> {
        let smg = build_smg(g)?;

        // Phase timings (Table 4 instrumentation).
        let t = Instant::now();
        let spatial_dims = eligible_spatial_dims(g, &smg);
        stats.spatial_us += t.elapsed().as_secs_f64() * 1e6;

        let t = Instant::now();
        if self.opts.slicing.enable_temporal {
            if let Some(d) = pick_temporal_dim(g, &smg, &spatial_dims) {
                let _ = plan_temporal(g, &smg, d);
            }
        }
        stats.temporal_us += t.elapsed().as_secs_f64() * 1e6;

        let t = Instant::now();
        let schedules = resource_aware_slicing(g, &smg, &self.arch, &self.opts.slicing)?;
        stats.enum_us += t.elapsed().as_secs_f64() * 1e6;
        stats.configs += schedules.len();

        let candidates: Vec<KernelProgram> = schedules
            .into_iter()
            .map(|s| KernelProgram::new(g.name().to_string(), g.clone(), s))
            .collect();

        let t = Instant::now();
        let pick = if self.opts.autotune {
            let r = tune(&candidates, &self.arch, g.instances as u64, self.opts.alpha);
            stats.evaluated += r.evaluated;
            stats.pruned += r.pruned;
            r.best
        } else {
            candidates.len() - 1
        };
        stats.tune_us += t.elapsed().as_secs_f64() * 1e6;

        Ok(candidates.into_iter().nth(pick).expect("pick in range"))
    }

    /// Rebuilds kernels for a graph whose shape was already scheduled.
    fn rebuild_from_cache(
        &self,
        g: &Graph,
        entry: &CacheEntry,
        _stats: &mut CompileStats,
    ) -> Result<Vec<KernelProgram>> {
        let mut out = Vec::with_capacity(entry.piece_lens.len());
        let mut start = 0usize;
        for (len, cfg) in entry.piece_lens.iter().zip(&entry.configs) {
            let piece = partition::extract_ops(g, start, start + len, g.name())?;
            start += len;
            out.push(self.schedule_from_config(piece, cfg)?);
        }
        Ok(out)
    }

    /// Builds a kernel directly from a saved block configuration.
    fn schedule_from_config(&self, g: Graph, cfg: &SavedConfig) -> Result<KernelProgram> {
        let smg = build_smg(&g)?;
        let dims = eligible_spatial_dims(&g, &smg);
        if dims.len() != cfg.spatial.len() {
            return Err(SfError::Codegen("cache shape drift".into()));
        }
        let spatial: Vec<_> = dims.into_iter().zip(cfg.spatial.iter().copied()).collect();
        let temporal = match cfg.temporal {
            Some(block) => Some(TemporalSchedule {
                plan: self.cached_plan(&g, &smg, &spatial)?,
                block,
            }),
            None => None,
        };
        let mem = assign_memory(
            &g,
            &smg,
            &spatial,
            temporal.as_ref(),
            self.arch.smem_per_block / 4,
        );
        let schedule = FusedSchedule { smg, spatial, temporal, mem };
        Ok(KernelProgram::new(g.name().to_string(), g, schedule))
    }

    fn cached_plan(
        &self,
        g: &Graph,
        smg: &Smg,
        spatial: &[(crate::smg::DimId, usize)],
    ) -> Result<crate::slicer::TemporalPlan> {
        let spatial_dims: Vec<_> = spatial.iter().map(|&(d, _)| d).collect();
        let mut excluded = spatial_dims.clone();
        while let Some(dim) = pick_temporal_dim(g, smg, &excluded) {
            match plan_temporal(g, smg, dim) {
                Ok(plan) => {
                    let needs_uta = plan
                        .sliced
                        .iter()
                        .any(|s| matches!(s.agg, crate::slicer::AggKind::Uta(_)));
                    if needs_uta && !self.opts.slicing.enable_uta {
                        excluded.push(dim);
                        continue;
                    }
                    return Ok(plan);
                }
                Err(_) => excluded.push(dim),
            }
        }
        Err(SfError::Codegen("cached temporal plan not reproducible".into()))
    }
}
