//! The end-to-end SpaceFusion compiler facade.
//!
//! The actual compilation machinery lives in [`crate::pipeline`]: a
//! pass pipeline over a [`CompileSession`] with a shared thread-safe
//! schedule cache, concurrent group scheduling and structured
//! instrumentation. [`Compiler`] is the thin convenience wrapper the
//! rest of the workspace (and downstream code) uses:
//! `Compiler::new(arch, opts).compile(&graph)` still works exactly as
//! before, now owning a private session per compiler.
//!
//! Create a [`CompileSession`] directly when you want to share the
//! schedule cache across compilations, plug in an
//! [`EventSink`](crate::pipeline::EventSink), or control the worker
//! count.

use crate::error::Result;
pub use crate::pipeline::{
    CompileOptions, CompileSession, CompileStats, CompiledProgram, FusionPolicy, ProfileReport,
};
use sf_gpu_sim::{Arch, GpuArch};
use sf_ir::Graph;

/// The SpaceFusion compiler for one target architecture.
///
/// Owns a private [`CompileSession`], so repeated [`compile`] calls on
/// one `Compiler` share its schedule cache (repetitive subprograms
/// compile once) but two `Compiler`s never interfere.
///
/// [`compile`]: Compiler::compile
pub struct Compiler {
    session: CompileSession,
}

impl Compiler {
    /// Creates a compiler for the given architecture.
    pub fn new(arch: Arch, opts: CompileOptions) -> Self {
        Compiler {
            session: CompileSession::new(arch, opts),
        }
    }

    /// Creates a compiler for an explicit hardware configuration (e.g. a
    /// variant with a different per-kernel launch overhead).
    pub fn new_with_config(arch: GpuArch, opts: CompileOptions) -> Self {
        Compiler {
            session: CompileSession::with_config(arch, opts),
        }
    }

    /// Creates a compiler with default options under a fusion policy.
    pub fn with_policy(arch: Arch, policy: FusionPolicy) -> Self {
        let mut opts = CompileOptions {
            policy,
            ..Default::default()
        };
        if policy == FusionPolicy::TileGraph {
            // Welder-style tile graphs align tile shapes but cannot
            // rewrite reductions: UTA stays off.
            opts.slicing.enable_uta = false;
        }
        Compiler::new(arch, opts)
    }

    /// Target configuration.
    pub fn arch(&self) -> &GpuArch {
        self.session.arch()
    }

    /// The underlying session (shared cache, sink, worker control).
    pub fn session(&self) -> &CompileSession {
        &self.session
    }

    /// Compiles a graph into a [`CompiledProgram`].
    pub fn compile(&self, graph: &Graph) -> Result<CompiledProgram> {
        self.session.compile(graph)
    }
}
