//! Block-size auto-tuning (paper §6.5).
//!
//! The resource-aware slicer emits a small search space of feasible
//! schedules; the tuner measures each candidate on the performance model
//! and keeps the best. The paper measures candidates with on-GPU test
//! runs and an early-quit mechanism (α = 0.25); here measurement is the
//! analytic cost model, and early-quit prunes candidates whose running
//! estimate already exceeds `best / α`.
//!
//! [`tune_bounded`] additionally accepts a
//! [`Deadline`](crate::resilience::Deadline): when the budget expires
//! mid-search the tuner stops measuring and returns the best candidate
//! seen so far (at least one candidate is always measured), marking the
//! result [`TuneResult::timed_out`]. Unmeasured candidates count as
//! pruned, preserving `evaluated + pruned == candidates.len()`.

use crate::codegen::{estimate_accumulate_cost, estimate_cost, KernelProgram};
use crate::resilience::Deadline;
use sf_gpu_sim::GpuArch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Candidate sets larger than this have their cost-model evaluation
/// fanned out over worker threads.
const PARALLEL_THRESHOLD: usize = 32;

/// Outcome of tuning one kernel's candidate set.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Index of the selected candidate.
    pub best: usize,
    /// Estimated time of the selected candidate (µs).
    pub best_us: f64,
    /// Candidates fully evaluated.
    pub evaluated: usize,
    /// Candidates abandoned by the early-quit rule (or left unmeasured
    /// when the deadline expired).
    pub pruned: usize,
    /// Whether the search stopped early because its deadline expired.
    pub timed_out: bool,
}

/// Selects the best candidate kernel program for `arch`.
///
/// Returns `None` when `candidates` is empty — an empty search space is
/// a scheduling outcome (the slicer found nothing feasible), not a
/// programming error, so callers decide how to recover (the pipeline
/// maps it to [`SfError::ResourceInfeasible`](crate::error::SfError)).
pub fn tune(
    candidates: &[KernelProgram],
    arch: &GpuArch,
    instances: u64,
    alpha: f64,
) -> Option<TuneResult> {
    tune_bounded(candidates, arch, instances, alpha, Deadline::none())
}

/// [`tune`] with a wall-clock budget: when `deadline` expires mid-search
/// the best candidate seen so far wins. The first candidate is always
/// measured, so an already-expired deadline still yields a valid pick.
pub fn tune_bounded(
    candidates: &[KernelProgram],
    arch: &GpuArch,
    instances: u64,
    alpha: f64,
    deadline: Deadline,
) -> Option<TuneResult> {
    if candidates.is_empty() {
        return None;
    }
    let alpha = alpha.clamp(0.01, 1.0);
    // Bounded searches measure serially so expiry is checked between
    // candidates; unbounded searches keep the parallel fan-out for
    // large spaces.
    let mut best = 0usize;
    let mut best_us = f64::INFINITY;
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    let mut timed_out = false;
    if deadline.is_bounded() {
        for (i, kp) in candidates.iter().enumerate() {
            if i > 0 && deadline.expired() {
                // Unmeasured candidates count as pruned so the
                // `evaluated + pruned == len` invariant holds.
                pruned += candidates.len() - i;
                timed_out = true;
                break;
            }
            // Split-K candidates are measured dispatch-by-dispatch (as
            // an on-GPU test run times the two launches), re-checking
            // the deadline between the accumulate and combine figures.
            // The first candidate is exempt so an already-expired
            // deadline still yields one *complete* measurement.
            let t = if i > 0 && is_split(kp) {
                match measure_split_bounded(kp, arch, instances, alpha, best_us, &deadline) {
                    SplitMeasure::Complete(t) => t,
                    SplitMeasure::EarlyQuit => {
                        // The accumulate dispatch alone already exceeds
                        // best/α; the combine can only add to it.
                        pruned += 1;
                        continue;
                    }
                    SplitMeasure::Expired => {
                        // The budget ran out after the accumulate
                        // dispatch was timed but before the combine: the
                        // partial figure understates the candidate, so
                        // it is discarded — the best fully-measured
                        // schedule stands, never a half-evaluated split.
                        pruned += candidates.len() - i;
                        timed_out = true;
                        break;
                    }
                }
            } else {
                arch.kernel_time_us(&estimate_cost(kp, instances))
            };
            if t > best_us / alpha {
                pruned += 1;
            } else {
                evaluated += 1;
            }
            if t < best_us {
                best_us = t;
                best = i;
            }
        }
    } else {
        // Hoisted out of the candidate loop: the per-candidate model
        // times (evaluated in parallel for large search spaces).
        let times = candidate_times(candidates, arch, instances);
        for (i, &t) in times.iter().enumerate() {
            // Early-quit: once a candidate is clearly worse than the
            // current best, its remaining test repetitions are
            // abandoned.
            if t > best_us / alpha {
                pruned += 1;
            } else {
                evaluated += 1;
            }
            if t < best_us {
                best_us = t;
                best = i;
            }
        }
    }
    Some(TuneResult {
        best,
        best_us,
        evaluated,
        pruned,
        timed_out,
    })
}

/// Outcome of one staged split-K measurement under a deadline.
#[derive(Debug, PartialEq)]
enum SplitMeasure {
    /// Both dispatches were timed; the candidate's full figure.
    Complete(f64),
    /// The accumulate dispatch alone already lost to `best / α`.
    EarlyQuit,
    /// The deadline expired between the two dispatches — the partial
    /// (accumulate-only) figure must be discarded.
    Expired,
}

/// Whether a candidate carries a split-K temporal schedule.
fn is_split(kp: &KernelProgram) -> bool {
    kp.schedule
        .temporal
        .as_ref()
        .is_some_and(|t| t.split.is_some())
}

/// Measures one split-K candidate dispatch-by-dispatch under a
/// deadline: time the accumulate launch, early-quit or re-check the
/// budget, then time the full candidate. A candidate abandoned between
/// the launches yields [`SplitMeasure::Expired`] — its accumulate-only
/// figure omits the combine's traffic and would understate the
/// schedule, so the caller must fall back to the best *complete*
/// measurement rather than crown it.
fn measure_split_bounded(
    kp: &KernelProgram,
    arch: &GpuArch,
    instances: u64,
    alpha: f64,
    best_us: f64,
    deadline: &Deadline,
) -> SplitMeasure {
    let t_acc = arch.kernel_time_us(&estimate_accumulate_cost(kp, instances));
    if t_acc > best_us / alpha {
        return SplitMeasure::EarlyQuit;
    }
    if deadline.expired() {
        return SplitMeasure::Expired;
    }
    SplitMeasure::Complete(arch.kernel_time_us(&estimate_cost(kp, instances)))
}

/// Cost-model time of every candidate, in candidate order.
fn candidate_times(candidates: &[KernelProgram], arch: &GpuArch, instances: u64) -> Vec<f64> {
    if candidates.len() <= PARALLEL_THRESHOLD {
        return candidates
            .iter()
            .map(|kp| arch.kernel_time_us(&estimate_cost(kp, instances)))
            .collect();
    }
    tune_parallel(candidates, arch, instances)
}

/// Parallel cost evaluation for large candidate sets.
///
/// Only the (pure, per-candidate) model evaluation is fanned out; the
/// fold over the resulting times stays serial, so the winner and the
/// `evaluated + pruned == candidates.len()` accounting are exactly those
/// of the serial path.
fn tune_parallel(candidates: &[KernelProgram], arch: &GpuArch, instances: u64) -> Vec<f64> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
        .min(candidates.len());
    let times = Mutex::new(vec![0.0f64; candidates.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    return;
                }
                let t = arch.kernel_time_us(&estimate_cost(&candidates[i], instances));
                times
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = t;
            });
        }
    });
    times
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{resource_aware_slicing, SlicingOptions};
    use crate::smg::build_smg;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha_candidates(arch: &GpuArch) -> (Graph, Vec<KernelProgram>) {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![512, 64]));
        let kk = g.input("k", Shape::new(vec![512, 64]));
        let v = g.input("v", Shape::new(vec![512, 64]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        let smg = build_smg(&g).unwrap();
        let schedules = resource_aware_slicing(&g, &smg, arch, &SlicingOptions::default()).unwrap();
        let kps = schedules
            .into_iter()
            .map(|s| KernelProgram::new("mha", g.clone(), s))
            .collect();
        (g, kps)
    }

    #[test]
    fn tuner_picks_a_valid_candidate() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        assert!(kps.len() > 1);
        let r = tune(&kps, &arch, 32, 0.25).unwrap();
        assert!(r.best < kps.len());
        assert!(r.best_us.is_finite());
        assert_eq!(r.evaluated + r.pruned, kps.len());
    }

    #[test]
    fn best_candidate_beats_or_ties_all_others() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        let r = tune(&kps, &arch, 32, 0.25).unwrap();
        for kp in &kps {
            let t = arch.kernel_time_us(&estimate_cost(kp, 32));
            assert!(t >= r.best_us - 1e-9);
        }
    }

    #[test]
    fn early_quit_prunes_poor_candidates() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        // With α = 1 any candidate strictly worse than the running best
        // is abandoned early; the distinct block sizes guarantee spread.
        let r = tune(&kps, &arch, 32, 1.0).unwrap();
        assert!(r.pruned > 0, "expected pruning among {} configs", kps.len());
        // A tiny α (wide tolerance) evaluates everything.
        let r2 = tune(&kps, &arch, 32, 0.01).unwrap();
        assert!(r2.pruned <= r.pruned);
        assert_eq!(r2.best, r.best, "α must not change the winner");
    }

    #[test]
    fn empty_candidates_return_none() {
        assert_eq!(tune(&[], &GpuArch::ampere(), 1, 0.25), None);
        assert_eq!(
            tune_bounded(&[], &GpuArch::ampere(), 1, 0.25, Deadline::after_ms(0)),
            None
        );
    }

    #[test]
    fn expired_deadline_still_picks_a_candidate() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        assert!(kps.len() > 1);
        let r = tune_bounded(&kps, &arch, 32, 0.25, Deadline::after_ms(0)).unwrap();
        // Only the first candidate was measured; the rest were skipped.
        assert!(r.timed_out);
        assert_eq!(r.best, 0);
        assert!(r.best_us.is_finite());
        assert_eq!(r.evaluated + r.pruned, kps.len());
    }

    #[test]
    fn generous_deadline_matches_unbounded_winner() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        let bounded = tune_bounded(
            &kps,
            &arch,
            32,
            0.25,
            Deadline::after(std::time::Duration::from_secs(3600)),
        )
        .unwrap();
        let unbounded = tune(&kps, &arch, 32, 0.25).unwrap();
        assert!(!bounded.timed_out);
        assert_eq!(bounded.best, unbounded.best);
        assert_eq!(bounded.best_us, unbounded.best_us);
    }

    #[test]
    fn split_measure_discards_partial_figure_on_expiry() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        let split = kps
            .iter()
            .find(|kp| is_split(kp))
            .expect("slicer emits split-K variants for mha");
        // Budget already gone when the mid-measurement check runs: the
        // accumulate-only figure must be discarded, not returned.
        let r = measure_split_bounded(
            split,
            &arch,
            32,
            0.25,
            f64::INFINITY,
            &Deadline::after_ms(0),
        );
        assert_eq!(r, SplitMeasure::Expired);
        // With budget left, the staged figure is exactly the unbounded
        // one, and the accumulate-only figure never exceeds it (so
        // early-quitting on it is conservative).
        let full = arch.kernel_time_us(&estimate_cost(split, 32));
        let acc = arch.kernel_time_us(&estimate_accumulate_cost(split, 32));
        assert!(acc <= full, "accumulate dispatch alone exceeds the total");
        assert_eq!(
            measure_split_bounded(split, &arch, 32, 0.25, f64::INFINITY, &Deadline::none()),
            SplitMeasure::Complete(full)
        );
    }

    #[test]
    fn expired_deadline_never_crowns_a_half_evaluated_split() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        // Order the search so every candidate after the first is a
        // split-K schedule — the shapes the staged measurement guards.
        let mut ordered: Vec<KernelProgram> =
            kps.iter().filter(|kp| !is_split(kp)).cloned().collect();
        let n_complete = ordered.len();
        ordered.extend(kps.iter().filter(|kp| is_split(kp)).cloned());
        assert!(ordered.len() > n_complete, "no split candidates to guard");
        let r = tune_bounded(&ordered, &arch, 32, 0.25, Deadline::after_ms(0)).unwrap();
        assert!(r.timed_out);
        // The winner is a fully-measured schedule, never one whose
        // combine dispatch went unmeasured.
        assert!(
            !is_split(&ordered[r.best]),
            "expired search crowned a split candidate it could not have finished measuring"
        );
        assert_eq!(r.evaluated + r.pruned, ordered.len());
    }

    #[test]
    fn parallel_path_matches_serial_semantics() {
        let arch = GpuArch::ampere();
        let (_, kps) = mha_candidates(&arch);
        // Tile the candidate set past the threshold so candidate_times
        // takes the tune_parallel path.
        let mut big: Vec<KernelProgram> = Vec::new();
        while big.len() <= PARALLEL_THRESHOLD {
            big.extend(kps.iter().cloned());
        }
        let r = tune(&big, &arch, 32, 0.25).unwrap();
        assert_eq!(r.evaluated + r.pruned, big.len());

        // Reference: the historical serial fold.
        let (mut best, mut best_us) = (0usize, f64::INFINITY);
        for (i, kp) in big.iter().enumerate() {
            let t = arch.kernel_time_us(&estimate_cost(kp, 32));
            if t < best_us {
                best_us = t;
                best = i;
            }
        }
        assert_eq!(r.best, best);
        assert_eq!(r.best_us, best_us);
    }
}
