//! The Space-Mapping Graph (SMG) abstraction (paper §4.1).
//!
//! An SMG models a fused multi-operator region as a graph of
//! *computational spaces* connected by *space mappings*:
//!
//! * **Data spaces** abstract tensors (inputs, weights, intermediates,
//!   outputs). Each data-space axis is aligned to a *global dimension* of
//!   the fused space; an axis whose tensor extent is 1 while the global
//!   dimension is larger is a *placeholder* ("−" in the paper's
//!   notation), e.g. `Max(M,−)` after a row-max.
//! * **Iteration spaces** abstract the loop nests of operators. They sit
//!   between input and output data spaces, decoupling the direct
//!   dependency into indirect mappings.
//! * **Mappings** are directed edges: One-to-One (O2O) when source and
//!   destination cover the same dimensions, One-to-All (O2A, with a
//!   direction dimension) when the source is *reused* along a dimension
//!   it does not possess, and All-to-One (A2O, with a direction
//!   dimension) when the destination *reduces away* a dimension.
//!
//! Fused SMGs are built directly from the operator DFG: because producer
//! and consumer share one tensor value in the IR, the paper's
//! "connect-then-merge with dimension alignment" step (Fig. 4) is
//! performed by the union-find alignment in [`build`].

pub mod build;
pub mod graph;

pub use build::build_smg;
pub use graph::{DimId, DimInfo, Mapping, MappingKind, Smg, SpaceId, SpaceKind};
