//! SMG construction from an operator DFG via dimension alignment.
//!
//! The paper constructs a fused SMG by connecting per-operator SMGs with
//! One-to-One mappings and merging the shared intermediate data spaces
//! under dimension alignment (Fig. 4). In this implementation producer
//! and consumer already share one IR value, so alignment is computed in
//! one pass: a union-find over `(value, axis)` pairs, with one
//! equivalence constraint per operator (positional for rank-preserving
//! operators, the M/N/K triangle for GEMM). Every union-find class
//! becomes a global dimension of the fused space.

use super::graph::{DimId, DimInfo, Mapping, MappingKind, Smg, SpaceId, SpaceKind, SpaceNode};
use crate::error::{Result, SfError};
use sf_ir::{Graph, OpId, OpKind, ValueId};
use std::collections::BTreeSet;

/// Union-find over `(value, axis)` pairs.
struct DimUf {
    parent: Vec<usize>,
    /// Start offset of each value's axes in the flat index space.
    offsets: Vec<usize>,
}

impl DimUf {
    fn new(graph: &Graph) -> Self {
        let mut offsets = Vec::with_capacity(graph.values().len());
        let mut n = 0;
        for v in graph.values() {
            offsets.push(n);
            n += v.shape.rank();
        }
        DimUf {
            parent: (0..n).collect(),
            offsets,
        }
    }

    fn idx(&self, value: ValueId, axis: usize) -> usize {
        self.offsets[value.0] + axis
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Builds the fused SMG of a whole (sub)graph.
///
/// Fails when the graph contains layout barriers (callers must segment
/// first) or when dimension alignment finds incompatible extents.
pub fn build_smg(graph: &Graph) -> Result<Smg> {
    let mut uf = DimUf::new(graph);

    // 1. Alignment constraints per operator.
    for op in graph.ops() {
        match &op.kind {
            OpKind::Gemm { transpose_b } => {
                let (a, b, c) = (op.inputs[0], op.inputs[1], op.output);
                uf.union(uf.idx(a, 0), uf.idx(c, 0)); // M
                if *transpose_b {
                    uf.union(uf.idx(b, 0), uf.idx(c, 1)); // N
                    uf.union(uf.idx(a, 1), uf.idx(b, 1)); // K
                } else {
                    uf.union(uf.idx(b, 1), uf.idx(c, 1)); // N
                    uf.union(uf.idx(a, 1), uf.idx(b, 0)); // K
                }
            }
            OpKind::LayoutBarrier => {
                return Err(SfError::SmgBuild(format!(
                    "graph '{}' contains a layout barrier; segment it first",
                    graph.name()
                )));
            }
            // Rank-preserving operators align positionally — except that
            // an extent-1 input axis facing a larger output axis is a
            // *broadcast*: the operand is reused along the output's
            // dimension without owning it, so the axes must stay in
            // separate classes. (A reduced placeholder still reaches its
            // dimension through the reduction's own input/output union.)
            _ => {
                for &input in &op.inputs {
                    let rank = graph.shape(input).rank();
                    if rank != graph.shape(op.output).rank() {
                        return Err(SfError::SmgBuild(format!(
                            "rank mismatch through {}",
                            op.kind.name()
                        )));
                    }
                    for axis in 0..rank {
                        let ie = graph.shape(input).dims()[axis];
                        let oe = graph.shape(op.output).dims()[axis];
                        let broadcasting = ie == 1
                            && oe != 1
                            && !matches!(op.kind, OpKind::Reduce { .. } | OpKind::Broadcast { .. });
                        if !broadcasting {
                            uf.union(uf.idx(input, axis), uf.idx(op.output, axis));
                        }
                    }
                }
            }
        }
    }

    // 2. Classes become global dimensions; extent = max member extent.
    let total: usize = graph.values().iter().map(|v| v.shape.rank()).sum();
    let mut class_dim: Vec<Option<DimId>> = vec![None; total];
    let mut dims: Vec<DimInfo> = Vec::new();
    let mut value_axes: Vec<Vec<DimId>> = Vec::with_capacity(graph.values().len());
    for (vi, v) in graph.values().iter().enumerate() {
        let mut axes = Vec::with_capacity(v.shape.rank());
        for axis in 0..v.shape.rank() {
            let root = uf.find(uf.offsets[vi] + axis);
            let d = match class_dim[root] {
                Some(d) => d,
                None => {
                    let d = DimId(dims.len());
                    dims.push(DimInfo {
                        name: format!("d{}", dims.len()),
                        extent: 1,
                    });
                    class_dim[root] = Some(d);
                    d
                }
            };
            let e = v.shape.dims()[axis];
            let cur = dims[d.0].extent;
            if e != 1 && cur != 1 && e != cur {
                return Err(SfError::SmgBuild(format!(
                    "axis {axis} of '{}' has extent {e}, conflicting with aligned extent {cur}",
                    v.name
                )));
            }
            dims[d.0].extent = cur.max(e);
            axes.push(d);
        }
        value_axes.push(axes);
    }

    // 2b. Reject contraction aliasing: a GEMM whose contraction class
    // collapsed onto one of its output classes (e.g. a residual add that
    // identifies input and output features of a square GEMM) has no
    // well-formed iteration space at this granularity; the compiler
    // partitions such regions instead.
    for op in graph.ops() {
        if let OpKind::Gemm { transpose_b } = op.kind {
            let (a, b, c) = (op.inputs[0], op.inputs[1], op.output);
            let k_axis = uf.find(uf.idx(a, 1));
            let _ = if transpose_b {
                uf.find(uf.idx(b, 1))
            } else {
                uf.find(uf.idx(b, 0))
            };
            let m_axis = uf.find(uf.idx(c, 0));
            let n_axis = uf.find(uf.idx(c, 1));
            if k_axis == m_axis || k_axis == n_axis {
                return Err(SfError::SmgBuild(format!(
                    "contraction dimension of a GEMM aliases an output dimension in '{}'",
                    graph.name()
                )));
            }
        }
    }

    // 3. Spaces: one data space per value, one iteration space per op.
    let present = |value: ValueId, axis: usize| -> bool {
        let d = value_axes[value.0][axis];
        graph.shape(value).dims()[axis] == dims[d.0].extent
    };
    let present_dims = |value: ValueId| -> BTreeSet<DimId> {
        (0..graph.shape(value).rank())
            .filter(|&axis| present(value, axis))
            .map(|axis| value_axes[value.0][axis])
            .collect()
    };

    let mut spaces: Vec<SpaceNode> = Vec::new();
    let mut data_space = Vec::with_capacity(graph.values().len());
    for (vi, _) in graph.values().iter().enumerate() {
        data_space.push(SpaceId(spaces.len()));
        spaces.push(SpaceNode {
            kind: SpaceKind::Data { value: ValueId(vi) },
            dims: present_dims(ValueId(vi)),
        });
    }

    let mut mappings: Vec<Mapping> = Vec::new();
    let mut iter_space = Vec::with_capacity(graph.ops().len());
    for (oi, op) in graph.ops().iter().enumerate() {
        // Iteration space covers every non-degenerate dimension present
        // on any operand (unit dims carry no dependencies and would only
        // produce spurious edges).
        let mut iter_dims: BTreeSet<DimId> = present_dims(op.output);
        for &input in &op.inputs {
            iter_dims.extend(present_dims(input));
        }
        iter_dims.retain(|&d| dims[d.0].extent > 1);
        let is = SpaceId(spaces.len());
        iter_space.push(is);
        spaces.push(SpaceNode {
            kind: SpaceKind::Iter { op: OpId(oi) },
            dims: iter_dims.clone(),
        });

        // Input data space -> iteration space: O2A per missing dim, O2O
        // when the input covers the whole iteration space.
        for &input in &op.inputs {
            let src = data_space[input.0];
            let covered = present_dims(input);
            let missing: Vec<DimId> = iter_dims
                .iter()
                .filter(|d| !covered.contains(d))
                .copied()
                .collect();
            if missing.is_empty() {
                mappings.push(Mapping {
                    src,
                    dst: is,
                    kind: MappingKind::OneToOne,
                });
            } else {
                for d in missing {
                    mappings.push(Mapping {
                        src,
                        dst: is,
                        kind: MappingKind::OneToAll(d),
                    });
                }
            }
        }

        // Iteration space -> output data space: A2O per reduced dim.
        let out_covered = present_dims(op.output);
        let reduced: Vec<DimId> = iter_dims
            .iter()
            .filter(|d| !out_covered.contains(d))
            .copied()
            .collect();
        let dst = data_space[op.output.0];
        if reduced.is_empty() {
            mappings.push(Mapping {
                src: is,
                dst,
                kind: MappingKind::OneToOne,
            });
        } else {
            for d in reduced {
                mappings.push(Mapping {
                    src: is,
                    dst,
                    kind: MappingKind::AllToOne(d),
                });
            }
        }
    }

    Ok(Smg {
        dims,
        spaces,
        mappings,
        value_axes,
        data_space,
        iter_space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    /// `QK = GEMM(Query, Key)` with row-major keys (Fig. 3).
    fn gemm_graph() -> Graph {
        let mut g = Graph::new("gemm", DType::F16);
        let q = g.input("query", Shape::new(vec![64, 128]));
        let k = g.input("key", Shape::new(vec![96, 128]));
        let qk = g.gemm(q, k, true).unwrap();
        g.mark_output(qk);
        g
    }

    /// Simplified MHA of Fig. 5 (two GEMMs around a softmax).
    pub(crate) fn mha_graph(m: usize, l: usize, k: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![m, k]));
        let kk = g.input("k", Shape::new(vec![l, k]));
        let v = g.input("v", Shape::new(vec![l, k]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn gemm_smg_matches_figure_3() {
        let g = gemm_graph();
        let smg = build_smg(&g).unwrap();
        // 3 data spaces + 1 iteration space; M, N, K dims.
        assert_eq!(smg.spaces.len(), 4);
        assert_eq!(smg.dims.len(), 3);
        // Two O2A (query reused along N, key reused along M), one A2O (K).
        assert_eq!(smg.o2a_count(), 2);
        assert_eq!(smg.a2o_count(), 1);
        // The iteration space covers all three dims.
        let iter = &smg.spaces[smg.iter_space[0].0];
        assert_eq!(iter.dims.len(), 3);
    }

    #[test]
    fn gemm_alignment_assigns_shared_k() {
        let g = gemm_graph();
        let smg = build_smg(&g).unwrap();
        let (q, k) = (ValueId(0), ValueId(1));
        // Query and Key share their feature axis (K).
        assert_eq!(smg.value_axes[q.0][1], smg.value_axes[k.0][1]);
        // Query axis 0 (M) and Key axis 0 (N) are distinct.
        assert_ne!(smg.value_axes[q.0][0], smg.value_axes[k.0][0]);
        // Extents recorded correctly.
        assert_eq!(smg.extent(smg.value_axes[q.0][0]), 64);
        assert_eq!(smg.extent(smg.value_axes[k.0][0]), 96);
        assert_eq!(smg.extent(smg.value_axes[q.0][1]), 128);
    }

    #[test]
    fn softmax_smg_counts() {
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![32, 64]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, m).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        let smg = build_smg(&g).unwrap();
        // Fused space stays 2-D.
        assert_eq!(smg.dims.len(), 2);
        // Two reductions (max, sum) and two broadcasts back (sub, div).
        assert_eq!(smg.a2o_count(), 2);
        assert_eq!(smg.o2a_count(), 2);
    }

    #[test]
    fn mha_smg_matches_paper_counts() {
        // Paper §2: MHA has 6 One-to-Alls and 4 All-to-Ones.
        let g = mha_graph(64, 256, 64);
        let smg = build_smg(&g).unwrap();
        assert_eq!(smg.o2a_count(), 6, "{}", smg.to_dot(&g));
        assert_eq!(smg.a2o_count(), 4);
        // Three of the four A2Os are geometrically parallel (along L).
        let l_dim = smg.value_axes[ValueId(1).0][0]; // key axis 0 = L.
        let parallel = smg
            .mappings
            .iter()
            .filter(|m| m.kind == MappingKind::AllToOne(l_dim))
            .count();
        assert_eq!(parallel, 3);
    }

    #[test]
    fn placeholder_axes_are_absent_from_space_dims() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![8, 16]));
        let m = g.reduce(ReduceOp::Max, x, 1).unwrap();
        g.mark_output(m);
        let smg = build_smg(&g).unwrap();
        // Max(M,−): only one present dim.
        let max_space = &smg.spaces[smg.data_space[m.0].0];
        assert_eq!(max_space.dims.len(), 1);
        // value_has_dim reflects the placeholder.
        let n_dim = smg.value_axes[x.0][1];
        assert!(smg.value_has_dim(&g, x, n_dim));
        assert!(!smg.value_has_dim(&g, m, n_dim));
    }

    #[test]
    fn conflicting_extents_rejected() {
        // Two inputs added together with incompatible non-unit extents
        // cannot be built (the IR already rejects it; verify the SMG
        // builder also rejects a crafted mismatch through GEMM chains).
        let mut g = Graph::new("bad", DType::F16);
        let a = g.input("a", Shape::new(vec![4, 8]));
        let b = g.input("b", Shape::new(vec![8, 4]));
        let c = g.gemm(a, b, false).unwrap(); // [4,4]
                                              // d aligns c's axis1 (extent 4) with extent-8 axis via add: the
                                              // IR's broadcast rules reject it, so build a legal-but-degenerate
                                              // case instead: ensure build succeeds and dims are consistent.
        let d = g.unary(UnaryOp::Relu, c).unwrap();
        g.mark_output(d);
        let smg = build_smg(&g).unwrap();
        assert_eq!(smg.dims.len(), 3);
        let _ = b;
    }

    #[test]
    fn barrier_graphs_are_rejected() {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![4, 6]));
        let y = g.layout_barrier(x, Shape::new(vec![6, 4])).unwrap();
        g.mark_output(y);
        assert!(matches!(build_smg(&g), Err(SfError::SmgBuild(_))));
    }

    #[test]
    fn dot_output_renders_all_spaces() {
        let g = gemm_graph();
        let smg = build_smg(&g).unwrap();
        let dot = smg.to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("O2A"));
        assert!(dot.contains("A2O"));
        assert!(dot.contains("query"));
    }

    #[test]
    fn block_footprint_restricts_named_dims() {
        let g = gemm_graph();
        let smg = build_smg(&g).unwrap();
        let q = ValueId(0);
        let m_dim = smg.value_axes[q.0][0];
        // Full: 64×128×2 bytes. Restricted to 16 rows: 16×128×2.
        assert_eq!(smg.block_footprint(&g, q, &[]), 64 * 128 * 2);
        assert_eq!(smg.block_footprint(&g, q, &[(m_dim, 16)]), 16 * 128 * 2);
        // Restricting a dim the value lacks changes nothing.
        let k_input = ValueId(1);
        let n_dim = smg.value_axes[k_input.0][0];
        assert_eq!(smg.block_footprint(&g, q, &[(n_dim, 8)]), 64 * 128 * 2);
    }
}
