//! SMG data structures and queries.

use sf_ir::{Graph, OpId, ValueId, ValueKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Identifier of a global dimension of the fused computational space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimId(pub usize);

/// A global dimension: name and extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimInfo {
    /// Display name, e.g. `d0`.
    pub name: String,
    /// Extent of the dimension in the fused space.
    pub extent: usize,
}

/// Identifier of a computational space (node) in an [`Smg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(pub usize);

/// Kind of a computational space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// A tensor (input, weight, intermediate or output).
    Data {
        /// The IR value this space abstracts.
        value: ValueId,
    },
    /// The loop nest of one operator.
    Iter {
        /// The IR operator this space abstracts.
        op: OpId,
    },
}

/// A computational-space node.
#[derive(Debug, Clone)]
pub struct SpaceNode {
    /// Data or iteration space.
    pub kind: SpaceKind,
    /// Global dimensions this space covers (placeholders excluded).
    pub dims: BTreeSet<DimId>,
}

/// Kind of a space mapping, with its geometric direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Element-wise correspondence; no direction.
    OneToOne,
    /// The source is reused along `0`'s dimension.
    OneToAll(DimId),
    /// The destination reduces away `0`'s dimension.
    AllToOne(DimId),
}

impl MappingKind {
    /// The direction dimension, if any.
    pub fn dim(&self) -> Option<DimId> {
        match self {
            MappingKind::OneToOne => None,
            MappingKind::OneToAll(d) | MappingKind::AllToOne(d) => Some(*d),
        }
    }
}

/// A directed space-mapping edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Source space.
    pub src: SpaceId,
    /// Destination space.
    pub dst: SpaceId,
    /// Mapping kind and direction.
    pub kind: MappingKind,
}

/// A Space-Mapping Graph over one fused operator region.
#[derive(Debug, Clone)]
pub struct Smg {
    /// Global dimensions of the fused space.
    pub dims: Vec<DimInfo>,
    /// Space nodes.
    pub spaces: Vec<SpaceNode>,
    /// Mapping edges.
    pub mappings: Vec<Mapping>,
    /// For each IR value: the global dimension of each tensor axis.
    pub value_axes: Vec<Vec<DimId>>,
    /// Space index of each IR value's data space.
    pub data_space: Vec<SpaceId>,
    /// Space index of each IR op's iteration space.
    pub iter_space: Vec<SpaceId>,
}

impl Smg {
    /// Extent of a dimension.
    pub fn extent(&self, d: DimId) -> usize {
        self.dims[d.0].extent
    }

    /// All mappings whose direction is `d` ("mappings in the dimension",
    /// Table 3).
    pub fn mappings_in_dim(&self, d: DimId) -> Vec<&Mapping> {
        self.mappings
            .iter()
            .filter(|m| m.kind.dim() == Some(d))
            .collect()
    }

    /// Whether a space is a data space backed by a kernel input (input or
    /// weight value, resident in global memory).
    pub fn is_kernel_input_space(&self, graph: &Graph, s: SpaceId) -> bool {
        match self.spaces[s.0].kind {
            SpaceKind::Data { value } => matches!(
                graph.value(value).kind,
                ValueKind::Input | ValueKind::Weight
            ),
            SpaceKind::Iter { .. } => false,
        }
    }

    /// The axis of `value` aligned to dimension `d`, if any.
    pub fn axis_of(&self, value: ValueId, d: DimId) -> Option<usize> {
        self.value_axes[value.0].iter().position(|&x| x == d)
    }

    /// Whether `value` has `d` *present* (extent matching, not a
    /// placeholder).
    pub fn value_has_dim(&self, graph: &Graph, value: ValueId, d: DimId) -> bool {
        match self.axis_of(value, d) {
            Some(axis) => graph.shape(value).dims()[axis] == self.extent(d) || self.extent(d) == 1,
            None => false,
        }
    }

    /// Per-block footprint (bytes) of a value when the given dims are
    /// restricted to block sizes. Unrestricted axes keep their extent.
    pub fn block_footprint(
        &self,
        graph: &Graph,
        value: ValueId,
        restrict: &[(DimId, usize)],
    ) -> u64 {
        let shape = graph.shape(value);
        let mut vol: u64 = 1;
        for (axis, &e) in shape.dims().iter().enumerate() {
            let d = self.value_axes[value.0][axis];
            let r = restrict
                .iter()
                .find(|(rd, _)| *rd == d)
                .map(|&(_, b)| b.min(e))
                .unwrap_or(e);
            vol *= r as u64;
        }
        vol * graph.dtype().size_bytes() as u64
    }

    /// Number of All-to-One mappings in the whole SMG.
    pub fn a2o_count(&self) -> usize {
        self.mappings
            .iter()
            .filter(|m| matches!(m.kind, MappingKind::AllToOne(_)))
            .count()
    }

    /// Number of One-to-All mappings in the whole SMG.
    pub fn o2a_count(&self) -> usize {
        self.mappings
            .iter()
            .filter(|m| matches!(m.kind, MappingKind::OneToAll(_)))
            .count()
    }

    /// Graphviz DOT rendering of the SMG (for debugging and docs).
    pub fn to_dot(&self, graph: &Graph) -> String {
        let mut out = String::from("digraph smg {\n  rankdir=TB;\n");
        for (i, s) in self.spaces.iter().enumerate() {
            let (label, shape) = match s.kind {
                SpaceKind::Data { value } => {
                    let v = graph.value(value);
                    let sig: Vec<String> = self.value_axes[value.0]
                        .iter()
                        .enumerate()
                        .map(|(axis, d)| {
                            if graph.shape(value).dims()[axis] == self.extent(*d) {
                                self.dims[d.0].name.clone()
                            } else {
                                "-".to_string()
                            }
                        })
                        .collect();
                    (format!("{}({})", v.name, sig.join(",")), "box")
                }
                SpaceKind::Iter { op } => (graph.ops()[op.0].kind.name().to_string(), "ellipse"),
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}];",
                sf_ir::escape_label(&label)
            );
        }
        for m in &self.mappings {
            let (label, color) = match m.kind {
                MappingKind::OneToOne => ("O2O".to_string(), "black"),
                MappingKind::OneToAll(d) => (format!("O2A({})", self.dims[d.0].name), "green"),
                MappingKind::AllToOne(d) => (format!("A2O({})", self.dims[d.0].name), "red"),
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{label}\", color={color}];",
                m.src.0, m.dst.0
            );
        }
        out.push_str("}\n");
        out
    }
}
