//! Memory-hierarchy scheduling (paper §5.4).
//!
//! SpaceFusion assigns data spaces to the register / shared / global
//! levels directly from their mapping roles in the SMG:
//!
//! * kernel inputs and outputs live in **global** memory; per-block tiles
//!   of inputs are *staged* into shared memory when they fit a staging
//!   budget, and *streamed* through a fixed-size double buffer otherwise
//!   (large weight matrices),
//! * intermediate data spaces that act as One-to-All sources or
//!   All-to-One sinks go to **shared** memory (repeated access and
//!   inter-thread communication),
//! * values on pure One-to-One chains and the accumulators of sliced
//!   reductions stay in **registers**.
//!
//! Footprints are liveness-aware: shared memory is the maximum over
//! program points of the live shared values (plus staged tiles and
//! streaming buffers), which is what allows deep MLP-stack fusion where
//! successive layers reuse the same shared region (paper §4.3: "the later
//! intra-block effectively reuses the on-chip memory space allocated to
//! the intermediate variables of the previous intra-block").

use super::schedule::{FusedSchedule, TemporalSchedule};
use crate::smg::{DimId, MappingKind, Smg};
use sf_ir::{Graph, OpKind, ValueId, ValueKind};

/// Bytes reserved per streamed (non-staged) global operand.
pub const STREAM_BUFFER_BYTES: u64 = 8 << 10;

/// Fixed per-block register overhead (indices, predicates, spills).
pub const REG_OVERHEAD_BYTES: u64 = 4 << 10;

/// Memory level of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Off-chip global memory.
    Global,
    /// On-chip shared memory, visible within one thread block.
    Shared,
    /// Register file.
    Register,
}

/// Per-value memory assignment.
#[derive(Debug, Clone)]
pub struct MemoryAssignment {
    /// Level of each value (indexed by `ValueId`).
    pub level: Vec<MemLevel>,
    /// For global values: whether the per-block tile is staged fully in
    /// shared memory (`false` means streamed).
    pub staged: Vec<bool>,
}

/// Assigns a memory level to every value of the fused graph.
///
/// `staging_limit` is the per-operand budget above which a global operand
/// is streamed instead of staged.
pub fn assign_memory(
    graph: &Graph,
    smg: &Smg,
    spatial: &[(DimId, usize)],
    temporal: Option<&TemporalSchedule>,
    staging_limit: u64,
) -> MemoryAssignment {
    let mut restrict: Vec<(DimId, usize)> = spatial.to_vec();
    if let Some(t) = temporal {
        restrict.push((t.plan.dim, t.block));
    }
    let sliced_outputs: Vec<ValueId> = temporal
        .map(|t| {
            t.plan
                .sliced
                .iter()
                .map(|s| graph.ops()[s.op.0].output)
                .collect()
        })
        .unwrap_or_default();

    let n = graph.values().len();
    let mut level = vec![MemLevel::Register; n];
    let mut staged = vec![false; n];

    for (vi, v) in graph.values().iter().enumerate() {
        let id = ValueId(vi);
        match v.kind {
            ValueKind::Input | ValueKind::Weight => {
                level[vi] = MemLevel::Global;
                staged[vi] = smg.block_footprint(graph, id, &restrict) <= staging_limit;
            }
            ValueKind::Intermediate => {
                if graph.outputs().contains(&id) {
                    // Outputs stream back to global through registers.
                    level[vi] = MemLevel::Global;
                    continue;
                }
                if sliced_outputs.contains(&id) {
                    // Accumulators of sliced reductions live in registers
                    // (paper: "intermediate results of the accumulation
                    // ... are also allocated to the register level").
                    level[vi] = MemLevel::Register;
                    continue;
                }
                // O2A source or A2O sink → shared; pure O2O → register.
                let space = smg.data_space[vi];
                let communicates = smg.mappings.iter().any(|m| {
                    (m.src == space && matches!(m.kind, MappingKind::OneToAll(_)))
                        || (m.dst == space && matches!(m.kind, MappingKind::AllToOne(_)))
                });
                level[vi] = if communicates {
                    MemLevel::Shared
                } else {
                    MemLevel::Register
                };
            }
        }
    }
    MemoryAssignment { level, staged }
}

/// Liveness interval (op indices) of each value inside the kernel.
fn live_ranges(graph: &Graph) -> Vec<(usize, usize)> {
    let n_ops = graph.ops().len();
    let mut ranges = vec![(0usize, n_ops); graph.values().len()];
    for (oi, op) in graph.ops().iter().enumerate() {
        ranges[op.output.0].0 = oi;
        ranges[op.output.0].1 = oi;
    }
    for (oi, op) in graph.ops().iter().enumerate() {
        for &input in &op.inputs {
            ranges[input.0].1 = ranges[input.0].1.max(oi);
        }
    }
    // Graph outputs stay live to the end.
    for &o in graph.outputs() {
        ranges[o.0].1 = n_ops;
    }
    ranges
}

/// Shared-memory bytes per block: staged tiles + streaming buffers +
/// liveness-maximum of shared intermediates.
pub fn smem_per_block(graph: &Graph, s: &FusedSchedule) -> u64 {
    let restrict = s.block_restrictions();
    let mut fixed = 0u64;
    for (vi, v) in graph.values().iter().enumerate() {
        if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
            fixed += if s.mem.staged[vi] {
                s.smg.block_footprint(graph, ValueId(vi), &restrict)
            } else {
                STREAM_BUFFER_BYTES
            };
        }
    }

    let ranges = live_ranges(graph);
    let mut peak = 0u64;
    for oi in 0..graph.ops().len() {
        let mut live = 0u64;
        for (vi, _) in graph.values().iter().enumerate() {
            if s.mem.level[vi] == MemLevel::Shared && ranges[vi].0 <= oi && oi <= ranges[vi].1 {
                live += s.smg.block_footprint(graph, ValueId(vi), &restrict);
            }
        }
        peak = peak.max(live);
    }
    fixed + peak
}

/// Register bytes per block: liveness-maximum of register intermediates
/// plus the (f32) accumulators of sliced reductions and a fixed overhead.
pub fn regs_per_block(graph: &Graph, s: &FusedSchedule) -> u64 {
    let restrict = s.block_restrictions();
    let spatial_only = s.spatial_restrictions();
    let esz = graph.dtype().size_bytes() as u64;
    let ranges = live_ranges(graph);

    let sliced_outputs: Vec<ValueId> = s
        .temporal
        .as_ref()
        .map(|t| {
            t.plan
                .sliced
                .iter()
                .map(|r| graph.ops()[r.op.0].output)
                .collect()
        })
        .unwrap_or_default();

    let mut acc = 0u64;
    for &v in &sliced_outputs {
        // Accumulators are kept in f32 regardless of the storage dtype.
        acc += s.smg.block_footprint(graph, v, spatial_only) / esz * 4;
    }

    let mut peak = 0u64;
    for oi in 0..graph.ops().len() {
        let mut live = 0u64;
        for (vi, v) in graph.values().iter().enumerate() {
            let id = ValueId(vi);
            if sliced_outputs.contains(&id) {
                continue;
            }
            let in_regs = s.mem.level[vi] == MemLevel::Register
                || (s.mem.level[vi] == MemLevel::Global
                    && matches!(v.kind, ValueKind::Intermediate));
            if in_regs && ranges[vi].0 <= oi && oi <= ranges[vi].1 {
                live += s.smg.block_footprint(graph, id, &restrict);
            }
        }
        peak = peak.max(live);
    }
    acc + peak + REG_OVERHEAD_BYTES
}

/// Flop count of one op over a restricted tile.
pub fn tile_flops(graph: &Graph, smg: &Smg, op_idx: usize, restrict: &[(DimId, usize)]) -> u64 {
    let op = &graph.ops()[op_idx];
    let restricted_extent = |d: DimId| -> u64 {
        restrict
            .iter()
            .find(|(rd, _)| *rd == d)
            .map(|&(_, b)| b.min(smg.extent(d)))
            .unwrap_or(smg.extent(d)) as u64
    };
    match &op.kind {
        OpKind::Gemm { .. } => {
            // Iteration space volume × 2 (multiply-add).
            let iter = &smg.spaces[smg.iter_space[op_idx].0];
            2 * iter
                .dims
                .iter()
                .map(|&d| restricted_extent(d))
                .product::<u64>()
        }
        OpKind::Reduce { .. } => {
            let iter = &smg.spaces[smg.iter_space[op_idx].0];
            iter.dims
                .iter()
                .map(|&d| restricted_extent(d))
                .product::<u64>()
        }
        _ => {
            // One op per restricted output element.
            let out = op.output;
            graph
                .shape(out)
                .dims()
                .iter()
                .enumerate()
                .map(|(axis, &e)| {
                    let d = smg.value_axes[out.0][axis];
                    restrict
                        .iter()
                        .find(|(rd, _)| *rd == d)
                        .map(|&(_, b)| b.min(e) as u64)
                        .unwrap_or(e as u64)
                })
                .product()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::plan_temporal;
    use crate::smg::build_smg;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(m: usize, l: usize, k: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![m, k]));
        let kk = g.input("k", Shape::new(vec![l, k]));
        let v = g.input("v", Shape::new(vec![l, k]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    fn mha_schedule(
        m: usize,
        l: usize,
        k: usize,
        bm: usize,
        bt: Option<usize>,
    ) -> (Graph, FusedSchedule) {
        let g = mha(m, l, k);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let l_dim = smg.value_axes[1][0];
        let spatial = vec![(m_dim, bm)];
        let temporal = bt.map(|b| TemporalSchedule {
            plan: plan_temporal(&g, &smg, l_dim).unwrap(),
            block: b,
            split: None,
        });
        let mem = assign_memory(&g, &smg, &spatial, temporal.as_ref(), 32 << 10);
        (
            g.clone(),
            FusedSchedule {
                smg,
                spatial,
                temporal,
                mem,
            },
        )
    }

    #[test]
    fn mha_assignment_follows_section_5_4() {
        let (g, s) = mha_schedule(64, 1024, 64, 64, Some(64));
        // Inputs are global and staged (small tiles).
        assert_eq!(s.level(sf_ir::ValueId(0)), MemLevel::Global);
        assert!(s.is_staged(sf_ir::ValueId(0)));
        // QK (gemm1 output, an A2O sink) is shared.
        let qk = g.ops()[0].output;
        assert_eq!(s.level(qk), MemLevel::Shared);
        // Max / Sum / Out are sliced-reduction accumulators → registers
        // (Out itself is a kernel output → global).
        let max_out = g.ops()[1].output;
        let sum_out = g.ops()[4].output;
        assert_eq!(s.level(max_out), MemLevel::Register);
        assert_eq!(s.level(sum_out), MemLevel::Register);
        // Sub and Exp sit on O2O chains... Exp feeds both sum (O2O) and
        // div (O2O) so it stays in registers; Div is an O2A source →
        // shared.
        let sub_out = g.ops()[2].output;
        let exp_out = g.ops()[3].output;
        let div_out = g.ops()[5].output;
        assert_eq!(s.level(sub_out), MemLevel::Register);
        assert_eq!(s.level(exp_out), MemLevel::Register);
        assert_eq!(s.level(div_out), MemLevel::Shared);
    }

    #[test]
    fn temporal_slicing_shrinks_shared_footprint() {
        let (g_sliced, sliced) = mha_schedule(64, 1024, 64, 64, Some(64));
        let (g_flat, flat) = mha_schedule(64, 1024, 64, 64, None);
        let a = sliced.smem_per_block(&g_sliced);
        let b = flat.smem_per_block(&g_flat);
        assert!(
            a * 4 < b,
            "temporal slicing should cut smem by >4x: sliced={a} flat={b}"
        );
        // The flat schedule exceeds a V100's 96 KiB budget; the sliced
        // one fits — the mechanism behind fusion failures vs successes.
        assert!(b > 96 << 10);
        assert!(a < 96 << 10);
    }

    #[test]
    fn registers_track_accumulators() {
        let (g, s) = mha_schedule(64, 1024, 64, 64, Some(64));
        let regs = s.regs_per_block(&g);
        // Out accumulator alone is 64×64×4 = 16 KiB.
        assert!(regs >= 16 << 10);
        assert!(regs <= 256 << 10, "must fit the register file: {regs}");
    }

    #[test]
    fn large_weights_are_streamed() {
        let mut g = Graph::new("mlp", DType::F16);
        let x = g.input("x", Shape::new(vec![512, 256]));
        let w = g.weight("w", Shape::new(vec![256, 256]));
        let h = g.gemm(x, w, false).unwrap();
        let r = g.unary(UnaryOp::Relu, h).unwrap();
        g.mark_output(r);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let spatial = vec![(m_dim, 64)];
        let mem = assign_memory(&g, &smg, &spatial, None, 32 << 10);
        // Weight tile is 256×256×2 = 128 KiB > 32 KiB limit → streamed.
        assert!(!mem.staged[1]);
        // x tile is 64×256×2 = 32 KiB ≤ limit → staged.
        assert!(mem.staged[0]);
    }

    #[test]
    fn tile_flops_scale_with_restriction() {
        let g = mha(64, 1024, 64);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let l_dim = smg.value_axes[1][0];
        // GEMM1 full: 2·64·1024·64.
        assert_eq!(tile_flops(&g, &smg, 0, &[]), 2 * 64 * 1024 * 64);
        // Restricted to one block/tile: 2·16·128·64.
        assert_eq!(
            tile_flops(&g, &smg, 0, &[(m_dim, 16), (l_dim, 128)]),
            2 * 16 * 128 * 64
        );
        // Element-wise op: restricted output volume.
        assert_eq!(
            tile_flops(&g, &smg, 2, &[(m_dim, 16), (l_dim, 128)]),
            16 * 128
        );
    }
}
