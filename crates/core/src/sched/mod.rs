//! Auto-scheduling (paper §5).
//!
//! * [`schedule`] — the concrete schedule representation shared by the
//!   tuner and the code generator: spatial block sizes, the temporal plan
//!   with its block size, the memory-hierarchy assignment, and the
//!   derived per-block resource footprints.
//! * [`memory`] — memory-hierarchy scheduling (§5.4): data spaces are
//!   assigned to register / shared / global levels from their mapping
//!   roles, with liveness-aware footprint accounting.
//! * [`resource`] — resource-aware slicing (Algorithm 1): spatial slicing
//!   of all eligible dimensions, temporal slicing of the priority
//!   dimension, and enumeration of block-size configurations that satisfy
//!   the hardware resource constraints.
//! * [`partition`] — SMG partitioning (Algorithm 2) for unschedulable
//!   SMGs, plus the §5.3 candidate-schedule exploration.

pub mod memory;
pub mod partition;
pub mod resource;
pub mod schedule;

pub use memory::{assign_memory, MemLevel, MemoryAssignment};
pub use partition::{alternative_cut, extract_ops, partition_round, split_graph, sub_smg_units};
pub use resource::{resource_aware_slicing, SlicingOptions};
pub use schedule::{
    normalize_partitions, op_roles, FusedSchedule, OpRole, SplitK, TemporalSchedule,
};
