//! Resource-aware slicing (paper §5.1, Algorithm 1).

use super::memory::assign_memory;
use super::schedule::{normalize_partitions, FusedSchedule, SplitK, TemporalSchedule};
use crate::error::{Result, SfError};
use crate::resilience::Deadline;
use crate::slicer::{
    derive_combine, eligible_spatial_dims, pick_temporal_dim, plan_temporal, AggKind, TemporalPlan,
};
use crate::smg::{DimId, Smg};
use sf_gpu_sim::GpuArch;
use sf_ir::Graph;

/// Options controlling the slicing process (also used to model the
/// baseline systems' restricted capabilities and the ablation variants).
#[derive(Debug, Clone)]
pub struct SlicingOptions {
    /// Attempt temporal slicing (§4.3). Disabled for the `Base(SS)`
    /// ablation variant.
    pub enable_temporal: bool,
    /// Allow Update-then-Aggregate. Disabled to model tile-graph systems
    /// (Welder/NNFusion) that cannot transform intra-operator
    /// dependencies.
    pub enable_uta: bool,
    /// Use only this spatial block size (expert-fixed, for the
    /// auto-scheduling-disabled ablation variants).
    pub fixed_spatial_block: Option<usize>,
    /// Use only this temporal block size.
    pub fixed_temporal_block: Option<usize>,
    /// Enumerate split-K variants of temporally sliced schedules
    /// (partitioned tile loop + combine phase). Off for expert-pinned
    /// ablation variants, which model systems without partial-aggregate
    /// schedules.
    pub enable_split: bool,
    /// Cap on the number of feasible schedules returned.
    pub max_configs: usize,
    /// Wall-clock budget for the enumeration. When it expires the loop
    /// stops and returns the feasible configurations found so far — at
    /// least one spatial configuration is always checked, so an expired
    /// deadline narrows the search space but never fails a graph that
    /// has any feasible schedule.
    pub deadline: Deadline,
}

impl Default for SlicingOptions {
    fn default() -> Self {
        SlicingOptions {
            enable_temporal: true,
            enable_uta: true,
            fixed_spatial_block: None,
            fixed_temporal_block: None,
            enable_split: true,
            max_configs: 128,
            deadline: Deadline::none(),
        }
    }
}

/// Candidate block sizes for one dimension of the given extent.
///
/// `min_block` models backend tiling granularity: dimensions that feed a
/// GEMM iteration space cannot be tiled below the tensor-core MMA shape
/// (16), which is what makes flat long-sequence attention genuinely
/// infeasible rather than "feasible with one-row blocks".
fn candidate_sizes(extent: usize, min_block: usize, fixed: Option<usize>) -> Vec<usize> {
    if let Some(b) = fixed {
        return vec![b.clamp(min_block.min(extent), extent.max(1))];
    }
    let mut sizes: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|&b| b <= extent && b >= min_block)
        .collect();
    if sizes.is_empty() {
        sizes.push(extent.max(1));
    }
    sizes
}

/// Minimum block size of a dimension: 16 when the dimension participates
/// in any GEMM iteration space, 1 otherwise.
fn min_block_of(graph: &Graph, smg: &Smg, d: DimId) -> usize {
    let in_gemm = graph.ops().iter().enumerate().any(|(oi, op)| {
        matches!(op.kind, sf_ir::OpKind::Gemm { .. })
            && smg.spaces[smg.iter_space[oi].0].dims.contains(&d)
    });
    if in_gemm {
        16
    } else {
        1
    }
}

/// Candidate split factors. Raw powers of two are normalized against
/// the tile count (every partition must own ≥ 1 tile) and deduplicated;
/// a factor that collapses to 1 is dropped.
const SPLIT_FACTORS: [usize; 3] = [2, 4, 8];

/// Split-K schedule variants for one temporal plan at tile size `tb`:
/// one [`SplitK`] per distinct effective partition count, or none when
/// any sliced reduction lacks a combinable partial-state algebra.
fn split_k_variants(graph: &Graph, plan: &TemporalPlan, extent: usize, tb: usize) -> Vec<SplitK> {
    let n_tiles = extent.div_ceil(tb);
    if n_tiles < 2 {
        return Vec::new();
    }
    let Some(combine) = derive_combine(graph, plan) else {
        return Vec::new();
    };
    let mut out: Vec<SplitK> = Vec::new();
    for want in SPLIT_FACTORS {
        let p = normalize_partitions(n_tiles, want);
        if p >= 2 && !out.iter().any(|s| s.partitions == p) {
            out.push(SplitK {
                partitions: p,
                combine: combine.clone(),
            });
        }
    }
    out
}

/// Finds the highest-priority temporal plan, skipping dimensions whose
/// dependency chains cannot be transformed (paper §4.3's △ cases fall
/// back to the next-priority dimension).
fn find_temporal_plan(
    graph: &Graph,
    smg: &Smg,
    spatial: &[DimId],
    opts: &SlicingOptions,
) -> Option<TemporalPlan> {
    let mut excluded: Vec<DimId> = spatial.to_vec();
    while let Some(dim) = pick_temporal_dim(graph, smg, &excluded) {
        match plan_temporal(graph, smg, dim) {
            Ok(plan) => {
                let needs_uta = plan.sliced.iter().any(|s| matches!(s.agg, AggKind::Uta(_)));
                if needs_uta && !opts.enable_uta {
                    excluded.push(dim);
                    continue;
                }
                // Slicing a dimension with no reductions and no benefit
                // is pointless; require at least one sliced mapping.
                return Some(plan);
            }
            Err(_) => excluded.push(dim),
        }
    }
    None
}

/// Algorithm 1: slices `smg` spatially then temporally and enumerates the
/// block-size configurations that satisfy `arch`'s resource constraints.
///
/// Returns every feasible concrete schedule (the tuner selects among
/// them). Fails with [`SfError::NoSpatialDim`] when no dimension is
/// spatially sliceable and with [`SfError::ResourceInfeasible`] when no
/// configuration fits — both trigger SMG partitioning in the caller.
pub fn resource_aware_slicing(
    graph: &Graph,
    smg: &Smg,
    arch: &GpuArch,
    opts: &SlicingOptions,
) -> Result<Vec<FusedSchedule>> {
    // When no dimension is dependency-free, fall back to single-block
    // schedules (grid 1 per instance): batch-like instances still provide
    // inter-block parallelism. This extends Algorithm 1 to the decode-
    // style shapes where every non-batch dimension carries a reduction.
    let spatial_dims = eligible_spatial_dims(graph, smg);

    let temporal_plan = if opts.enable_temporal {
        find_temporal_plan(graph, smg, &spatial_dims, opts)
    } else {
        None
    };

    // Enumerate spatial configurations (cross product over dims; a
    // single empty configuration when nothing is sliceable).
    let per_dim: Vec<Vec<usize>> = spatial_dims
        .iter()
        .map(|&d| {
            candidate_sizes(
                smg.extent(d),
                min_block_of(graph, smg, d),
                opts.fixed_spatial_block,
            )
        })
        .collect();
    let mut spatial_cfgs: Vec<Vec<usize>> = vec![Vec::new()];
    for sizes in &per_dim {
        let mut next = Vec::with_capacity(spatial_cfgs.len() * sizes.len());
        for cfg in &spatial_cfgs {
            for &s in sizes {
                let mut c = cfg.clone();
                c.push(s);
                next.push(c);
            }
        }
        spatial_cfgs = next;
    }

    let staging_limit = arch.smem_per_block / 4;
    let mut feasible: Vec<FusedSchedule> = Vec::new();
    for (ci, cfg) in spatial_cfgs.iter().enumerate() {
        // Deadline: stop enumerating once the budget is gone, keeping
        // whatever is already feasible. The first configuration is
        // always checked so best-so-far is never empty-by-timeout
        // alone.
        if ci > 0 && opts.deadline.expired() {
            break;
        }
        let spatial: Vec<(DimId, usize)> = spatial_dims
            .iter()
            .copied()
            .zip(cfg.iter().copied())
            .collect();

        // Spatial-only variant.
        let mem = assign_memory(graph, smg, &spatial, None, staging_limit);
        let s = FusedSchedule {
            smg: smg.clone(),
            spatial: spatial.clone(),
            temporal: None,
            mem,
        };
        if arch.block_fits(s.smem_per_block(graph), s.regs_per_block(graph)) {
            feasible.push(s);
        }

        // Temporally sliced variants. The paper notes slicing is
        // attempted whether or not the spatial schedule already fits:
        // "some SMGs that cannot satisfy the hardware resource
        // constraints during the spatial slicing become efficient after
        // being temporal sliced".
        if let Some(plan) = &temporal_plan {
            let tmin = min_block_of(graph, smg, plan.dim);
            for tb in candidate_sizes(smg.extent(plan.dim), tmin, opts.fixed_temporal_block) {
                if tb < 8 && smg.extent(plan.dim) >= 8 {
                    continue; // degenerate intra-blocks.
                }
                let temporal = Some(TemporalSchedule {
                    plan: plan.clone(),
                    block: tb,
                    split: None,
                });
                let mem = assign_memory(graph, smg, &spatial, temporal.as_ref(), staging_limit);
                let s = FusedSchedule {
                    smg: smg.clone(),
                    spatial: spatial.clone(),
                    temporal,
                    mem,
                };
                if arch.block_fits(s.smem_per_block(graph), s.regs_per_block(graph)) {
                    // Split-K variants: partition the tile loop into P
                    // parallel partial accumulators when every sliced
                    // reduction has a combinable partial-state algebra
                    // (§ DESIGN 3i). The serial variant stays in the
                    // pool too — the tuner arbitrates. Expert-pinned
                    // configurations never split: without the tuner the
                    // pipeline picks the last candidate blindly, and
                    // the systems those ablations model have no
                    // partial-aggregate schedules.
                    let splits = if opts.enable_split
                        && opts.fixed_spatial_block.is_none()
                        && opts.fixed_temporal_block.is_none()
                    {
                        split_k_variants(graph, plan, smg.extent(plan.dim), tb)
                    } else {
                        Vec::new()
                    };
                    feasible.push(s);
                    for split in splits {
                        let temporal = Some(TemporalSchedule {
                            plan: plan.clone(),
                            block: tb,
                            split: Some(split),
                        });
                        let mem =
                            assign_memory(graph, smg, &spatial, temporal.as_ref(), staging_limit);
                        feasible.push(FusedSchedule {
                            smg: smg.clone(),
                            spatial: spatial.clone(),
                            temporal,
                            mem,
                        });
                    }
                }
            }
        }
        if feasible.len() >= opts.max_configs * 2 {
            break;
        }
    }

    if feasible.is_empty() {
        return Err(SfError::ResourceInfeasible(format!(
            "graph '{}' ({} ops) has no feasible block configuration on {}",
            graph.name(),
            graph.ops().len(),
            arch.name
        )));
    }
    feasible.truncate(opts.max_configs);
    Ok(feasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smg::build_smg;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(m: usize, l: usize, k: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("q", Shape::new(vec![m, k]));
        let kk = g.input("k", Shape::new(vec![l, k]));
        let v = g.input("v", Shape::new(vec![l, k]));
        let qk = g.gemm(q, kk, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn mha_long_sequence_requires_temporal_slicing() {
        let g = mha(4096, 4096, 64);
        let smg = build_smg(&g).unwrap();
        let arch = GpuArch::volta();
        let schedules =
            resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap();
        assert!(!schedules.is_empty());
        // Every feasible schedule at this size is temporally sliced.
        assert!(schedules.iter().all(|s| s.temporal.is_some()));
    }

    #[test]
    fn without_uta_long_mha_is_infeasible() {
        // Models the tile-graph (Welder) limitation: the dependent
        // reduction chain cannot be sliced, and the flat intermediate
        // does not fit.
        let g = mha(4096, 4096, 64);
        let smg = build_smg(&g).unwrap();
        let arch = GpuArch::volta();
        let opts = SlicingOptions {
            enable_uta: false,
            ..Default::default()
        };
        let err = resource_aware_slicing(&g, &smg, &arch, &opts);
        assert!(matches!(err, Err(SfError::ResourceInfeasible(_))));
    }

    #[test]
    fn short_mha_fits_without_temporal_slicing_too() {
        let g = mha(256, 128, 64);
        let smg = build_smg(&g).unwrap();
        let arch = GpuArch::ampere();
        let schedules =
            resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap();
        assert!(schedules.iter().any(|s| s.temporal.is_none()));
        assert!(schedules.iter().any(|s| s.temporal.is_some()));
    }

    #[test]
    fn all_schedules_respect_resource_bounds() {
        let g = mha(1024, 1024, 64);
        let smg = build_smg(&g).unwrap();
        for arch in [GpuArch::volta(), GpuArch::ampere(), GpuArch::hopper()] {
            let schedules =
                resource_aware_slicing(&g, &smg, &arch, &SlicingOptions::default()).unwrap();
            for s in &schedules {
                assert!(s.smem_per_block(&g) <= arch.smem_per_block);
                assert!(s.regs_per_block(&g) <= arch.regs_per_block);
            }
        }
    }

    #[test]
    fn fixed_blocks_reduce_the_search_space() {
        let g = mha(1024, 1024, 64);
        let smg = build_smg(&g).unwrap();
        let arch = GpuArch::ampere();
        let opts = SlicingOptions {
            fixed_spatial_block: Some(64),
            fixed_temporal_block: Some(64),
            ..Default::default()
        };
        let schedules = resource_aware_slicing(&g, &smg, &arch, &opts).unwrap();
        assert!(schedules.len() <= 2);
        for s in &schedules {
            assert_eq!(s.spatial[0].1, 64);
        }
    }

    #[test]
    fn unsliceable_graph_falls_back_to_single_block() {
        // A graph whose every dimension carries a reduction cannot be
        // spatially sliced; it is scheduled as one block per instance.
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![1, 64]));
        let s = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        g.mark_output(e);
        let smg = build_smg(&g).unwrap();
        let schedules =
            resource_aware_slicing(&g, &smg, &GpuArch::ampere(), &SlicingOptions::default())
                .unwrap();
        assert!(schedules.iter().all(|s| s.grid() == 1));
    }

    #[test]
    fn candidate_sizes_respect_extent_and_min_block() {
        assert_eq!(candidate_sizes(5, 1, None), vec![1, 2, 4]);
        assert_eq!(candidate_sizes(64, 1, Some(32)), vec![32]);
        assert_eq!(candidate_sizes(16, 1, Some(64)), vec![16]);
        assert!(candidate_sizes(4096, 16, None).contains(&256));
        assert!(!candidate_sizes(4096, 16, None).contains(&8));
    }
}
