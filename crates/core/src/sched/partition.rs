//! SMG partitioning (paper §5.2, Algorithm 2; §5.3 candidate schedules).
//!
//! When resource-aware slicing fails — the fusion is too aggressive for
//! the hardware budget, or no dimension is spatially sliceable — the SMG
//! is reorganized into *sub-SMGs* and split into a schedulable former
//! part `G_f` and a latter part `G_l` that re-enters scheduling. A
//! sub-SMG is either a single All-to-One iteration space with its
//! neighbouring data spaces (a GEMM or a reduction) or a maximal run of
//! non-All-to-One operators (element-wise chains, broadcasts). The
//! intermediate data space at the cut is duplicated: it becomes an output
//! of `G_f` and an input of `G_l`.

use crate::error::{Result, SfError};
use sf_ir::{Graph, OpKind, ValueId, ValueKind};

/// Groups the operators of `graph` into sub-SMG unit ranges
/// `[start, end)`.
///
/// Each GEMM or reduction (an All-to-One iteration space) forms its own
/// unit; consecutive non-All-to-One operators merge into one unit.
pub fn sub_smg_units(graph: &Graph) -> Vec<(usize, usize)> {
    let mut units: Vec<(usize, usize)> = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, op) in graph.ops().iter().enumerate() {
        let is_a2o = matches!(op.kind, OpKind::Gemm { .. } | OpKind::Reduce { .. });
        if is_a2o {
            if let Some(s) = run_start.take() {
                units.push((s, i));
            }
            units.push((i, i + 1));
        } else if run_start.is_none() {
            run_start = Some(i);
        }
    }
    if let Some(s) = run_start {
        units.push((s, graph.ops().len()));
    }
    units
}

/// Splits `graph` at operator index `cut`: the former graph gets ops
/// `[0, cut)`, the latter `[cut, len)`. Cut intermediates are duplicated
/// (outputs of the former, inputs of the latter) under their original
/// names, so multi-kernel execution can chain them through a shared
/// environment.
pub fn split_graph(graph: &Graph, cut: usize) -> Result<(Graph, Graph)> {
    if cut == 0 || cut >= graph.ops().len() {
        return Err(SfError::Unpartitionable(format!(
            "cut {cut} out of range for {} ops",
            graph.ops().len()
        )));
    }
    let former = extract_ops(graph, 0, cut, &format!("{}.f", graph.name()))?;
    let latter = extract_ops(
        graph,
        cut,
        graph.ops().len(),
        &format!("{}.l", graph.name()),
    )?;
    Ok((former, latter))
}

/// Extracts ops `[start, end)` into a standalone graph.
///
/// External operands become inputs/weights under their original names;
/// values consumed outside the range (or marked as graph outputs) become
/// outputs. Used by Algorithm 2 and by the policy-based fusion grouping.
pub fn extract_ops(graph: &Graph, start: usize, end: usize, name: &str) -> Result<Graph> {
    let mut sub = Graph::new(name, graph.dtype());
    sub.instances = graph.instances;
    let mut map: Vec<Option<ValueId>> = vec![None; graph.values().len()];

    for oi in start..end {
        let op = &graph.ops()[oi];
        let mut inputs = Vec::with_capacity(op.inputs.len());
        for &raw in &op.inputs {
            let id = match map[raw.0] {
                Some(id) => id,
                None => {
                    let info = graph.value(raw);
                    let id = match info.kind {
                        ValueKind::Weight => sub.weight(info.name.clone(), info.shape.clone()),
                        _ => sub.input(info.name.clone(), info.shape.clone()),
                    };
                    map[raw.0] = Some(id);
                    id
                }
            };
            inputs.push(id);
        }
        let out = replay(&mut sub, &op.kind, &inputs)?;
        // Keep the original name so cross-kernel bindings line up.
        sub.rename_value(out, graph.value(op.output).name.clone());
        map[op.output.0] = Some(out);
    }

    // Outputs: produced here and consumed outside, or graph outputs.
    for oi in start..end {
        let out = graph.ops()[oi].output;
        let consumed_outside = graph
            .consumers(out)
            .iter()
            .any(|c| c.0 < start || c.0 >= end);
        if consumed_outside || graph.outputs().contains(&out) {
            let id = map[out.0].ok_or(SfError::Unpartitionable("lost value".into()))?;
            sub.mark_output(id);
        }
    }
    Ok(sub)
}

fn replay(g: &mut Graph, kind: &OpKind, inputs: &[ValueId]) -> Result<ValueId> {
    let out = match kind {
        OpKind::Gemm { transpose_b } => g.gemm(inputs[0], inputs[1], *transpose_b)?,
        OpKind::Unary(u) => g.unary(*u, inputs[0])?,
        OpKind::Binary(b) => g.binary(*b, inputs[0], inputs[1])?,
        OpKind::Scalar { op, value } => g.scalar(*op, inputs[0], *value)?,
        OpKind::Reduce { op, dim } => g.reduce(*op, inputs[0], *dim)?,
        OpKind::Broadcast { dim, extent } => g.broadcast(inputs[0], *dim, *extent)?,
        OpKind::LayoutBarrier => {
            return Err(SfError::Unpartitionable(
                "layout barrier in fused region".into(),
            ))
        }
    };
    Ok(out)
}

/// A single round of Algorithm 2: iteratively peels the last sub-SMG off
/// `G_f` into `G_l` until `is_schedulable(G_f)` holds.
///
/// Returns `(G_f, G_l)`. Fails when even the first unit alone is not
/// schedulable.
pub fn partition_round(
    graph: &Graph,
    is_schedulable: &dyn Fn(&Graph) -> bool,
) -> Result<(Graph, Graph)> {
    let units = sub_smg_units(graph);
    if units.len() < 2 {
        return Err(SfError::Unpartitionable(format!(
            "graph '{}' has a single sub-SMG",
            graph.name()
        )));
    }
    // Try cuts from the largest former part downwards.
    for cut_unit in (1..units.len()).rev() {
        let cut = units[cut_unit].0;
        let (former, latter) = split_graph(graph, cut)?;
        if is_schedulable(&former) {
            return Ok((former, latter));
        }
    }
    Err(SfError::Unpartitionable(format!(
        "no prefix of graph '{}' is schedulable",
        graph.name()
    )))
}

/// §5.3: given a schedulable cut, also propose the variant that moves one
/// more trailing *non-All-to-One* unit from `G_f` to `G_l`. Returns the
/// alternative cut position if it exists.
pub fn alternative_cut(graph: &Graph, cut: usize) -> Option<usize> {
    let units = sub_smg_units(graph);
    let idx = units.iter().position(|&(s, _)| s == cut)?;
    if idx == 0 {
        return None;
    }
    let (prev_start, prev_end) = units[idx - 1];
    let prev_is_a2o = matches!(
        graph.ops()[prev_start].kind,
        OpKind::Gemm { .. } | OpKind::Reduce { .. }
    ) && prev_end - prev_start == 1;
    if prev_is_a2o || prev_start == 0 {
        None
    } else {
        Some(prev_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};
    use std::collections::HashMap;

    /// gemm → bias → relu → gemm → bias → relu (two MLP layers).
    fn mlp2() -> Graph {
        let mut g = Graph::new("mlp2", DType::F32);
        let x = g.input("x", Shape::new(vec![8, 16]));
        let w1 = g.weight("w1", Shape::new(vec![16, 16]));
        let b1 = g.weight("b1", Shape::new(vec![1, 16]));
        let w2 = g.weight("w2", Shape::new(vec![16, 16]));
        let b2 = g.weight("b2", Shape::new(vec![1, 16]));
        let h = g.gemm(x, w1, false).unwrap();
        let h = g.binary(BinaryOp::Add, h, b1).unwrap();
        let h = g.unary(UnaryOp::Relu, h).unwrap();
        let y = g.gemm(h, w2, false).unwrap();
        let y = g.binary(BinaryOp::Add, y, b2).unwrap();
        let y = g.unary(UnaryOp::Relu, y).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn units_alternate_a2o_and_elementwise() {
        let g = mlp2();
        let units = sub_smg_units(&g);
        // gemm | add+relu | gemm | add+relu.
        assert_eq!(units, vec![(0, 1), (1, 3), (3, 4), (4, 6)]);
    }

    #[test]
    fn units_merge_elementwise_runs() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 4]));
        let a = g.unary(UnaryOp::Exp, x).unwrap();
        let b = g.unary(UnaryOp::Relu, a).unwrap();
        let c = g.scalar(BinaryOp::Mul, b, 2.0).unwrap();
        g.mark_output(c);
        assert_eq!(sub_smg_units(&g), vec![(0, 3)]);
    }

    #[test]
    fn split_graphs_execute_equivalently() {
        let g = mlp2();
        let (f, l) = split_graph(&g, 3).unwrap();
        assert_eq!(f.ops().len(), 3);
        assert_eq!(l.ops().len(), 3);

        let bindings = g.random_bindings(9);
        let whole = g.execute(&bindings).unwrap();

        let mut env: HashMap<String, _> = bindings.clone();
        let f_out = f.execute(&env).unwrap();
        // The cut value keeps its original name.
        let cut_name = f
            .values()
            .iter()
            .find(|v| matches!(v.kind, ValueKind::Intermediate))
            .map(|_| f.value(*f.outputs().first().unwrap()).name.clone())
            .unwrap();
        env.insert(cut_name, f_out[0].clone());
        let l_out = l.execute(&env).unwrap();
        assert!(l_out[0].allclose(&whole[0], 1e-5));
    }

    #[test]
    fn split_rejects_degenerate_cuts() {
        let g = mlp2();
        assert!(split_graph(&g, 0).is_err());
        assert!(split_graph(&g, 6).is_err());
    }

    #[test]
    fn partition_round_finds_largest_schedulable_prefix() {
        let g = mlp2();
        // Schedulable iff at most 4 ops: expect the cut at unit (4,6),
        // i.e. G_f = first 4 ops.
        let (f, l) = partition_round(&g, &|g| g.ops().len() <= 4).unwrap();
        assert_eq!(f.ops().len(), 4);
        assert_eq!(l.ops().len(), 2);
    }

    #[test]
    fn partition_round_peels_until_schedulable() {
        let g = mlp2();
        let (f, l) = partition_round(&g, &|g| g.ops().len() <= 1).unwrap();
        assert_eq!(f.ops().len(), 1);
        assert_eq!(l.ops().len(), 5);
    }

    #[test]
    fn partition_round_fails_when_nothing_fits() {
        let g = mlp2();
        assert!(matches!(
            partition_round(&g, &|_| false),
            Err(SfError::Unpartitionable(_))
        ));
    }

    #[test]
    fn alternative_cut_moves_elementwise_unit() {
        let g = mlp2();
        // Cut at op 3 (second gemm): the previous unit (1,3) is
        // element-wise, so the §5.3 alternative moves it too: cut at 1.
        assert_eq!(alternative_cut(&g, 3), Some(1));
        // Cut at op 1: previous unit is the gemm (A2O) → no alternative.
        assert_eq!(alternative_cut(&g, 1), None);
    }

    #[test]
    fn reduce_ops_are_their_own_units() {
        let mut g = Graph::new("t", DType::F32);
        let x = g.input("x", Shape::new(vec![4, 8]));
        let e = g.unary(UnaryOp::Exp, x).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        g.mark_output(d);
        assert_eq!(sub_smg_units(&g), vec![(0, 1), (1, 2), (2, 3)]);
    }
}
