//! Concrete fusion schedules.

use super::memory::{MemLevel, MemoryAssignment};
use crate::slicer::{CombineSpec, TemporalPlan};
use crate::smg::{DimId, Smg};
use sf_ir::{Graph, ValueId};

/// Split-K reduction: the temporal tile loop is cut into `partitions`
/// independent ranges, each producing a partial aggregate state, folded
/// by a deterministic fixed-order combine phase (Neptune-style split
/// reduction / FlashDecoding). The serial executor walks partitions in
/// the same order with the same combine, so results are bit-identical
/// at every thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitK {
    /// Number of parallel partial accumulators (≥ 2, and every
    /// partition owns a non-empty tile range — see
    /// [`normalize_partitions`]).
    pub partitions: usize,
    /// Per-sliced-reduction combine algebra, in
    /// [`TemporalPlan::sliced`] order.
    pub combine: Vec<CombineSpec>,
}

/// Temporal slicing with its chosen intra-block size.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalSchedule {
    /// The slicing plan (dimension, sliced reductions, phases).
    pub plan: TemporalPlan,
    /// Intra-block extent along the sliced dimension.
    pub block: usize,
    /// Optional split-K partitioning of the tile loop.
    pub split: Option<SplitK>,
}

impl TemporalSchedule {
    /// Number of split-K partitions (1 when unsplit).
    pub fn partitions(&self) -> usize {
        self.split.as_ref().map_or(1, |s| s.partitions)
    }

    /// Tile range `[lo, hi)` of partition `p` over `n_tiles` tiles.
    /// Every partition of a normalized count is non-empty.
    pub fn partition_tiles(&self, n_tiles: usize, p: usize) -> (usize, usize) {
        let per = n_tiles.div_ceil(self.partitions());
        (p * per, ((p + 1) * per).min(n_tiles))
    }
}

/// Largest partition count `≤ want` for which every partition owns at
/// least one of `n_tiles` tiles under the `ceil(T/P)`-sized blocking.
/// Iterating `P ↦ ceil(T / ceil(T/P))` to its fixed point removes the
/// trailing empty partitions a naive ceil-split can produce (e.g.
/// `T=5, want=4` gives per=2 and only 3 non-empty partitions).
pub fn normalize_partitions(n_tiles: usize, want: usize) -> usize {
    let mut p = want.clamp(1, n_tiles.max(1));
    loop {
        let per = n_tiles.div_ceil(p).max(1);
        let effective = n_tiles.div_ceil(per).max(1);
        if effective == p {
            return p;
        }
        p = effective;
    }
}

/// A fully concrete schedule for one fused kernel.
#[derive(Debug, Clone)]
pub struct FusedSchedule {
    /// The SMG this schedule slices.
    pub smg: Smg,
    /// Spatially sliced dimensions with their block sizes.
    pub spatial: Vec<(DimId, usize)>,
    /// Optional temporal slicing.
    pub temporal: Option<TemporalSchedule>,
    /// Memory-hierarchy assignment of every value.
    pub mem: MemoryAssignment,
}

/// Role of an operator under a temporal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRole {
    /// Executed once per intra-block (its output spans the sliced dim).
    InLoop,
    /// A sliced reduction: aggregated across intra-blocks. The payload is
    /// the index into [`TemporalPlan::sliced`].
    SlicedReduction(usize),
    /// Executed after the intra-block loop on finalized aggregates.
    PostLoop,
}

impl FusedSchedule {
    /// All dimension restrictions of one block (spatial blocks plus the
    /// temporal block when present) — the tile footprint context.
    pub fn block_restrictions(&self) -> Vec<(DimId, usize)> {
        let mut r = self.spatial.clone();
        if let Some(t) = &self.temporal {
            r.push((t.plan.dim, t.block));
        }
        r
    }

    /// Restrictions that persist for the whole block (spatial only).
    pub fn spatial_restrictions(&self) -> &[(DimId, usize)] {
        &self.spatial
    }

    /// Number of thread blocks per instance.
    pub fn grid(&self) -> u64 {
        self.spatial
            .iter()
            .map(|&(d, b)| self.smg.extent(d).div_ceil(b) as u64)
            .product()
    }

    /// Number of intra-blocks in the temporal loop (1 if unsliced).
    pub fn intra_blocks(&self) -> u64 {
        match &self.temporal {
            Some(t) => self.smg.extent(t.plan.dim).div_ceil(t.block) as u64,
            None => 1,
        }
    }

    /// Per-block footprint of one value under this schedule's
    /// restrictions.
    pub fn value_footprint(&self, graph: &Graph, v: ValueId) -> u64 {
        self.smg
            .block_footprint(graph, v, &self.block_restrictions())
    }

    /// Shared-memory bytes per block (liveness-aware maximum).
    pub fn smem_per_block(&self, graph: &Graph) -> u64 {
        super::memory::smem_per_block(graph, self)
    }

    /// Register bytes per block.
    pub fn regs_per_block(&self, graph: &Graph) -> u64 {
        super::memory::regs_per_block(graph, self)
    }

    /// Whether `v` is staged in shared memory for the whole block.
    pub fn is_staged(&self, v: ValueId) -> bool {
        self.mem.staged[v.0]
    }

    /// Memory level of `v`.
    pub fn level(&self, v: ValueId) -> MemLevel {
        self.mem.level[v.0]
    }
}

/// Classifies every operator of `graph` under `schedule`.
///
/// Without temporal slicing every op is [`OpRole::InLoop`] (there is a
/// single implicit intra-block).
pub fn op_roles(graph: &Graph, schedule: &FusedSchedule) -> Vec<OpRole> {
    let Some(t) = &schedule.temporal else {
        return vec![OpRole::InLoop; graph.ops().len()];
    };
    let dim = t.plan.dim;
    graph
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            if let Some(idx) = t.plan.sliced.iter().position(|s| s.op.0 == i) {
                OpRole::SlicedReduction(idx)
            } else if schedule.smg.value_has_dim(graph, op.output, dim) {
                OpRole::InLoop
            } else {
                OpRole::PostLoop
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::memory::assign_memory;
    use crate::slicer::plan_temporal;
    use crate::smg::build_smg;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn softmax(m: usize, n: usize) -> Graph {
        let mut g = Graph::new("softmax", DType::F16);
        let x = g.input("x", Shape::new(vec![m, n]));
        let mx = g.reduce(ReduceOp::Max, x, 1).unwrap();
        let s = g.binary(BinaryOp::Sub, x, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, s).unwrap();
        let z = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, z).unwrap();
        g.mark_output(d);
        g
    }

    #[test]
    fn grid_and_intra_block_counts() {
        let g = softmax(100, 256);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let n_dim = smg.value_axes[0][1];
        let plan = plan_temporal(&g, &smg, n_dim).unwrap();
        let spatial = vec![(m_dim, 16)];
        let temporal = Some(TemporalSchedule {
            plan,
            block: 64,
            split: None,
        });
        let mem = assign_memory(&g, &smg, &spatial, temporal.as_ref(), 32 << 10);
        let s = FusedSchedule {
            smg,
            spatial,
            temporal,
            mem,
        };
        assert_eq!(s.grid(), 7); // ceil(100/16)
        assert_eq!(s.intra_blocks(), 4); // ceil(256/64)
        assert_eq!(s.block_restrictions().len(), 2);
    }

    #[test]
    fn roles_classify_reductions_and_loop_ops() {
        let g = softmax(64, 256);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let n_dim = smg.value_axes[0][1];
        let plan = plan_temporal(&g, &smg, n_dim).unwrap();
        let spatial = vec![(m_dim, 16)];
        let temporal = Some(TemporalSchedule {
            plan,
            block: 64,
            split: None,
        });
        let mem = assign_memory(&g, &smg, &spatial, temporal.as_ref(), 32 << 10);
        let s = FusedSchedule {
            smg,
            spatial,
            temporal,
            mem,
        };
        let roles = op_roles(&g, &s);
        // max, sub, exp, sum, div.
        assert_eq!(roles[0], OpRole::SlicedReduction(0));
        assert_eq!(roles[1], OpRole::InLoop);
        assert_eq!(roles[2], OpRole::InLoop);
        assert_eq!(roles[3], OpRole::SlicedReduction(1));
        assert_eq!(roles[4], OpRole::InLoop);
    }

    #[test]
    fn no_temporal_means_all_in_loop() {
        let g = softmax(64, 64);
        let smg = build_smg(&g).unwrap();
        let m_dim = smg.value_axes[0][0];
        let spatial = vec![(m_dim, 16)];
        let mem = assign_memory(&g, &smg, &spatial, None, 32 << 10);
        let s = FusedSchedule {
            smg,
            spatial,
            temporal: None,
            mem,
        };
        assert!(op_roles(&g, &s).iter().all(|r| *r == OpRole::InLoop));
        assert_eq!(s.intra_blocks(), 1);
    }
}
