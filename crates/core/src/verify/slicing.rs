//! Slicing-legality checks (`SLC101`–`SLC103`).
//!
//! Re-validates what the slicers decided:
//!
//! * `SLC101` — Table 3: a spatially sliced dimension may carry only
//!   One-to-All mappings sourced from kernel inputs (global residents).
//!   Any All-to-One, or a One-to-All out of an intermediate, is a flow
//!   dependency across blocks and makes the dimension illegal.
//! * `SLC102` — every operator the temporal plan lists as a sliced
//!   reduction must actually reduce the sliced dimension (its
//!   iteration space carries an All-to-One along it).
//! * `SLC103` — the declared aggregation (Simple Aggregate or UTA with
//!   specific factors) must match an independent re-run of the
//!   broadcast-postposition / update-path back-trace of §4.3. A chain
//!   for which the back-trace fails has no derivable update function
//!   and must not have been sliced.
//! * `SLC104` — a split-K schedule's combine phase must agree with the
//!   combine algebra independently re-derived from the graph: one
//!   `StorePartial`/`Combine` pair per sliced reduction, the full
//!   partition count folded, the associative merge operator the
//!   reduction kind dictates, and rescaling on exactly the UTA
//!   partials.

use super::{DiagCode, Diagnostic, Span};
use crate::codegen::{Instr, KernelProgram};
use crate::slicer::{derive_combine, update::update_factors, AggKind, UpdateFactor};
use crate::smg::{MappingKind, SpaceKind};
use sf_ir::OpId;

/// Runs the slicing-legality checks over one kernel.
pub fn check_slicing(kp: &KernelProgram) -> Vec<Diagnostic> {
    let g = &kp.graph;
    let smg = &kp.schedule.smg;
    let mut diags = Vec::new();

    for &(d, block) in &kp.schedule.spatial {
        for m in smg.mappings_in_dim(d) {
            let legal = match m.kind {
                MappingKind::OneToAll(_) => smg.is_kernel_input_space(g, m.src),
                // All-to-One in the dimension: blocks would have to
                // exchange partial reductions.
                MappingKind::AllToOne(_) => false,
                MappingKind::OneToOne => true,
            };
            if !legal {
                let what = match (m.kind, smg.spaces[m.src.0].kind) {
                    (MappingKind::AllToOne(_), SpaceKind::Iter { op }) => format!(
                        "a reduction flow dependency ({} at op #{})",
                        g.ops()[op.0].kind.name(),
                        op.0
                    ),
                    (_, SpaceKind::Data { value }) => format!(
                        "a One-to-All sourced from intermediate '{}'",
                        g.value_name(value)
                    ),
                    _ => "a flow dependency".to_string(),
                };
                diags.push(Diagnostic::new(
                    DiagCode::SlcIllegalSpatialDim,
                    Span::Schedule { dim: d, block },
                    format!(
                        "spatially sliced dimension {} carries {what} — blocks are not \
                         independent (Table 3)",
                        smg.dims[d.0].name
                    ),
                ));
            }
        }
    }

    let Some(t) = &kp.schedule.temporal else {
        return diags;
    };
    let dim = t.plan.dim;
    let sliced_ops: Vec<OpId> = t.plan.sliced.iter().map(|s| s.op).collect();

    for s in &t.plan.sliced {
        if s.op.0 >= g.ops().len() {
            diags.push(Diagnostic::new(
                DiagCode::SlcNotASlicedReduction,
                Span::Op(s.op),
                format!("sliced reduction references unknown op #{}", s.op.0),
            ));
            continue;
        }
        let is = smg.iter_space[s.op.0];
        let reduces_dim = smg
            .mappings
            .iter()
            .any(|m| m.src == is && m.kind == MappingKind::AllToOne(dim));
        if !reduces_dim {
            diags.push(Diagnostic::new(
                DiagCode::SlcNotASlicedReduction,
                Span::Op(s.op),
                format!(
                    "op #{} ({}) is listed as a sliced reduction but carries no \
                     All-to-One along {}",
                    s.op.0,
                    g.ops()[s.op.0].kind.name(),
                    smg.dims[dim.0].name
                ),
            ));
            continue;
        }
        match update_factors(g, smg, dim, s.op, &sliced_ops) {
            Err(e) => diags.push(Diagnostic::new(
                DiagCode::SlcUpdateChain,
                Span::Op(s.op),
                format!(
                    "no update function is derivable for op #{} ({}): {e}",
                    s.op.0,
                    g.ops()[s.op.0].kind.name()
                ),
            )),
            Ok(derived) => {
                let declared = match &s.agg {
                    AggKind::Simple => Vec::new(),
                    AggKind::Uta(f) => f.clone(),
                };
                if canon(&derived) != canon(&declared) {
                    diags.push(Diagnostic::new(
                        DiagCode::SlcUpdateChain,
                        Span::Op(s.op),
                        format!(
                            "op #{} ({}) declares {} update factor(s) but the \
                             back-trace derives {} — the aggregation would be wrong",
                            s.op.0,
                            g.ops()[s.op.0].kind.name(),
                            declared.len(),
                            derived.len()
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Runs the split-K partial-aggregate legality check (`SLC104`) over a
/// lowered instruction stream.
///
/// Exposed separately from [`verify_kernel`](super::verify_kernel) so
/// tests can corrupt a stream (drop a partition, swap the combine
/// operator, strip the softmax rescale) and check the analyzer catches
/// it. The combine algebra is re-derived from the graph with
/// [`derive_combine`] rather than trusted from the schedule, so a
/// schedule whose declared algebra drifted from the graph is caught
/// too.
pub fn check_partial_aggregate(kp: &KernelProgram, instrs: &[Instr]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let split = kp.schedule.temporal.as_ref().and_then(|t| t.split.as_ref());

    let Some(split) = split else {
        // Unsplit schedules must not park partials or fold them.
        for (i, ins) in instrs.iter().enumerate() {
            if matches!(ins, Instr::StorePartial { .. } | Instr::Combine { .. }) {
                diags.push(Diagnostic::new(
                    DiagCode::SlcPartialAggregate,
                    Span::Instr(i),
                    "partial-aggregate instruction in a schedule with no split-K \
                     partitioning"
                        .to_string(),
                ));
            }
        }
        return diags;
    };
    let t = kp
        .schedule
        .temporal
        .as_ref()
        .expect("split implies temporal");
    let g = &kp.graph;

    if split.partitions < 2 {
        diags.push(Diagnostic::new(
            DiagCode::SlcPartialAggregate,
            Span::Schedule {
                dim: t.plan.dim,
                block: t.block,
            },
            format!(
                "split-K declares {} partition(s) — a split needs at least 2",
                split.partitions
            ),
        ));
    }

    let Some(derived) = derive_combine(g, &t.plan) else {
        diags.push(Diagnostic::new(
            DiagCode::SlcPartialAggregate,
            Span::Schedule {
                dim: t.plan.dim,
                block: t.block,
            },
            "no combine algebra is derivable for this plan's sliced reductions — \
             the schedule must not have been split"
                .to_string(),
        ));
        return diags;
    };

    // One StorePartial and one Combine per sliced reduction, each
    // matching the re-derived algebra.
    for (sl, spec) in t.plan.sliced.iter().zip(&derived) {
        let out = g.ops()[sl.op.0].output;
        let parks = instrs
            .iter()
            .filter(|i| matches!(i, Instr::StorePartial { value, .. } if *value == out))
            .count();
        if parks != 1 {
            diags.push(Diagnostic::new(
                DiagCode::SlcPartialAggregate,
                Span::Op(sl.op),
                format!(
                    "sliced reduction op #{} ({}) has {parks} StorePartial \
                     instruction(s) — its partial state is not parked exactly once",
                    sl.op.0,
                    g.ops()[sl.op.0].kind.name()
                ),
            ));
        }
        let combines: Vec<(usize, &Instr)> = instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::Combine { op, .. } if *op == sl.op))
            .collect();
        if combines.len() != 1 {
            diags.push(Diagnostic::new(
                DiagCode::SlcPartialAggregate,
                Span::Op(sl.op),
                format!(
                    "sliced reduction op #{} ({}) has {} Combine instruction(s) — \
                     its partials are not folded exactly once",
                    sl.op.0,
                    g.ops()[sl.op.0].kind.name(),
                    combines.len()
                ),
            ));
            continue;
        }
        let (idx, ins) = combines[0];
        let Instr::Combine {
            partitions,
            combine,
            rescaled,
            ..
        } = ins
        else {
            unreachable!("filtered to Combine");
        };
        if *partitions != split.partitions {
            diags.push(Diagnostic::new(
                DiagCode::SlcPartialAggregate,
                Span::Instr(idx),
                format!(
                    "combine for op #{} folds {partitions} partition(s) but the \
                     schedule dispatches {} — partial accumulators would be dropped",
                    sl.op.0, split.partitions
                ),
            ));
        }
        if *combine != spec.op {
            diags.push(Diagnostic::new(
                DiagCode::SlcPartialAggregate,
                Span::Instr(idx),
                format!(
                    "combine for op #{} ({}) merges partials with {combine:?} but \
                     the reduction's algebra requires {:?}",
                    sl.op.0,
                    g.ops()[sl.op.0].kind.name(),
                    spec.op
                ),
            ));
        }
        if *rescaled != spec.rescale {
            let msg = if spec.rescale {
                format!(
                    "combine for op #{} ({}) merges UTA partials without rescaling \
                     — the (max, rescaled-sum) softmax algebra requires both sides \
                     be rescaled against the combined dependencies",
                    sl.op.0,
                    g.ops()[sl.op.0].kind.name()
                )
            } else {
                format!(
                    "combine for op #{} ({}) rescales Simple-aggregate partials — \
                     plain partials must merge unscaled",
                    sl.op.0,
                    g.ops()[sl.op.0].kind.name()
                )
            };
            diags.push(Diagnostic::new(
                DiagCode::SlcPartialAggregate,
                Span::Instr(idx),
                msg,
            ));
        }
    }

    // No stray partial-aggregate instructions for ops outside the plan.
    let sliced: Vec<OpId> = t.plan.sliced.iter().map(|s| s.op).collect();
    let outputs: Vec<_> = sliced.iter().map(|op| g.ops()[op.0].output).collect();
    for (i, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::StorePartial { value, .. } if !outputs.contains(value) => {
                diags.push(Diagnostic::new(
                    DiagCode::SlcPartialAggregate,
                    Span::Instr(i),
                    format!(
                        "StorePartial parks '{}', which is not the output of any \
                         sliced reduction",
                        g.value_name(*value)
                    ),
                ));
            }
            Instr::Combine { op, .. } if !sliced.contains(op) => {
                diags.push(Diagnostic::new(
                    DiagCode::SlcPartialAggregate,
                    Span::Instr(i),
                    format!(
                        "Combine targets op #{}, which is not a sliced reduction",
                        op.0
                    ),
                ));
            }
            _ => {}
        }
    }
    diags
}

/// Order-insensitive canonical form of an update-factor list.
fn canon(factors: &[UpdateFactor]) -> Vec<(usize, u8)> {
    let mut v: Vec<(usize, u8)> = factors
        .iter()
        .map(|f| {
            let form = match f.form {
                crate::slicer::FactorForm::Recip => 0u8,
                crate::slicer::FactorForm::ExpNeg => 1,
                crate::slicer::FactorForm::Value => 2,
            };
            (f.dep.0, form)
        })
        .collect();
    v.sort_unstable();
    v
}
