//! Slicing-legality checks (`SLC101`–`SLC103`).
//!
//! Re-validates what the slicers decided:
//!
//! * `SLC101` — Table 3: a spatially sliced dimension may carry only
//!   One-to-All mappings sourced from kernel inputs (global residents).
//!   Any All-to-One, or a One-to-All out of an intermediate, is a flow
//!   dependency across blocks and makes the dimension illegal.
//! * `SLC102` — every operator the temporal plan lists as a sliced
//!   reduction must actually reduce the sliced dimension (its
//!   iteration space carries an All-to-One along it).
//! * `SLC103` — the declared aggregation (Simple Aggregate or UTA with
//!   specific factors) must match an independent re-run of the
//!   broadcast-postposition / update-path back-trace of §4.3. A chain
//!   for which the back-trace fails has no derivable update function
//!   and must not have been sliced.

use super::{DiagCode, Diagnostic, Span};
use crate::codegen::KernelProgram;
use crate::slicer::{update::update_factors, AggKind, UpdateFactor};
use crate::smg::{MappingKind, SpaceKind};
use sf_ir::OpId;

/// Runs the slicing-legality checks over one kernel.
pub fn check_slicing(kp: &KernelProgram) -> Vec<Diagnostic> {
    let g = &kp.graph;
    let smg = &kp.schedule.smg;
    let mut diags = Vec::new();

    for &(d, block) in &kp.schedule.spatial {
        for m in smg.mappings_in_dim(d) {
            let legal = match m.kind {
                MappingKind::OneToAll(_) => smg.is_kernel_input_space(g, m.src),
                // All-to-One in the dimension: blocks would have to
                // exchange partial reductions.
                MappingKind::AllToOne(_) => false,
                MappingKind::OneToOne => true,
            };
            if !legal {
                let what = match (m.kind, smg.spaces[m.src.0].kind) {
                    (MappingKind::AllToOne(_), SpaceKind::Iter { op }) => format!(
                        "a reduction flow dependency ({} at op #{})",
                        g.ops()[op.0].kind.name(),
                        op.0
                    ),
                    (_, SpaceKind::Data { value }) => format!(
                        "a One-to-All sourced from intermediate '{}'",
                        g.value_name(value)
                    ),
                    _ => "a flow dependency".to_string(),
                };
                diags.push(Diagnostic::new(
                    DiagCode::SlcIllegalSpatialDim,
                    Span::Schedule { dim: d, block },
                    format!(
                        "spatially sliced dimension {} carries {what} — blocks are not \
                         independent (Table 3)",
                        smg.dims[d.0].name
                    ),
                ));
            }
        }
    }

    let Some(t) = &kp.schedule.temporal else {
        return diags;
    };
    let dim = t.plan.dim;
    let sliced_ops: Vec<OpId> = t.plan.sliced.iter().map(|s| s.op).collect();

    for s in &t.plan.sliced {
        if s.op.0 >= g.ops().len() {
            diags.push(Diagnostic::new(
                DiagCode::SlcNotASlicedReduction,
                Span::Op(s.op),
                format!("sliced reduction references unknown op #{}", s.op.0),
            ));
            continue;
        }
        let is = smg.iter_space[s.op.0];
        let reduces_dim = smg
            .mappings
            .iter()
            .any(|m| m.src == is && m.kind == MappingKind::AllToOne(dim));
        if !reduces_dim {
            diags.push(Diagnostic::new(
                DiagCode::SlcNotASlicedReduction,
                Span::Op(s.op),
                format!(
                    "op #{} ({}) is listed as a sliced reduction but carries no \
                     All-to-One along {}",
                    s.op.0,
                    g.ops()[s.op.0].kind.name(),
                    smg.dims[dim.0].name
                ),
            ));
            continue;
        }
        match update_factors(g, smg, dim, s.op, &sliced_ops) {
            Err(e) => diags.push(Diagnostic::new(
                DiagCode::SlcUpdateChain,
                Span::Op(s.op),
                format!(
                    "no update function is derivable for op #{} ({}): {e}",
                    s.op.0,
                    g.ops()[s.op.0].kind.name()
                ),
            )),
            Ok(derived) => {
                let declared = match &s.agg {
                    AggKind::Simple => Vec::new(),
                    AggKind::Uta(f) => f.clone(),
                };
                if canon(&derived) != canon(&declared) {
                    diags.push(Diagnostic::new(
                        DiagCode::SlcUpdateChain,
                        Span::Op(s.op),
                        format!(
                            "op #{} ({}) declares {} update factor(s) but the \
                             back-trace derives {} — the aggregation would be wrong",
                            s.op.0,
                            g.ops()[s.op.0].kind.name(),
                            declared.len(),
                            derived.len()
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Order-insensitive canonical form of an update-factor list.
fn canon(factors: &[UpdateFactor]) -> Vec<(usize, u8)> {
    let mut v: Vec<(usize, u8)> = factors
        .iter()
        .map(|f| {
            let form = match f.form {
                crate::slicer::FactorForm::Recip => 0u8,
                crate::slicer::FactorForm::ExpNeg => 1,
                crate::slicer::FactorForm::Value => 2,
            };
            (f.dep.0, form)
        })
        .collect();
    v.sort_unstable();
    v
}
