//! Static verification of compiled kernels.
//!
//! The verifier re-derives, independently of the scheduler, the
//! invariants the paper's machinery is supposed to guarantee, and
//! reports violations as structured [`Diagnostic`]s. Five check
//! families:
//!
//! * **SMG structural invariants** ([`structural`], `SMG001`–`SMG004`) —
//!   mapping classification consistency (§4.1: One-to-One covers both
//!   endpoints, One-to-All/All-to-One point along a real missing/reduced
//!   dimension), direction-dimension validity, dimension-alignment
//!   coherence between tensor axes and global dimensions, and
//!   acyclicity of the mapping edges.
//! * **Slicing legality** ([`slicing`], `SLC101`–`SLC104`) — spatially
//!   sliced dimensions carry no flow dependencies (Table 3), every
//!   temporally sliced operator really is a reduction along the sliced
//!   dimension, and the declared Simple-Aggregate/UTA update functions
//!   match an independent re-run of the broadcast-postposition
//!   back-trace (§4.3, Fig. 8).
//! * **Resource and placement validation** ([`resources`],
//!   `RES201`–`RES203`, `MEM301`) — per-block shared-memory/register
//!   footprints against the architecture budgets, occupancy ≥ 1 block
//!   per SM, and the §5.4 rule that cross-thread values (One-to-All
//!   sources, All-to-One sinks) never live in thread-private registers.
//! * **Barrier/race and bounds analysis** ([`barriers`], `MEM302`,
//!   `BAR401`, `BND402`) — a dirty-set scan over the lowered
//!   instruction stream ([`crate::codegen::lower_instructions`])
//!   flagging shared-buffer reads that can observe another thread's
//!   write without an intervening barrier, reads from a memory tier the
//!   value was never placed in, and out-of-bounds tile restrictions.
//! * **Disjoint-write race proof** ([`races`], `RACE501`–`RACE505`) — a
//!   symbolic affine/interval analysis over the per-store write
//!   footprints carried by the lowered stream, proving every pair of
//!   spatial blocks writes disjoint output regions (the Table-3
//!   legality the lock-free executor's `unsafe` relies on). Its
//!   [`DisjointProof`] verdict also gates the lock-free vs. serial
//!   executor path per kernel, independently of the verifier.
//!
//! The verifier runs as the final pipeline pass (enabled by default in
//! debug builds, see
//! [`CompileOptions::verify`](crate::pipeline::CompileOptions)) and
//! behind `sfc lint`.

pub mod barriers;
pub mod races;
pub mod resources;
pub mod slicing;
pub mod structural;

pub use barriers::{check_bounds, check_instructions};
pub use races::{check_races, prove_disjoint, DisjointProof};
pub use resources::check_resources;
pub use slicing::{check_partial_aggregate, check_slicing};
pub use structural::check_smg;

use crate::codegen::{lower_instructions, KernelProgram};
use crate::smg::{DimId, SpaceId};
use sf_gpu_sim::GpuArch;
use sf_ir::{OpId, ValueId};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but does not fail compilation.
    Warning,
    /// Fails compilation (and `sfc lint`).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identity of one verifier check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `SMG001` — a mapping's kind contradicts its endpoints' dimension
    /// sets (§4.1 classification).
    SmgMappingClass,
    /// `SMG002` — a One-to-All/All-to-One direction dimension does not
    /// exist or has unit extent.
    SmgDirectionDim,
    /// `SMG003` — tensor-axis ↔ global-dimension alignment is
    /// incoherent (rank mismatch, extent mismatch, dangling ids).
    SmgDimAlignment,
    /// `SMG004` — the space-mapping edges form a cycle.
    SmgCycle,
    /// `SLC101` — a spatially sliced dimension carries a flow
    /// dependency (Table 3).
    SlcIllegalSpatialDim,
    /// `SLC102` — a temporally "sliced reduction" has no All-to-One
    /// along the sliced dimension.
    SlcNotASlicedReduction,
    /// `SLC103` — the declared update function disagrees with the
    /// broadcast-postposition back-trace (§4.3).
    SlcUpdateChain,
    /// `SLC104` — split-K partial-aggregate legality: the combine phase
    /// must exist for every sliced reduction of a split schedule, fold
    /// the full partition count, use the associative merge operator the
    /// combine algebra derives for the reduction, and rescale exactly
    /// the UTA partials (the (max, rescaled-sum) softmax pair).
    SlcPartialAggregate,
    /// `RES201` — per-block shared memory exceeds the architecture
    /// budget.
    ResSmemOverBudget,
    /// `RES202` — per-block register bytes exceed the architecture
    /// budget.
    ResRegsOverBudget,
    /// `RES203` — the block fits no SM at all (occupancy zero).
    ResZeroOccupancy,
    /// `MEM301` — a cross-thread value (One-to-All source / All-to-One
    /// sink) is assigned to thread-private registers (§5.4).
    MemCrossThreadRegister,
    /// `MEM302` — an instruction reads a value from a memory tier it
    /// was never placed in.
    MemReadUnplaced,
    /// `BAR401` — a shared-memory read may observe another thread's
    /// write without an intervening barrier.
    BarMissingBarrier,
    /// `BND402` — a tile restriction indexes out of bounds (unknown
    /// dimension, zero or oversized block, duplicate restriction).
    BndTileOutOfBounds,
    /// `RACE501` — two spatial blocks write overlapping output regions
    /// (Table-3 disjoint-write legality violated).
    RaceOverlappingWrites,
    /// `RACE502` — a block's write region escapes the partitioned
    /// extent (writes past the end of its output-slot region).
    RaceWriteEscapesExtent,
    /// `RACE503` — scratch aliased across workers: a compute result is
    /// published to global memory outside the partitioned slot scatter.
    RaceScratchAliasing,
    /// `RACE504` — a value is read back after its parallel store with
    /// no intervening grid-wide ordering point.
    RaceReadAfterParallelWrite,
    /// `RACE505` — a write footprint is not provable in the affine
    /// region algebra; the kernel is forced onto the serial executor
    /// path instead of running lock-free unproven.
    RaceUnprovableFootprint,
}

impl DiagCode {
    /// The stable code string (`SMG001`, …).
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::SmgMappingClass => "SMG001",
            DiagCode::SmgDirectionDim => "SMG002",
            DiagCode::SmgDimAlignment => "SMG003",
            DiagCode::SmgCycle => "SMG004",
            DiagCode::SlcIllegalSpatialDim => "SLC101",
            DiagCode::SlcNotASlicedReduction => "SLC102",
            DiagCode::SlcUpdateChain => "SLC103",
            DiagCode::SlcPartialAggregate => "SLC104",
            DiagCode::ResSmemOverBudget => "RES201",
            DiagCode::ResRegsOverBudget => "RES202",
            DiagCode::ResZeroOccupancy => "RES203",
            DiagCode::MemCrossThreadRegister => "MEM301",
            DiagCode::MemReadUnplaced => "MEM302",
            DiagCode::BarMissingBarrier => "BAR401",
            DiagCode::BndTileOutOfBounds => "BND402",
            DiagCode::RaceOverlappingWrites => "RACE501",
            DiagCode::RaceWriteEscapesExtent => "RACE502",
            DiagCode::RaceScratchAliasing => "RACE503",
            DiagCode::RaceReadAfterParallelWrite => "RACE504",
            DiagCode::RaceUnprovableFootprint => "RACE505",
        }
    }

    /// Short human title of the invariant.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::SmgMappingClass => "mapping classification consistency",
            DiagCode::SmgDirectionDim => "direction-dimension validity",
            DiagCode::SmgDimAlignment => "dimension-alignment coherence",
            DiagCode::SmgCycle => "space-mapping acyclicity",
            DiagCode::SlcIllegalSpatialDim => "spatial-slicing legality",
            DiagCode::SlcNotASlicedReduction => "temporal slice targets a reduction",
            DiagCode::SlcUpdateChain => "UTA update-function derivability",
            DiagCode::SlcPartialAggregate => "split-K partial-aggregate combine legality",
            DiagCode::ResSmemOverBudget => "shared-memory budget",
            DiagCode::ResRegsOverBudget => "register budget",
            DiagCode::ResZeroOccupancy => "non-zero occupancy",
            DiagCode::MemCrossThreadRegister => "cross-thread register placement",
            DiagCode::MemReadUnplaced => "read from unplaced tier",
            DiagCode::BarMissingBarrier => "barrier-protected shared reads",
            DiagCode::BndTileOutOfBounds => "tile-restriction bounds",
            DiagCode::RaceOverlappingWrites => "pairwise-disjoint block writes",
            DiagCode::RaceWriteEscapesExtent => "write inside the partitioned extent",
            DiagCode::RaceScratchAliasing => "worker-private scratch",
            DiagCode::RaceReadAfterParallelWrite => "no readback of in-flight writes",
            DiagCode::RaceUnprovableFootprint => "affine write-footprint provability",
        }
    }

    /// Default severity (every check defaults to deny except `RACE505`,
    /// which is not itself a proven race — the kernel degrades to the
    /// serial path instead of failing compilation; `sfc lint
    /// --warn/--deny CODE` adjusts individual codes).
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::RaceUnprovableFootprint => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// All codes, in catalog order.
    pub fn all() -> [DiagCode; 20] {
        [
            DiagCode::SmgMappingClass,
            DiagCode::SmgDirectionDim,
            DiagCode::SmgDimAlignment,
            DiagCode::SmgCycle,
            DiagCode::SlcIllegalSpatialDim,
            DiagCode::SlcNotASlicedReduction,
            DiagCode::SlcUpdateChain,
            DiagCode::SlcPartialAggregate,
            DiagCode::ResSmemOverBudget,
            DiagCode::ResRegsOverBudget,
            DiagCode::ResZeroOccupancy,
            DiagCode::MemCrossThreadRegister,
            DiagCode::MemReadUnplaced,
            DiagCode::BarMissingBarrier,
            DiagCode::BndTileOutOfBounds,
            DiagCode::RaceOverlappingWrites,
            DiagCode::RaceWriteEscapesExtent,
            DiagCode::RaceScratchAliasing,
            DiagCode::RaceReadAfterParallelWrite,
            DiagCode::RaceUnprovableFootprint,
        ]
    }

    /// Parses a code string (`SMG001`, case-insensitive).
    pub fn parse(s: &str) -> Option<DiagCode> {
        let up = s.to_ascii_uppercase();
        DiagCode::all().into_iter().find(|c| c.code() == up)
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// The kernel as a whole.
    Kernel,
    /// A global dimension of the SMG.
    Dim(DimId),
    /// A mapping edge (index into `Smg::mappings`).
    Mapping(usize),
    /// A computational-space node.
    Space(SpaceId),
    /// An IR value (tensor).
    Value(ValueId),
    /// An IR operator.
    Op(OpId),
    /// A schedule restriction: dimension × block size.
    Schedule {
        /// The restricted dimension.
        dim: DimId,
        /// The block size applied to it.
        block: usize,
    },
    /// An instruction index in the lowered stream.
    Instr(usize),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Kernel => write!(f, "kernel"),
            Span::Dim(d) => write!(f, "dim d{}", d.0),
            Span::Mapping(i) => write!(f, "mapping #{i}"),
            Span::Space(s) => write!(f, "space #{}", s.0),
            Span::Value(v) => write!(f, "value %{}", v.0),
            Span::Op(o) => write!(f, "op #{}", o.0),
            Span::Schedule { dim, block } => write!(f, "schedule d{}\u{d7}{}", dim.0, block),
            Span::Instr(i) => write!(f, "instr #{i}"),
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated check.
    pub code: DiagCode,
    /// Effective severity (default of the code, unless reconfigured).
    pub severity: Severity,
    /// Name of the kernel the finding is in (filled by
    /// [`verify_program`]).
    pub kernel: String,
    /// What the finding points at.
    pub span: Span,
    /// Human explanation with names resolved.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: DiagCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            kernel: String::new(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: [{}] {}: {}",
            self.code, self.severity, self.kernel, self.span, self.message
        )
    }
}

/// Per-code severity configuration of one verifier run.
#[derive(Debug, Clone, Default)]
pub struct VerifyConfig {
    /// Severity overrides, later entries win.
    pub levels: Vec<(DiagCode, Severity)>,
    /// Codes suppressed entirely.
    pub allowed: Vec<DiagCode>,
}

impl VerifyConfig {
    /// Forces `code` to deny (error) level.
    pub fn deny(mut self, code: DiagCode) -> Self {
        self.levels.push((code, Severity::Error));
        self
    }

    /// Relaxes `code` to warning level.
    pub fn warn(mut self, code: DiagCode) -> Self {
        self.levels.push((code, Severity::Warning));
        self
    }

    /// Suppresses `code` entirely.
    pub fn allow(mut self, code: DiagCode) -> Self {
        self.allowed.push(code);
        self
    }

    /// Applies the configuration to one diagnostic.
    pub fn apply(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        if self.allowed.contains(&d.code) {
            return None;
        }
        if let Some(&(_, s)) = self.levels.iter().rev().find(|&&(c, _)| c == d.code) {
            d.severity = s;
        }
        Some(d)
    }
}

/// Verifies one kernel at default severities.
///
/// Families run in dependency order and stop early when an earlier
/// family found violations: schedule- and instruction-level checks
/// index into the SMG, so they are only meaningful on a structurally
/// sound graph with in-bounds restrictions.
pub fn verify_kernel(kp: &KernelProgram, arch: &GpuArch) -> Vec<Diagnostic> {
    let mut diags = structural::check_smg(&kp.graph, &kp.schedule.smg);
    if !diags.is_empty() {
        return diags;
    }
    diags.extend(barriers::check_bounds(kp));
    if !diags.is_empty() {
        return diags;
    }
    diags.extend(slicing::check_slicing(kp));
    diags.extend(resources::check_resources(kp, arch));
    let instrs = lower_instructions(kp);
    diags.extend(barriers::check_instructions(kp, &instrs));
    diags.extend(slicing::check_partial_aggregate(kp, &instrs));
    diags.extend(races::check_races(kp, &instrs));
    diags
}

/// Verifies a compiled kernel sequence under a configuration.
///
/// Returns the surviving diagnostics with kernel names attached and
/// severities remapped per `config`.
pub fn verify_program(
    kernels: &[KernelProgram],
    arch: &GpuArch,
    config: &VerifyConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for kp in kernels {
        for mut d in verify_kernel(kp, arch) {
            d.kernel = kp.name.clone();
            if let Some(d) = config.apply(d) {
                out.push(d);
            }
        }
    }
    out
}

/// `(errors, warnings)` counts of a diagnostic set.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    (errors, diags.len() - errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, FusionPolicy};
    use sf_gpu_sim::Arch;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(l: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("Q", Shape::new(vec![256, 64]));
        let k = g.input("K", Shape::new(vec![l, 64]));
        let v = g.input("V", Shape::new(vec![l, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn compiled_mha_is_clean_on_every_arch() {
        for arch in [Arch::Volta, Arch::Ampere, Arch::Hopper] {
            let p = Compiler::with_policy(arch, FusionPolicy::SpaceFusion)
                .compile(&mha(8192))
                .unwrap();
            let diags = verify_program(&p.kernels, &p.arch, &VerifyConfig::default());
            assert!(diags.is_empty(), "{arch:?}: {diags:?}");
        }
    }

    #[test]
    fn codes_are_unique_and_parse_round_trips() {
        let all = DiagCode::all();
        for (i, a) in all.iter().enumerate() {
            assert_eq!(DiagCode::parse(a.code()), Some(*a));
            assert_eq!(DiagCode::parse(&a.code().to_lowercase()), Some(*a));
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code());
            }
        }
        assert_eq!(DiagCode::parse("XYZ999"), None);
    }

    #[test]
    fn config_remaps_and_suppresses() {
        let d = Diagnostic::new(DiagCode::ResSmemOverBudget, Span::Kernel, "x");
        assert_eq!(d.severity, Severity::Error);
        let cfg = VerifyConfig::default().warn(DiagCode::ResSmemOverBudget);
        let d2 = cfg.apply(d.clone()).unwrap();
        assert_eq!(d2.severity, Severity::Warning);
        let cfg = VerifyConfig::default().allow(DiagCode::ResSmemOverBudget);
        assert!(cfg.apply(d).is_none());
        let (e, w) = counts(&[d2]);
        assert_eq!((e, w), (0, 1));
    }

    #[test]
    fn diagnostic_display_mentions_code_span_and_kernel() {
        let mut d = Diagnostic::new(DiagCode::BarMissingBarrier, Span::Instr(7), "racy read");
        d.kernel = "k0".into();
        let s = d.to_string();
        assert!(
            s.contains("BAR401") && s.contains("instr #7") && s.contains("k0"),
            "{s}"
        );
    }
}
