//! Resource and placement validation (`RES201`–`RES203`, `MEM301`).
//!
//! * `RES201`/`RES202` — the schedule's per-block shared-memory and
//!   register footprints against the architecture budgets (the same
//!   queries Alg. 1 enumerates under; a violating schedule can only
//!   come from a scheduler bug or hand-corrupted state).
//! * `RES203` — the block must fit at least one SM (occupancy ≥ 1).
//! * `MEM301` — §5.4 placement consistency: a value that communicates
//!   across threads — the source of a One-to-All or the sink of an
//!   All-to-One — cannot live in thread-private registers. Kernel
//!   outputs (streamed to global) and sliced-reduction accumulators
//!   (kept per-thread and aggregated explicitly) are the two sanctioned
//!   exceptions.

use super::{DiagCode, Diagnostic, Span};
use crate::codegen::KernelProgram;
use crate::sched::MemLevel;
use crate::smg::MappingKind;
use sf_gpu_sim::{occupancy, GpuArch, ResourceKind};
use sf_ir::{ValueId, ValueKind};
use std::collections::HashSet;

/// Runs the resource and placement checks over one kernel.
pub fn check_resources(kp: &KernelProgram, arch: &GpuArch) -> Vec<Diagnostic> {
    let g = &kp.graph;
    let s = &kp.schedule;
    let mut diags = Vec::new();

    let smem = s.smem_per_block(g);
    let regs = s.regs_per_block(g);
    for v in arch.resource_violations(smem, regs) {
        let code = match v.resource {
            ResourceKind::SharedMemory => DiagCode::ResSmemOverBudget,
            ResourceKind::Registers => DiagCode::ResRegsOverBudget,
        };
        diags.push(Diagnostic::new(
            code,
            Span::Kernel,
            format!(
                "per-block {} footprint {} B exceeds the {} B budget",
                v.resource, v.used, v.limit
            ),
        ));
    }

    let occ = occupancy(arch, s.grid().max(1), smem, regs);
    if occ.blocks_per_sm == 0 {
        diags.push(Diagnostic::new(
            DiagCode::ResZeroOccupancy,
            Span::Kernel,
            "the block fits no streaming multiprocessor — the kernel cannot launch".to_string(),
        ));
    }

    // MEM301: cross-thread values must not be register-private.
    let accumulators: HashSet<ValueId> = s
        .temporal
        .iter()
        .flat_map(|t| t.plan.sliced.iter())
        .filter(|sr| sr.op.0 < g.ops().len())
        .map(|sr| g.ops()[sr.op.0].output)
        .collect();
    let outputs: HashSet<ValueId> = g.outputs().iter().copied().collect();
    for (vi, v) in g.values().iter().enumerate() {
        let vid = ValueId(vi);
        if v.kind != ValueKind::Intermediate
            || outputs.contains(&vid)
            || accumulators.contains(&vid)
            || s.level(vid) != MemLevel::Register
            || vi >= s.smg.data_space.len()
        {
            continue;
        }
        let ds = s.smg.data_space[vi];
        let communicates = s.smg.mappings.iter().any(|m| {
            (m.src == ds && matches!(m.kind, MappingKind::OneToAll(_)))
                || (m.dst == ds && matches!(m.kind, MappingKind::AllToOne(_)))
        });
        if communicates {
            diags.push(Diagnostic::new(
                DiagCode::MemCrossThreadRegister,
                Span::Value(vid),
                format!(
                    "'{}' communicates across threads (One-to-All source or All-to-One \
                     sink) but is assigned to thread-private registers",
                    g.value_name(vid)
                ),
            ));
        }
    }
    diags
}
