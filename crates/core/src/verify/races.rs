//! `RACE501`–`RACE505`: the static disjoint-write race prover.
//!
//! The lock-free executor ([`crate::codegen::exec`]) hands every spatial
//! block a raw `TensorViewMut` region of each output slot and lets the
//! blocks write concurrently with no synchronization at all. The
//! soundness of that `unsafe` rests entirely on SpaceFusion's Table-3
//! disjoint-write legality: distinct blocks must write distinct
//! elements. Until this module, that legality was only *asserted at
//! runtime* by the debug-mode per-element claim bitmap, which samples
//! executions instead of proving schedules.
//!
//! This analysis promotes the property to a compile-time proof. Every
//! [`Instr::Store`] in the lowered stream carries its symbolic write
//! footprint: per output axis, either a block-indexed affine tile
//! `[i*block, min(i*block + span, clamp))` ([`AxisWrite::Tiled`]) or the
//! full interval `[0, extent)` ([`AxisWrite::Full`]). Over that region
//! algebra the prover discharges pairwise disjointness for *all* block
//! pairs at once:
//!
//! * two blocks differ in at least one partitioned dimension index, and
//! * along any `Tiled` axis with `span <= block`, tiles of distinct
//!   indices are disjoint intervals,
//!
//! so a store is race-free iff every dimension with two or more blocks
//! tiles at least one of its axes. The checks:
//!
//! * **RACE501** — two blocks write overlapping output regions (a
//!   multi-block dimension tiles no axis of a store, a tile `span`
//!   exceeds its `block` stride, or the same value is scattered twice).
//! * **RACE502** — a write region escapes the partitioned extent (the
//!   tile clamp lies beyond the axis' storage, so the last blocks write
//!   past the end of the slot region).
//! * **RACE503** — scratch aliased across workers: a compute writes its
//!   result directly to global memory, bypassing the partitioned
//!   [`OutputSlot`](crate::codegen::exec) scatter — the only channel
//!   through which concurrent workers may publish.
//! * **RACE504** — read-after-parallel-write: an instruction reads a
//!   value this kernel already stored. Block-level barriers do not order
//!   other blocks' writes; only the kernel-boundary drain does, so
//!   in-kernel readback of a published output is racy.
//! * **RACE505** — the footprint is not provable in the affine form
//!   (non-affine block space, broken alignment metadata, degenerate
//!   tiles). Not necessarily a race — but unproven, so the kernel is
//!   forced onto the serial fallback path instead of executing
//!   unsoundly (see [`DisjointProof`] and DESIGN.md §3h).
//!
//! The same analysis runs twice: once inside the verifier
//! ([`check_races`], surfacing diagnostics through `VerifyPass` and
//! `sfc lint`), and once at kernel construction
//! ([`prove_disjoint`], whose [`DisjointProof`] verdict gates the
//! lock-free vs. serial executor path even in release builds where the
//! verifier is off).

use super::{DiagCode, Diagnostic, Span};
use crate::codegen::{lower_instructions, AxisWrite, Instr, KernelProgram, MemSpace};
use crate::smg::DimId;
use sf_ir::ValueId;
use std::collections::BTreeMap;

/// Outcome of the disjointness proof for one kernel.
///
/// Computed once per [`KernelProgram`] at construction and consulted by
/// [`ExecEngine::execute_kernel`](crate::codegen::ExecEngine): only a
/// `Proven` kernel may fan its blocks out over the lock-free worker
/// pool; anything else runs on the serial path, where block writes are
/// ordered by program order and the `unsafe` region hand-out is trivially
/// sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisjointProof {
    /// Every pair of spatial blocks provably writes disjoint regions of
    /// every output (Table-3 legality discharged statically).
    Proven,
    /// The prover found an overlap or could not express the footprint in
    /// the affine form; the payload is the first diagnostic. The kernel
    /// must not take the lock-free path.
    Unproven(String),
}

impl DisjointProof {
    /// Whether the lock-free path is statically justified.
    pub fn is_proven(&self) -> bool {
        matches!(self, DisjointProof::Proven)
    }
}

/// Proves (or fails to prove) pairwise-disjoint block writes for `kp`.
///
/// Runs the full RACE analysis over the lowered stream and condenses it
/// into the executor-facing verdict. Unlike the verifier this runs
/// unconditionally — release builds with `verify: false` still refuse
/// the lock-free path for unproven kernels.
pub fn prove_disjoint(kp: &KernelProgram) -> DisjointProof {
    let instrs = lower_instructions(kp);
    match check_races(kp, &instrs).into_iter().next() {
        None => DisjointProof::Proven,
        Some(d) => DisjointProof::Unproven(format!("{}: {}", d.code, d.message)),
    }
}

/// Display name of a value.
fn name(kp: &KernelProgram, v: ValueId) -> String {
    kp.graph.value(v).name.clone()
}

/// Runs the RACE501–505 checks over one lowered instruction stream.
///
/// Exposed separately from [`prove_disjoint`] so the mutation harness
/// can corrupt the stream (widen a tile span, retarget a compute write,
/// re-load a stored output) and assert each code catches its planted
/// race.
pub fn check_races(kp: &KernelProgram, instrs: &[Instr]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let smg = &kp.schedule.smg;

    // The affine block space itself: each partitioned dimension
    // contributes one independent block index. Duplicate or dangling
    // dimensions mean block coordinates are no longer independent and
    // nothing below is provable.
    let mut seen: Vec<DimId> = Vec::new();
    for &(d, b) in &kp.schedule.spatial {
        let span = Span::Schedule { dim: d, block: b };
        if d.0 >= smg.dims.len() {
            diags.push(Diagnostic::new(
                DiagCode::RaceUnprovableFootprint,
                span,
                format!("spatial restriction names unknown dimension d{}; the block space is not affine", d.0),
            ));
            continue;
        }
        if seen.contains(&d) {
            diags.push(Diagnostic::new(
                DiagCode::RaceUnprovableFootprint,
                span,
                format!(
                    "dimension '{}' is partitioned twice; block indices along it are not independent",
                    smg.dims[d.0].name
                ),
            ));
            continue;
        }
        if b == 0 {
            diags.push(Diagnostic::new(
                DiagCode::RaceUnprovableFootprint,
                span,
                format!(
                    "zero block size on '{}': degenerate tile interval",
                    smg.dims[d.0].name
                ),
            ));
            continue;
        }
        seen.push(d);
    }

    // Dimensions whose block index actually varies: these are the
    // coordinates in which two distinct blocks can differ, so each must
    // be discharged per store.
    let multi: Vec<(DimId, usize, usize)> = seen
        .iter()
        .filter_map(|&d| {
            let b = kp.schedule.spatial.iter().find(|&&(rd, _)| rd == d)?.1;
            let n = smg.extent(d).div_ceil(b);
            (n >= 2).then_some((d, b, n))
        })
        .collect();

    // Values this kernel has already published to global memory, by
    // first store site. Block barriers do NOT clear this set: they order
    // threads of one block, never the writes of other blocks.
    let mut stored: BTreeMap<ValueId, usize> = BTreeMap::new();

    for (idx, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::Store { value, region } => {
                if let Some(&first) = stored.get(value) {
                    diags.push(Diagnostic::new(
                        DiagCode::RaceOverlappingWrites,
                        Span::Instr(idx),
                        format!(
                            "'{}' is scattered twice (instr #{first} and #{idx}); the second store re-claims elements the first already published",
                            name(kp, *value)
                        ),
                    ));
                }
                stored.insert(*value, idx);
                check_store_footprint(kp, idx, *value, region, None, &multi, &mut diags);
            }
            Instr::StorePartial { value, region } => {
                // A partial-state slot is worker scratch between the
                // two dispatches of a split execution, not a published
                // output: it never enters the readback set. Its
                // footprint must additionally tile the partition axis,
                // which is encoded along the *sliced* (temporal)
                // dimension — a concurrent writer exists per partition,
                // exactly like a spatial block along a tiled axis.
                let temporal = kp.schedule.temporal.as_ref();
                let t_dim = temporal.map(|t| t.plan.dim);
                let mut required = multi.clone();
                if let Some(t) = temporal {
                    if t.partitions() >= 2 {
                        if let Some(d) = t_dim {
                            let n_tiles = smg.extent(d).div_ceil(t.block.max(1));
                            let stride = n_tiles.div_ceil(t.partitions()) * t.block;
                            required.push((d, stride, t.partitions()));
                        }
                    }
                }
                check_store_footprint(kp, idx, *value, region, t_dim, &required, &mut diags);
            }
            Instr::LoadBlock { value } | Instr::LoadTile { value } => {
                if let Some(&first) = stored.get(value) {
                    diags.push(Diagnostic::new(
                        DiagCode::RaceReadAfterParallelWrite,
                        Span::Instr(idx),
                        format!(
                            "loads '{}' after its parallel store at instr #{first}; other blocks' writes are still in flight and no grid-wide barrier exists inside a kernel",
                            name(kp, *value)
                        ),
                    ));
                }
            }
            Instr::Compute { reads, write, .. } => {
                for &(v, space) in reads {
                    if space == MemSpace::Global {
                        if let Some(&first) = stored.get(&v) {
                            diags.push(Diagnostic::new(
                                DiagCode::RaceReadAfterParallelWrite,
                                Span::Instr(idx),
                                format!(
                                    "reads '{}' from global memory after its parallel store at instr #{first}; only the kernel-boundary drain orders other blocks' writes",
                                    name(kp, v)
                                ),
                            ));
                        }
                    }
                }
                if write.1 == MemSpace::Global {
                    diags.push(Diagnostic::new(
                        DiagCode::RaceScratchAliasing,
                        Span::Instr(idx),
                        format!(
                            "op result '{}' is written directly to global memory, bypassing the partitioned output-slot scatter: the buffer would be shared mutably across workers",
                            name(kp, write.0)
                        ),
                    ));
                }
            }
            // The combine phase runs after the phase-1 pool drain (a
            // kernel-internal ordering point for the partial slots);
            // its algebra is SLC104's concern, not a race.
            Instr::Combine { .. } => {}
            Instr::Barrier | Instr::LoopBegin { .. } | Instr::LoopEnd { .. } => {}
        }
    }
    diags
}

/// Validates one store footprint: per-axis affine form and tile
/// overlap/escape rules, then coverage of every `required` concurrency
/// axis (each `(dim, block, count)` with two or more concurrent writers
/// must be tiled by some axis of the region). `temporal` names the
/// sliced dimension a partial-state slot may legally tile in addition
/// to the spatially partitioned ones.
#[allow(clippy::too_many_arguments)]
fn check_store_footprint(
    kp: &KernelProgram,
    idx: usize,
    value: ValueId,
    region: &[AxisWrite],
    temporal: Option<DimId>,
    required: &[(DimId, usize, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let smg = &kp.schedule.smg;
    let mut provable = true;
    for (axis, aw) in region.iter().enumerate() {
        match aw {
            AxisWrite::Opaque => {
                provable = false;
                diags.push(Diagnostic::new(
                    DiagCode::RaceUnprovableFootprint,
                    Span::Instr(idx),
                    format!(
                        "axis {axis} of '{}' has no affine footprint (axis\u{2194}dimension alignment is broken); disjointness is unprovable",
                        name(kp, value)
                    ),
                ));
            }
            AxisWrite::Tiled {
                dim,
                block,
                span,
                clamp,
                extent,
            } => {
                let n_writers = required
                    .iter()
                    .find(|&&(d, _, _)| d == *dim)
                    .map(|&(_, _, n)| n)
                    .unwrap_or(1);
                let partitioned =
                    kp.schedule.spatial.iter().any(|&(rd, _)| rd == *dim) || temporal == Some(*dim);
                if dim.0 >= smg.dims.len() || !partitioned {
                    provable = false;
                    diags.push(Diagnostic::new(
                        DiagCode::RaceUnprovableFootprint,
                        Span::Instr(idx),
                        format!(
                            "axis {axis} of '{}' claims a tile along d{} which the schedule does not partition",
                            name(kp, value),
                            dim.0
                        ),
                    ));
                    continue;
                }
                if *block == 0 || *span == 0 {
                    provable = false;
                    diags.push(Diagnostic::new(
                        DiagCode::RaceUnprovableFootprint,
                        Span::Instr(idx),
                        format!(
                            "axis {axis} of '{}' has a degenerate tile (block {block}, span {span})",
                            name(kp, value)
                        ),
                    ));
                    continue;
                }
                if *clamp > *extent {
                    diags.push(Diagnostic::new(
                        DiagCode::RaceWriteEscapesExtent,
                        Span::Instr(idx),
                        format!(
                            "axis {axis} of '{}' is clamped at {clamp} but the axis holds only {extent} elements: the last block writes past the end of its slot region",
                            name(kp, value)
                        ),
                    ));
                }
                if span > block && n_writers >= 2 {
                    diags.push(Diagnostic::new(
                        DiagCode::RaceOverlappingWrites,
                        Span::Instr(idx),
                        format!(
                            "tiles of '{}' along '{}' overlap: each block writes {span} elements at stride {block}, so blocks 0 and 1 collide on [{block}, {})",
                            name(kp, value),
                            smg.dims[dim.0].name,
                            (*span).min(*clamp)
                        ),
                    ));
                }
            }
            AxisWrite::Full { .. } => {}
        }
    }
    if provable {
        for &(d, b, n) in required {
            let covered = region.iter().any(|aw| {
                matches!(aw, AxisWrite::Tiled { dim, block, span, .. }
                         if *dim == d && *span <= *block)
            });
            if !covered {
                diags.push(Diagnostic::new(
                    DiagCode::RaceOverlappingWrites,
                    Span::Instr(idx),
                    format!(
                        "no axis of '{}' is tiled by '{}' ({n} blocks of {b}): blocks 0 and 1 write identical regions",
                        name(kp, value),
                        smg.dims[d.0].name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, FusionPolicy};
    use sf_gpu_sim::Arch;
    use sf_ir::Graph;
    use sf_tensor::ops::{BinaryOp, ReduceOp, UnaryOp};
    use sf_tensor::{DType, Shape};

    fn mha(l: usize) -> Graph {
        let mut g = Graph::new("mha", DType::F16);
        let q = g.input("Q", Shape::new(vec![256, 64]));
        let k = g.input("K", Shape::new(vec![l, 64]));
        let v = g.input("V", Shape::new(vec![l, 64]));
        let qk = g.gemm(q, k, true).unwrap();
        let mx = g.reduce(ReduceOp::Max, qk, 1).unwrap();
        let sub = g.binary(BinaryOp::Sub, qk, mx).unwrap();
        let e = g.unary(UnaryOp::Exp, sub).unwrap();
        let s = g.reduce(ReduceOp::Sum, e, 1).unwrap();
        let d = g.binary(BinaryOp::Div, e, s).unwrap();
        let out = g.gemm(d, v, false).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn compiled_kernels_prove_disjoint() {
        for l in [64usize, 8192] {
            let p = Compiler::with_policy(Arch::Volta, FusionPolicy::SpaceFusion)
                .compile(&mha(l))
                .unwrap();
            for kp in &p.kernels {
                assert_eq!(kp.disjoint, DisjointProof::Proven, "{}", kp.name);
                let instrs = lower_instructions(kp);
                let diags = check_races(kp, &instrs);
                assert!(diags.is_empty(), "{}: {diags:?}", kp.name);
            }
        }
    }

    #[test]
    fn duplicate_spatial_partition_is_unprovable() {
        let p = Compiler::with_policy(Arch::Ampere, FusionPolicy::SpaceFusion)
            .compile(&mha(64))
            .unwrap();
        let mut kp = p.kernels[0].clone();
        let first = kp.schedule.spatial[0];
        kp.schedule.spatial.push(first);
        let instrs = lower_instructions(&kp);
        let diags = check_races(&kp, &instrs);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::RaceUnprovableFootprint),
            "{diags:?}"
        );
        assert!(!prove_disjoint(&kp).is_proven());
    }
}
