//! SMG structural invariants (`SMG001`–`SMG004`).
//!
//! These re-state, as checks, what [`crate::smg::build_smg`] guarantees
//! by construction (§4.1): every mapping's kind is consistent with its
//! endpoints' dimension sets, direction dimensions exist and are
//! non-degenerate, the tensor-axis ↔ global-dimension alignment is
//! coherent, and the mapping edges form a DAG.

use super::{DiagCode, Diagnostic, Span};
use crate::smg::{DimId, MappingKind, Smg, SpaceId};
use sf_ir::{Graph, ValueId};
use std::collections::BTreeSet;

/// Runs all structural checks over one SMG.
pub fn check_smg(graph: &Graph, smg: &Smg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_alignment(graph, smg, &mut diags);
    check_mappings(smg, &mut diags);
    check_acyclic(smg, &mut diags);
    diags
}

/// `SMG003`: axis ↔ dimension alignment coherence.
fn check_alignment(graph: &Graph, smg: &Smg, diags: &mut Vec<Diagnostic>) {
    let ndims = smg.dims.len();
    let nspaces = smg.spaces.len();

    for (si, s) in smg.spaces.iter().enumerate() {
        for &d in &s.dims {
            if d.0 >= ndims {
                diags.push(Diagnostic::new(
                    DiagCode::SmgDimAlignment,
                    Span::Space(SpaceId(si)),
                    format!("space covers unknown dimension d{}", d.0),
                ));
            }
        }
    }

    for (vi, axes) in smg.value_axes.iter().enumerate() {
        if vi >= graph.values().len() {
            break;
        }
        let v = ValueId(vi);
        let shape = graph.shape(v);
        if axes.len() != shape.rank() {
            diags.push(Diagnostic::new(
                DiagCode::SmgDimAlignment,
                Span::Value(v),
                format!(
                    "'{}' has rank {} but {} aligned axes",
                    graph.value_name(v),
                    shape.rank(),
                    axes.len()
                ),
            ));
            continue;
        }
        for (axis, &d) in axes.iter().enumerate() {
            if d.0 >= ndims {
                diags.push(Diagnostic::new(
                    DiagCode::SmgDimAlignment,
                    Span::Value(v),
                    format!(
                        "axis {axis} of '{}' aligned to unknown dimension d{}",
                        graph.value_name(v),
                        d.0
                    ),
                ));
                continue;
            }
            let e = shape.dims()[axis];
            let extent = smg.dims[d.0].extent;
            // A unit axis may sit as a placeholder under any dimension;
            // a non-unit axis must match its dimension's extent exactly.
            if e != 1 && extent != 1 && e != extent {
                diags.push(Diagnostic::new(
                    DiagCode::SmgDimAlignment,
                    Span::Value(v),
                    format!(
                        "axis {axis} of '{}' has extent {e} but dimension {} has extent {extent}",
                        graph.value_name(v),
                        smg.dims[d.0].name
                    ),
                ));
            }
        }
    }

    for (vi, &s) in smg.data_space.iter().enumerate() {
        if s.0 >= nspaces {
            diags.push(Diagnostic::new(
                DiagCode::SmgDimAlignment,
                Span::Value(ValueId(vi)),
                format!("data-space table points at unknown space #{}", s.0),
            ));
        }
    }
    for (oi, &s) in smg.iter_space.iter().enumerate() {
        if s.0 >= nspaces {
            diags.push(Diagnostic::new(
                DiagCode::SmgDimAlignment,
                Span::Op(sf_ir::OpId(oi)),
                format!("iteration-space table points at unknown space #{}", s.0),
            ));
        }
    }
}

/// `SMG001` + `SMG002`: mapping classification and direction validity.
fn check_mappings(smg: &Smg, diags: &mut Vec<Diagnostic>) {
    let ndims = smg.dims.len();
    let nspaces = smg.spaces.len();
    // Classification compares only live (extent > 1) dimensions:
    // placeholder unit dimensions never participate in mappings.
    let live = |s: SpaceId| -> BTreeSet<DimId> {
        smg.spaces[s.0]
            .dims
            .iter()
            .copied()
            .filter(|d| d.0 < ndims && smg.dims[d.0].extent > 1)
            .collect()
    };

    for (mi, m) in smg.mappings.iter().enumerate() {
        if m.src.0 >= nspaces || m.dst.0 >= nspaces {
            diags.push(Diagnostic::new(
                DiagCode::SmgMappingClass,
                Span::Mapping(mi),
                "mapping endpoint references an unknown space".to_string(),
            ));
            continue;
        }
        let mut dir_ok = true;
        if let Some(d) = m.kind.dim() {
            if d.0 >= ndims {
                diags.push(Diagnostic::new(
                    DiagCode::SmgDirectionDim,
                    Span::Mapping(mi),
                    format!("direction dimension d{} does not exist", d.0),
                ));
                dir_ok = false;
            } else if smg.dims[d.0].extent <= 1 {
                diags.push(Diagnostic::new(
                    DiagCode::SmgDirectionDim,
                    Span::Mapping(mi),
                    format!(
                        "direction dimension {} has unit extent — no geometric direction",
                        smg.dims[d.0].name
                    ),
                ));
                dir_ok = false;
            }
        }
        let (src, dst) = (live(m.src), live(m.dst));
        let class_violation = match m.kind {
            MappingKind::OneToOne if src != dst => {
                Some("One-to-One endpoints cover different dimension sets".to_string())
            }
            MappingKind::OneToAll(d) if dir_ok && (!dst.contains(&d) || src.contains(&d)) => {
                Some(format!(
                    "One-to-All along {} must reuse the source over a dimension \
                     present only in the destination",
                    smg.dims[d.0].name
                ))
            }
            MappingKind::AllToOne(d) if dir_ok && (!src.contains(&d) || dst.contains(&d)) => {
                Some(format!(
                    "All-to-One along {} must reduce a dimension present only in \
                     the source",
                    smg.dims[d.0].name
                ))
            }
            _ => None,
        };
        if let Some(msg) = class_violation {
            diags.push(Diagnostic::new(
                DiagCode::SmgMappingClass,
                Span::Mapping(mi),
                msg,
            ));
        }
    }
}

/// `SMG004`: the mapping edges form a DAG.
fn check_acyclic(smg: &Smg, diags: &mut Vec<Diagnostic>) {
    let n = smg.spaces.len();
    let mut adj = vec![Vec::new(); n];
    for m in &smg.mappings {
        if m.src.0 < n && m.dst.0 < n {
            adj[m.src.0].push(m.dst.0);
        }
    }
    // Iterative three-color DFS.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = GRAY;
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let (node, next) = stack[top];
            if next < adj[node].len() {
                stack[top].1 += 1;
                let child = adj[node][next];
                match color[child] {
                    WHITE => {
                        color[child] = GRAY;
                        stack.push((child, 0));
                    }
                    GRAY => {
                        diags.push(Diagnostic::new(
                            DiagCode::SmgCycle,
                            Span::Space(SpaceId(child)),
                            "space-mapping edges form a cycle — the fused space has no \
                             topological evaluation order"
                                .to_string(),
                        ));
                        return;
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smg::{build_smg, Mapping};
    use sf_tensor::ops::ReduceOp;
    use sf_tensor::{DType, Shape};

    fn softmax_smg() -> (Graph, Smg) {
        let mut g = Graph::new("t", DType::F16);
        let x = g.input("x", Shape::new(vec![64, 256]));
        let s = g.reduce(ReduceOp::Sum, x, 1).unwrap();
        g.mark_output(s);
        let smg = build_smg(&g).unwrap();
        (g, smg)
    }

    #[test]
    fn built_smg_is_structurally_clean() {
        let (g, smg) = softmax_smg();
        assert!(check_smg(&g, &smg).is_empty());
    }

    #[test]
    fn reclassified_reduction_trips_smg001() {
        let (g, mut smg) = softmax_smg();
        let mi = smg
            .mappings
            .iter()
            .position(|m| matches!(m.kind, MappingKind::AllToOne(_)))
            .unwrap();
        smg.mappings[mi].kind = MappingKind::OneToOne;
        let diags = check_smg(&g, &smg);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::SmgMappingClass),
            "{diags:?}"
        );
    }

    #[test]
    fn dangling_direction_trips_smg002() {
        let (g, mut smg) = softmax_smg();
        let mi = smg
            .mappings
            .iter()
            .position(|m| m.kind.dim().is_some())
            .unwrap();
        smg.mappings[mi].kind = MappingKind::AllToOne(DimId(99));
        let diags = check_smg(&g, &smg);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::SmgDirectionDim),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupted_extent_trips_smg003() {
        let (g, mut smg) = softmax_smg();
        let d = smg.value_axes[0][1];
        smg.dims[d.0].extent += 3;
        let diags = check_smg(&g, &smg);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::SmgDimAlignment),
            "{diags:?}"
        );
    }

    #[test]
    fn reversed_edge_trips_smg004() {
        let (g, mut smg) = softmax_smg();
        let m = smg.mappings[0];
        smg.mappings.push(Mapping {
            src: m.dst,
            dst: m.src,
            kind: MappingKind::OneToOne,
        });
        let diags = check_smg(&g, &smg);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::SmgCycle),
            "{diags:?}"
        );
    }
}
