//! Barrier/race and bounds analysis (`MEM302`, `BAR401`, `BND402`).
//!
//! [`check_instructions`] walks the lowered instruction stream
//! ([`crate::codegen::lower_instructions`]) with two abstract states:
//!
//! * a **placement set** per value — which memory tiers it has been
//!   written to so far (kernel inputs start in global memory, loads add
//!   shared, computes add their write tier). A read from a tier absent
//!   from the set is `MEM302`: the generated kernel would read garbage.
//! * a **dirty set** of shared buffers written since the last barrier.
//!   Shared stores are cooperative — the element a thread reads may
//!   have been written by a different thread — so a read of a dirty
//!   shared buffer is a read-after-write race (`BAR401`). Barriers
//!   clear the set; loop back-edges additionally check that nothing
//!   left dirty at the end of a body is read at its top (wrap-around).
//!
//! [`check_bounds`] validates the schedule's tile restrictions
//! symbolically (`BND402`): every restricted dimension must exist, and
//! its block size must be in `1..=extent` — a larger tile would index
//! past the dimension's end, a duplicate restriction would double-slice
//! it.

use super::{DiagCode, Diagnostic, Span};
use crate::codegen::{Instr, KernelProgram, MemSpace};
use crate::smg::DimId;
use sf_ir::{ValueId, ValueKind};
use std::collections::BTreeSet;

/// Runs the symbolic tile-bounds check over one kernel's schedule.
pub fn check_bounds(kp: &KernelProgram) -> Vec<Diagnostic> {
    let smg = &kp.schedule.smg;
    let ndims = smg.dims.len();
    let mut diags = Vec::new();
    let mut seen: Vec<DimId> = Vec::new();

    let mut entries: Vec<(DimId, usize, &str)> = kp
        .schedule
        .spatial
        .iter()
        .map(|&(d, b)| (d, b, "spatial"))
        .collect();
    if let Some(t) = &kp.schedule.temporal {
        entries.push((t.plan.dim, t.block, "temporal"));
    }

    for (d, block, which) in entries {
        let span = Span::Schedule { dim: d, block };
        if d.0 >= ndims {
            diags.push(Diagnostic::new(
                DiagCode::BndTileOutOfBounds,
                span,
                format!("{which} restriction names unknown dimension d{}", d.0),
            ));
            continue;
        }
        let extent = smg.dims[d.0].extent;
        if block == 0 {
            diags.push(Diagnostic::new(
                DiagCode::BndTileOutOfBounds,
                span,
                format!(
                    "{which} block size 0 on dimension {} — empty tiles",
                    smg.dims[d.0].name
                ),
            ));
        } else if block > extent {
            diags.push(Diagnostic::new(
                DiagCode::BndTileOutOfBounds,
                span,
                format!(
                    "{which} block size {block} exceeds the extent {extent} of \
                     dimension {} — tile indexing runs out of bounds",
                    smg.dims[d.0].name
                ),
            ));
        }
        if seen.contains(&d) {
            diags.push(Diagnostic::new(
                DiagCode::BndTileOutOfBounds,
                span,
                format!(
                    "dimension {} is restricted more than once",
                    smg.dims[d.0].name
                ),
            ));
        }
        seen.push(d);
    }
    diags
}

const PLACED_GLOBAL: u8 = 1;
const PLACED_SHARED: u8 = 2;
const PLACED_REGISTER: u8 = 4;

/// Runs the barrier/race and placement scan over a lowered instruction
/// stream.
///
/// Exposed separately from [`verify_kernel`](super::verify_kernel) so
/// tests can corrupt a stream (drop a barrier, drop a load) and check
/// the analyzer catches it.
pub fn check_instructions(kp: &KernelProgram, instrs: &[Instr]) -> Vec<Diagnostic> {
    let g = &kp.graph;
    let n = g.values().len();
    let mut diags = Vec::new();

    let mut placed = vec![0u8; n];
    for (vi, v) in g.values().iter().enumerate() {
        if matches!(v.kind, ValueKind::Input | ValueKind::Weight) {
            placed[vi] |= PLACED_GLOBAL;
        }
    }
    let mut dirty: BTreeSet<ValueId> = BTreeSet::new();
    let mut loop_stack: Vec<usize> = Vec::new();

    for (i, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::LoadBlock { value } | Instr::LoadTile { value } => {
                if value.0 < n {
                    placed[value.0] |= PLACED_SHARED;
                    dirty.insert(*value);
                }
            }
            Instr::Barrier => dirty.clear(),
            Instr::LoopBegin { .. } => loop_stack.push(i),
            Instr::LoopEnd { .. } => {
                let start = loop_stack.pop().unwrap_or(0);
                // Wrap-around: a buffer left dirty at the loop end is
                // re-read at the top of the next iteration.
                for &v in &dirty {
                    let read_in_body = instrs[start..i].iter().any(|x| {
                        matches!(x, Instr::Compute { reads, .. }
                            if reads.iter().any(|&(rv, sp)| rv == v && sp == MemSpace::Shared))
                    });
                    if read_in_body {
                        diags.push(Diagnostic::new(
                            DiagCode::BarMissingBarrier,
                            Span::Instr(i),
                            format!(
                                "shared '{}' is still dirty at the loop back-edge and is \
                                 read at the top of the next iteration — missing barrier",
                                name(kp, v)
                            ),
                        ));
                    }
                }
                dirty.clear();
            }
            Instr::Compute { op, reads, write } => {
                for &(v, space) in reads {
                    if v.0 >= n {
                        continue;
                    }
                    let bit = match space {
                        MemSpace::Global => PLACED_GLOBAL,
                        MemSpace::Shared => PLACED_SHARED,
                        MemSpace::Register => PLACED_REGISTER,
                    };
                    if placed[v.0] & bit == 0 {
                        diags.push(Diagnostic::new(
                            DiagCode::MemReadUnplaced,
                            Span::Instr(i),
                            format!(
                                "op #{} reads '{}' from {} but the value was never \
                                 placed there",
                                op.0,
                                name(kp, v),
                                space_name(space)
                            ),
                        ));
                    } else if space == MemSpace::Shared && dirty.contains(&v) {
                        diags.push(Diagnostic::new(
                            DiagCode::BarMissingBarrier,
                            Span::Instr(i),
                            format!(
                                "op #{} reads shared '{}' that another thread may still \
                                 be writing — no barrier since the write",
                                op.0,
                                name(kp, v)
                            ),
                        ));
                    }
                }
                let (wv, wspace) = *write;
                if wv.0 < n {
                    placed[wv.0] |= match wspace {
                        MemSpace::Global => PLACED_GLOBAL,
                        MemSpace::Shared => PLACED_SHARED,
                        MemSpace::Register => PLACED_REGISTER,
                    };
                    if wspace == MemSpace::Shared {
                        dirty.insert(wv);
                    }
                }
            }
            // Stores (and partial-state parks) read the thread-private
            // register copy; the combine phase runs after the phase-1
            // drain on finalized slots. Nothing to check here —
            // footprints are the race prover's concern, the combine
            // algebra SLC104's.
            Instr::Store { .. } | Instr::StorePartial { .. } | Instr::Combine { .. } => {}
        }
    }
    diags
}

fn name(kp: &KernelProgram, v: ValueId) -> String {
    if v.0 < kp.graph.values().len() {
        kp.graph.value_name(v).to_string()
    } else {
        format!("%{}", v.0)
    }
}

fn space_name(s: MemSpace) -> &'static str {
    match s {
        MemSpace::Global => "global memory",
        MemSpace::Shared => "shared memory",
        MemSpace::Register => "registers",
    }
}
