//! A minimal JSON value, parser, and writer.
//!
//! The workspace is hermetic (no registry dependencies), so the serve
//! protocol carries its own JSON layer: enough of RFC 8259 for the
//! request/response vocabulary — objects, arrays, strings with escape
//! sequences, integers/floats, booleans, null. Writing is canonical
//! (object keys render in insertion order, numbers via Rust's shortest
//! round-trip formatting), which the determinism gates rely on: the
//! same response value always serializes to the same bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers survive to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered (BTreeMap) so serialization is
    /// deterministic regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content as an unsigned integer (rejects negatives and
    /// non-integral values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean content, when `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error occurred at.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

/// Maximum container nesting depth. Hostile inputs like `[[[[…` would
/// otherwise drive the recursive-descent parser into a stack overflow
/// — an abort, not a typed error. The protocol vocabulary nests 4 deep.
pub const MAX_JSON_DEPTH: usize = 128;

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing garbage after document"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_JSON_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of document")),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "malformed \\u escape"))?;
                        // Surrogate pairs are not needed by the protocol
                        // vocabulary; lone surrogates map to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "bad utf-8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "bad utf-8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_documents() {
        let doc = Json::obj(vec![
            ("op", Json::Str("compile".into())),
            ("id", Json::Num(7.0)),
            ("graph", Json::Str("graph g f32\ninput x [4, 4]\n".into())),
            ("want_data", Json::Bool(false)),
            ("deadline_ms", Json::Null),
            (
                "outputs",
                Json::Arr(vec![Json::obj(vec![
                    ("shape", Json::Arr(vec![Json::Num(4.0), Json::Num(4.0)])),
                    ("checksum", Json::Str("deadbeef".into())),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        // Canonical: rendering is stable under a second round trip.
        assert_eq!(parse(&text).unwrap().render(), text);
    }

    #[test]
    fn escapes_survive() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn numbers_render_as_integers_when_integral() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(-3.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "{}x",
            "\"\\q\"",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(MAX_JSON_DEPTH + 10);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        // Depths inside the cap still parse.
        let ok = format!("{}{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Null));
    }
}
