//! Minimal blocking client for the serve protocol (used by the CLI's
//! load generator and the socket tests).

#![cfg(unix)]

use super::protocol::{read_frame, write_frame, CompileRequest, Request, Response, StatsSnapshot};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// One connection to a serve daemon.
pub struct ServeClient {
    stream: UnixStream,
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl ServeClient {
    /// Connects to the daemon's socket.
    pub fn connect(path: &Path) -> io::Result<ServeClient> {
        Ok(ServeClient {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Connects, retrying while the daemon finishes binding. Retries
    /// every 20 ms up to `timeout`.
    pub fn connect_with_retry(path: &Path, timeout: Duration) -> io::Result<ServeClient> {
        let mut waited = Duration::ZERO;
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => return Ok(ServeClient { stream }),
                Err(e) if waited >= timeout => return Err(e),
                Err(_) => {
                    let step = Duration::from_millis(20);
                    std::thread::sleep(step);
                    waited += step;
                }
            }
        }
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.to_json())?;
        let doc = read_frame(&mut self.stream)?
            .ok_or_else(|| bad_data("daemon closed the connection".into()))?;
        Response::from_json(&doc).map_err(bad_data)
    }

    /// Compile + execute one graph.
    pub fn compile(&mut self, req: CompileRequest) -> io::Result<Response> {
        self.request(&Request::Compile(Box::new(req)))
    }

    /// Fetches the daemon's counter snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(bad_data(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to persist its snapshot and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(bad_data(format!("expected shutdown ack, got {other:?}"))),
        }
    }
}
