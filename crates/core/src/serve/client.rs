//! Minimal blocking client for the serve protocol (used by the CLI's
//! load generator, the chaos campaign, and the socket tests), plus the
//! request-level retry/backoff layer.
//!
//! **Retry contract.** A compile request is idempotent: the daemon's
//! response is a pure function of the request (bucketed compile +
//! seeded execution), so resending after a transport failure can never
//! double-apply anything. [`ServeClient::compile_with_retry`] therefore
//! retries on
//!
//! * [`Response::Retry`] admission sheds — backing off with seeded,
//!   jittered exponential delays, and
//! * transport errors (torn frames, dropped connections, daemon closed
//!   mid-response) — reconnecting before the resend,
//!
//! up to a bounded attempt budget ([`RetryPolicy::attempts`], default
//! 5). Deterministic seeding keeps chaos campaigns reproducible: the
//! same seed yields the same backoff schedule.

#![cfg(unix)]

use super::protocol::{read_frame, write_frame, CompileRequest, Request, Response, StatsSnapshot};
use sf_tensor::rng::XorShiftRng;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Bounded, seeded retry/backoff policy for compile requests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempt budget (first try included). At least 1.
    pub attempts: u32,
    /// Base backoff delay, doubled per retry, plus seeded jitter of up
    /// to one base step.
    pub base_backoff_ms: u64,
    /// Jitter seed; fixed seed ⇒ fixed backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_backoff_ms: 2,
            seed: 0,
        }
    }
}

/// One connection to a serve daemon.
pub struct ServeClient {
    stream: UnixStream,
    path: PathBuf,
    io_timeout: Option<Duration>,
    policy: RetryPolicy,
    rng: XorShiftRng,
    retries: u64,
    sheds_recovered: u64,
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl ServeClient {
    fn from_stream(stream: UnixStream, path: &Path) -> ServeClient {
        let policy = RetryPolicy::default();
        let rng = XorShiftRng::seed_from_u64(policy.seed);
        ServeClient {
            stream,
            path: path.to_path_buf(),
            io_timeout: None,
            policy,
            rng,
            retries: 0,
            sheds_recovered: 0,
        }
    }

    /// Connects to the daemon's socket.
    pub fn connect(path: &Path) -> io::Result<ServeClient> {
        Ok(ServeClient::from_stream(UnixStream::connect(path)?, path))
    }

    /// Connects, retrying while the daemon finishes binding. Retries
    /// every 20 ms up to `timeout`.
    pub fn connect_with_retry(path: &Path, timeout: Duration) -> io::Result<ServeClient> {
        let mut waited = Duration::ZERO;
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => return Ok(ServeClient::from_stream(stream, path)),
                Err(e) if waited >= timeout => return Err(e),
                Err(_) => {
                    let step = Duration::from_millis(20);
                    std::thread::sleep(step);
                    waited += step;
                }
            }
        }
    }

    /// Sets a socket read/write timeout, so a daemon that stops
    /// mid-response can never hang this client.
    pub fn with_io_timeout(mut self, timeout: Duration) -> io::Result<ServeClient> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        self.io_timeout = Some(timeout);
        Ok(self)
    }

    /// Installs a retry policy for [`ServeClient::compile_with_retry`].
    pub fn with_retry(mut self, policy: RetryPolicy) -> ServeClient {
        self.rng = XorShiftRng::seed_from_u64(policy.seed);
        self.policy = policy;
        self
    }

    /// Retries performed so far (shed backoffs + transport resends).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Admission sheds that were subsequently recovered by a retry.
    pub fn sheds_recovered(&self) -> u64 {
        self.sheds_recovered
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.to_json())?;
        let doc = read_frame(&mut self.stream)?
            .ok_or_else(|| bad_data("daemon closed the connection".into()))?;
        Response::from_json(&doc).map_err(bad_data)
    }

    /// Compile + execute one graph, single attempt.
    pub fn compile(&mut self, req: CompileRequest) -> io::Result<Response> {
        self.request(&Request::Compile(Box::new(req)))
    }

    /// Drops the current connection and dials a fresh one, carrying
    /// over the configured I/O timeout.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = UnixStream::connect(&self.path)?;
        if let Some(t) = self.io_timeout {
            stream.set_read_timeout(Some(t))?;
            stream.set_write_timeout(Some(t))?;
        }
        self.stream = stream;
        Ok(())
    }

    /// Seeded jittered exponential backoff for retry attempt `n`
    /// (0-based): `base << n` plus up to one extra base step.
    fn backoff(&mut self, n: u32) {
        let base = self.policy.base_backoff_ms.clamp(1, 1 << 16);
        let jitter = self.rng.below(base + 1);
        let ms = base.saturating_mul(1 << n.min(16)).saturating_add(jitter);
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// Compile + execute one graph with bounded retry: admission sheds
    /// back off (seeded jitter) and resend; transport failures — torn
    /// frames, dropped connections, daemon closed mid-response —
    /// reconnect and resend. Safe because compile responses are pure
    /// functions of the request. Returns the last shed as
    /// [`Response::Retry`] (or the last transport error) when the
    /// attempt budget runs out.
    pub fn compile_with_retry(&mut self, req: CompileRequest) -> io::Result<Response> {
        let attempts = self.policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        let mut shed_pending = false;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                self.backoff(attempt - 1);
                if last_err.is_some() && self.reconnect().is_err() {
                    // The daemon may still be mid-close; next attempt
                    // redials after another backoff.
                    continue;
                }
            }
            match self.compile(req.clone()) {
                Ok(Response::Retry { id, index }) => {
                    shed_pending = true;
                    last_err = None;
                    if attempt + 1 == attempts {
                        return Ok(Response::Retry { id, index });
                    }
                }
                Ok(resp) => {
                    if shed_pending {
                        self.sheds_recovered += 1;
                    }
                    return Ok(resp);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "retry budget exhausted")))
    }

    /// Fetches the daemon's counter snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(bad_data(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the daemon to persist its snapshot and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(bad_data(format!("expected shutdown ack, got {other:?}"))),
        }
    }
}
