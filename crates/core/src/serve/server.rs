//! The serve daemon: admission control, compile workers, and the Unix
//! socket front end.
//!
//! [`ServeCore`] is the in-process heart of `sfc serve` (and what the
//! concurrency tests drive directly, no socket needed): a bounded FIFO
//! request queue feeding a pool of compile workers that share one
//! [`ScheduleCache`], one [`ExecEngine`], and one [`ProgramCache`].
//! Requests are bucketed by `(graph, shape, arch, policy)`; the bucket
//! cache's claim-ticket protocol guarantees N identical in-flight
//! requests trigger exactly one compile while the other N−1 block and
//! receive the shared program.
//!
//! **Admission control.** Every compile request receives a
//! monotonically increasing admission index *under the queue lock*. If
//! the queue is full at that instant the request is shed with a
//! [`Response::Retry`] carrying its index — so of two racing requests
//! the lower index always wins the last slot, and shedding is a pure
//! function of arrival order (never of worker scheduling). Shed
//! responses return immediately; the worker pool never sees them.
//!
//! **Deadlines.** A request's `deadline_ms` flows into the compiler's
//! `schedule_budget_ms`; a zero deadline compiles best-so-far through
//! the degradation ladder rather than hanging.
//!
//! **Warm start.** When a snapshot path is configured, the schedule
//! cache is loaded (entry-by-entry, evicting corruption) before the
//! first worker starts and persisted again at shutdown.

use super::bucket::{BucketKey, ProgramCache};
use super::protocol::{
    tensor_checksum, CacheOutcome, CompileRequest, OkResponse, OutputDigest, Response,
    StatsSnapshot, PROTOCOL_VERSION,
};
use super::snapshot::{self, LoadReport};
use crate::codegen::{ExecEngine, ExecOptions};
use crate::pipeline::{Claim, CompileOptions, CompileSession, FusionPolicy, ScheduleCache};
use crate::resilience::FaultInjector;
use sf_ir::dsl::parse_graph;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded request queue depth; requests arriving while the queue
    /// holds this many entries are shed.
    pub queue_depth: usize,
    /// Execution worker threads per request (`0` = machine auto).
    pub exec_threads: usize,
    /// Schedule-cache snapshot to load at start and write at shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Per-session socket read/write timeout, ms. A client that stalls
    /// mid-frame (or sits idle) longer than this is reaped: its session
    /// thread closes the connection and exits instead of being pinned
    /// forever. Also the idle-connection reaper — an idle peer's next
    /// read times out the same way.
    pub session_timeout_ms: u64,
    /// Deterministic fault plan armed on every compile session and on
    /// the serve-layer hooks (tests, `faultsim`/`chaos` drills; normal
    /// serving leaves this unset).
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            exec_threads: 0,
            snapshot_path: None,
            session_timeout_ms: 30_000,
            faults: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    sheds: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    program_compiles: AtomicU64,
    degradations: AtomicU64,
    in_flight: AtomicU64,
    sessions_reaped: AtomicU64,
    sessions_crashed: AtomicU64,
    frames_rejected: AtomicU64,
}

/// One queued request and the slot its response is delivered through.
struct Work {
    req: Box<CompileRequest>,
    index: u64,
}

struct Slot {
    cell: Mutex<Option<Response>>,
    cv: Condvar,
}

impl Slot {
    fn deliver(&self, resp: Response) {
        *lock(&self.cell) = Some(resp);
        self.cv.notify_all();
    }

    fn wait(&self) -> Response {
        let mut cell = lock(&self.cell);
        loop {
            if let Some(resp) = cell.take() {
                return resp;
            }
            cell = self.cv.wait(cell).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct QueueState {
    items: VecDeque<(Work, Arc<Slot>)>,
    next_index: u64,
}

struct Inner {
    config: ServeConfig,
    cache: Arc<ScheduleCache>,
    engine: Arc<ExecEngine>,
    programs: ProgramCache,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    gates: Mutex<HashMap<String, bool>>,
    gates_cv: Condvar,
    stats: Counters,
    warm: Mutex<LoadReport>,
    shutdown: AtomicBool,
}

// Poison-tolerant lock: a panic on one worker (already confined by the
// compiler's pass isolation) must not wedge the daemon's control state.
fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cloneable handle to a running serve core. All clones share the same
/// queue, caches, and workers; [`ServeCore::shutdown`] stops them.
pub struct ServeCore {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Clone for ServeCore {
    fn clone(&self) -> Self {
        ServeCore {
            inner: Arc::clone(&self.inner),
            workers: Arc::clone(&self.workers),
        }
    }
}

impl ServeCore {
    /// Starts the core: loads the snapshot (when configured) into the
    /// shared schedule cache, then spawns the compile workers.
    pub fn start(config: ServeConfig) -> std::io::Result<ServeCore> {
        let cache = Arc::new(ScheduleCache::new());
        let warm = match &config.snapshot_path {
            Some(path) => snapshot::load(&cache, path)?,
            None => LoadReport::default(),
        };
        let worker_count = config.workers.max(1);
        let inner = Arc::new(Inner {
            config,
            cache,
            engine: ExecEngine::shared(),
            programs: ProgramCache::new(),
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                next_index: 0,
            }),
            queue_cv: Condvar::new(),
            gates: Mutex::new(HashMap::new()),
            gates_cv: Condvar::new(),
            stats: Counters::default(),
            warm: Mutex::new(warm),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(ServeCore {
            inner,
            workers: Arc::new(Mutex::new(workers)),
        })
    }

    /// Submits one compile request, blocking until its response is
    /// ready. Shed requests (queue full at arrival) return
    /// [`Response::Retry`] immediately without blocking.
    pub fn submit(&self, req: CompileRequest) -> Response {
        let inner = &self.inner;
        inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        let id = req.id;
        let slot = Arc::new(Slot {
            cell: Mutex::new(None),
            cv: Condvar::new(),
        });
        {
            let mut queue = lock(&inner.queue);
            // The admission index is assigned and the full/enqueue
            // decision taken under one lock acquisition: of two racing
            // requests, the lower index always wins the last slot.
            let index = queue.next_index;
            queue.next_index += 1;
            if inner.shutdown.load(Ordering::SeqCst) {
                return Response::Error {
                    id,
                    message: "daemon is shutting down".into(),
                };
            }
            if queue.items.len() >= inner.config.queue_depth {
                inner.stats.sheds.fetch_add(1, Ordering::Relaxed);
                return Response::Retry { id, index };
            }
            queue.items.push_back((
                Work {
                    req: Box::new(req),
                    index,
                },
                Arc::clone(&slot),
            ));
        }
        inner.queue_cv.notify_one();
        slot.wait()
    }

    /// Counter snapshot (the `stats` op; bypasses admission control).
    pub fn stats(&self) -> StatsSnapshot {
        let inner = &self.inner;
        let warm = *lock(&inner.warm);
        StatsSnapshot {
            version: PROTOCOL_VERSION,
            requests: inner.stats.requests.load(Ordering::Relaxed),
            sheds: inner.stats.sheds.load(Ordering::Relaxed),
            ok: inner.stats.ok.load(Ordering::Relaxed),
            errors: inner.stats.errors.load(Ordering::Relaxed),
            program_compiles: inner.stats.program_compiles.load(Ordering::Relaxed),
            program_hits: inner.programs.hits() as u64,
            schedule_hits: inner.cache.hits() as u64,
            schedule_misses: inner.cache.misses() as u64,
            schedule_entries: inner.cache.len() as u64,
            warm_loaded: warm.loaded as u64,
            warm_evicted: warm.evicted as u64,
            degradations: inner.stats.degradations.load(Ordering::Relaxed),
            sessions_reaped: inner.stats.sessions_reaped.load(Ordering::Relaxed),
            sessions_crashed: inner.stats.sessions_crashed.load(Ordering::Relaxed),
            frames_rejected: inner.stats.frames_rejected.load(Ordering::Relaxed),
        }
    }

    /// The armed fault injector, when one is configured.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.config.faults.as_ref()
    }

    /// The configured per-session socket timeout.
    pub fn session_timeout_ms(&self) -> u64 {
        self.inner.config.session_timeout_ms
    }

    /// Counts a session closed by the watchdog (stalled/idle peer).
    pub fn note_session_reaped(&self) {
        self.inner
            .stats
            .sessions_reaped
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session thread panic that was isolated.
    pub fn note_session_crashed(&self) {
        self.inner
            .stats
            .sessions_crashed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an inbound frame the decoder rejected.
    pub fn note_frame_rejected(&self) {
        self.inner
            .stats
            .frames_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The shared schedule cache (inspection and snapshot tests).
    pub fn cache(&self) -> &Arc<ScheduleCache> {
        &self.inner.cache
    }

    /// Requests queued but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        lock(&self.inner.queue).items.len()
    }

    /// Requests currently being processed by workers.
    pub fn in_flight(&self) -> usize {
        self.inner.stats.in_flight.load(Ordering::SeqCst) as usize
    }

    /// Releases a named hold gate: every request holding on it (and
    /// any future request naming it) proceeds.
    pub fn release_gate(&self, name: &str) {
        lock(&self.inner.gates).insert(name.to_string(), true);
        self.inner.gates_cv.notify_all();
    }

    /// Flags shutdown without waiting: queued work still drains, new
    /// submissions are refused, held gates are released.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        self.inner.gates_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stops the core: drains queued work, joins the workers, and
    /// persists the schedule-cache snapshot (when configured). Returns
    /// the final counter snapshot. Idempotent across clones.
    pub fn shutdown(&self) -> std::io::Result<StatsSnapshot> {
        self.request_shutdown();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.inner.config.snapshot_path {
            snapshot::save_with_faults(
                &self.inner.cache,
                path,
                self.inner.config.faults.as_deref(),
            )?;
        }
        Ok(self.stats())
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (work, slot) = {
            let mut queue = lock(&inner.queue);
            loop {
                if let Some(item) = queue.items.pop_front() {
                    break item;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        inner.stats.in_flight.fetch_add(1, Ordering::SeqCst);
        let resp = process(inner, &work);
        match &resp {
            Response::Ok(_) => inner.stats.ok.fetch_add(1, Ordering::Relaxed),
            _ => inner.stats.errors.fetch_add(1, Ordering::Relaxed),
        };
        inner.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
        slot.deliver(resp);
    }
}

/// Blocks on a named hold gate until released (or shutdown).
fn hold_on_gate(inner: &Inner, name: &str) {
    let mut gates = lock(&inner.gates);
    loop {
        if gates.get(name).copied().unwrap_or(false) || inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        gates = inner
            .gates_cv
            .wait(gates)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

fn process(inner: &Arc<Inner>, work: &Work) -> Response {
    let req = &work.req;
    let id = req.id;
    let fail = |message: String| Response::Error { id, message };
    if let Some(gate) = &req.hold {
        hold_on_gate(inner, gate);
    }
    let graph = match parse_graph(&req.graph) {
        Ok(g) => g,
        Err(e) => return fail(format!("graph parse error: {e}")),
    };
    let arch = req.arch.config();
    let key = BucketKey::new(&graph, &arch, req.policy);
    let (program, outcome) = match inner.programs.claim(&key) {
        Claim::Hit(p) => (p, CacheOutcome::Hit),
        Claim::Miss(ticket) => {
            let mut opts = CompileOptions {
                policy: req.policy,
                schedule_budget_ms: req.deadline_ms,
                ..CompileOptions::default()
            };
            if req.policy == FusionPolicy::TileGraph {
                opts.slicing.enable_uta = false;
            }
            let mut session = CompileSession::with_config(arch, opts)
                .with_cache(Arc::clone(&inner.cache))
                .with_engine(Arc::clone(&inner.engine));
            if let Some(faults) = &inner.config.faults {
                session = session.with_faults(Arc::clone(faults));
            }
            match session.compile(&graph) {
                Ok(p) => {
                    inner
                        .stats
                        .degradations
                        .fetch_add(p.stats.degradations.len() as u64, Ordering::Relaxed);
                    inner.stats.program_compiles.fetch_add(1, Ordering::Relaxed);
                    let p = Arc::new(p);
                    inner.programs.fulfill(ticket, Arc::clone(&p));
                    (p, CacheOutcome::Miss)
                }
                // The ticket drops here unfulfilled, waking the next
                // waiter on this bucket to compile in our stead.
                Err(e) => return fail(format!("compile error: {e}")),
            }
        }
    };
    let bindings = graph.random_bindings(req.seed);
    let exec = ExecOptions::with_threads(inner.config.exec_threads);
    let tensors = match program.execute_with(&bindings, &exec) {
        Ok(t) => t,
        Err(e) => return fail(format!("execution error: {e}")),
    };
    let outputs = program
        .outputs
        .iter()
        .zip(&tensors)
        .map(|((name, _), t)| OutputDigest {
            name: name.clone(),
            shape: t.shape().dims().to_vec(),
            checksum: tensor_checksum(t.shape().dims(), t.data()),
            data: req.want_data.then(|| t.data().to_vec()),
        })
        .collect();
    Response::Ok(Box::new(OkResponse {
        id,
        index: work.index,
        cache: outcome,
        kernels: program.kernels.len(),
        degradations: program.stats.degradations.len(),
        outputs,
    }))
}

#[cfg(unix)]
pub use unix_socket::Server;

#[cfg(unix)]
mod unix_socket {
    use super::super::json::Json;
    use super::super::protocol::{read_frame, write_frame, Request, Response};
    use super::{lock, ServeConfig, ServeCore, StatsSnapshot};
    use crate::resilience::{FaultKind, FaultStage};
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::Duration;

    /// Unix-domain-socket front end over a [`ServeCore`].
    pub struct Server {
        core: ServeCore,
        listener: UnixListener,
        path: PathBuf,
    }

    impl Server {
        /// Binds the socket and starts the core — including the
        /// warm-start snapshot load. A *stale* socket file (nothing
        /// accepting on it) is replaced; a socket a live daemon answers
        /// on fails with `AddrInUse`, so a second daemon can never
        /// silently hijack a running one.
        pub fn bind(path: &Path, config: ServeConfig) -> io::Result<Server> {
            match UnixStream::connect(path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a live daemon is already serving on {}", path.display()),
                    ));
                }
                // No socket file: nothing to replace.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                // A file exists but no one accepts (e.g. a crashed
                // daemon's leftover): safe to unlink and rebind.
                Err(_) => match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                },
            }
            let listener = UnixListener::bind(path)?;
            // Nonblocking accept lets the loop poll the shutdown flag.
            listener.set_nonblocking(true)?;
            Ok(Server {
                core: ServeCore::start(config)?,
                listener,
                path: path.to_path_buf(),
            })
        }

        /// The underlying core (shared with all sessions).
        pub fn core(&self) -> &ServeCore {
            &self.core
        }

        /// Accepts client sessions until a client sends `shutdown`,
        /// then drains, persists the snapshot, removes the socket
        /// file, and returns the final stats. Clients still connected
        /// at shutdown have their streams closed server-side — the
        /// daemon never waits for an idle client to hang up.
        pub fn run(self) -> io::Result<StatsSnapshot> {
            let mut sessions: Vec<JoinHandle<()>> = Vec::new();
            let streams: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
            loop {
                if self.core.is_shutting_down() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(clone) = stream.try_clone() {
                            lock(&streams).push(clone);
                        }
                        let core = self.core.clone();
                        sessions.push(std::thread::spawn(move || session(&core, stream)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            for s in lock(&streams).drain(..) {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            for h in sessions {
                let _ = h.join();
            }
            let stats = self.core.shutdown()?;
            std::fs::remove_file(&self.path).ok();
            Ok(stats)
        }
    }

    /// One client connection, with panic isolation: a session thread
    /// that panics (including an injected [`FaultKind::CrashSession`])
    /// is counted and its connection dropped — the daemon, its queue,
    /// and its caches stay healthy because session code never holds a
    /// core lock across the request dispatch.
    fn session(core: &ServeCore, stream: UnixStream) {
        // The accept loop holds a dup of this socket (for shutdown), so
        // dropping the session's handles does not sever the connection
        // — an explicit shutdown on any exit (reap, drop, panic) does,
        // immediately unblocking a peer waiting on a response.
        let cleanup = stream.try_clone().ok();
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session_loop(core, stream)))
            .is_err()
        {
            core.note_session_crashed();
        }
        if let Some(s) = cleanup {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// The session body: frames in, frames out, until EOF, a decode
    /// error, a watchdog timeout, or a `shutdown` request.
    fn session_loop(core: &ServeCore, stream: UnixStream) {
        // The watchdog: a peer that stalls mid-frame or sits idle past
        // the session timeout is reaped instead of pinning this thread.
        let timeout = Duration::from_millis(core.session_timeout_ms().max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let mut reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut writer = stream;
        loop {
            let doc = match read_frame(&mut reader) {
                Ok(Some(doc)) => doc,
                Ok(None) => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    core.note_session_reaped();
                    return;
                }
                Err(_) => {
                    // Torn prefix, over-limit length, bad UTF-8, or
                    // malformed JSON: the frame is rejected and the
                    // connection dropped.
                    core.note_frame_rejected();
                    return;
                }
            };
            let resp = match Request::from_json(&doc) {
                Err(message) => {
                    core.note_frame_rejected();
                    Response::Error { id: 0, message }
                }
                Ok(Request::Stats) => Response::Stats(Box::new(core.stats())),
                Ok(Request::Shutdown) => {
                    core.request_shutdown();
                    let _ = write_frame(&mut writer, &Response::Shutdown.to_json());
                    return;
                }
                Ok(Request::Compile(req)) => {
                    // Serve-session fault hook: after the request frame
                    // is read, before it is submitted.
                    if let Some(fault) = core
                        .faults()
                        .and_then(|inj| inj.fire_fault(FaultStage::ServeSession, "session"))
                    {
                        match fault.kind {
                            FaultKind::CrashSession => panic!("injected session crash"),
                            // Close mid-request: no response is written.
                            _ => return,
                        }
                    }
                    let resp = core.submit(*req);
                    // Serve-write fault hook: truncate the outbound
                    // frame at the fault's seeded byte offset and sever.
                    if let Some(fault) = core
                        .faults()
                        .and_then(|inj| inj.fire_fault(FaultStage::ServeWrite, "response"))
                    {
                        if fault.kind == FaultKind::TornFrame {
                            let _ = write_torn_frame(&mut writer, &resp.to_json(), fault.block);
                            return;
                        }
                    }
                    resp
                }
            };
            if write_frame(&mut writer, &resp.to_json()).is_err() {
                return;
            }
        }
    }

    /// Writes a deliberately truncated frame — the first
    /// `offset % frame_len` bytes of the length prefix + body — then
    /// severs the connection. The client must observe a torn frame (or
    /// a bare close when the cut lands at 0), never a valid response.
    fn write_torn_frame(w: &mut UnixStream, doc: &Json, offset: usize) -> io::Result<()> {
        use std::io::Write as _;
        let body = doc.render();
        let mut full = Vec::with_capacity(4 + body.len());
        full.extend_from_slice(&(body.len() as u32).to_be_bytes());
        full.extend_from_slice(body.as_bytes());
        let cut = offset % full.len().max(1);
        w.write_all(&full[..cut])?;
        w.flush()?;
        w.shutdown(std::net::Shutdown::Both)
    }
}
