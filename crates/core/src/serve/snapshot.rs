//! Disk persistence for the schedule cache: versioned, checksummed,
//! evict-on-corruption snapshots.
//!
//! Format (line-oriented text; `\` and newlines inside free-form fields
//! are backslash-escaped so every record stays one line):
//!
//! ```text
//! sfcache v1
//! entry <fnv1a64 of the body, 16 hex digits>
//! shape <escaped shape key>
//! policy <policy name>
//! arch <escaped GpuArch fingerprint>
//! pieces <len> <len> ...
//! config spatial=<n>,<n>,... temporal=<n|-> split=<n|->
//! ...one config line per piece...
//! end
//! ```
//!
//! The checksum on each `entry` line covers the body lines from `shape`
//! through `end` inclusive. Loading is entry-by-entry and *never* fails
//! on content: a version-mismatched header marks the whole file stale
//! (nothing loads), while an entry whose checksum mismatches, whose
//! body fails to parse, or whose decoded [`CacheEntry`] is not
//! [well-formed](CacheEntry::is_well_formed) is evicted individually —
//! counted in [`LoadReport::evicted`] — and simply recompiled on first
//! use. A file truncated mid-entry drops only the trailing partial
//! entry. Saving writes entries in sorted key order, so equal caches
//! produce byte-identical snapshots.

use super::protocol::fnv1a64;
use crate::pipeline::{CacheEntry, CacheKey, FusionPolicy, SavedConfig, ScheduleCache};
use std::fs;
use std::io;
use std::path::Path;

/// Snapshot format version. Bump on any layout change; old files are
/// then treated as stale in full.
pub const SNAPSHOT_VERSION: &str = "sfcache v1";

/// Outcome of [`load`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries that passed checksum + parse + well-formedness and were
    /// published into the cache.
    pub loaded: usize,
    /// Entries dropped: checksum mismatch, parse failure, malformed
    /// schedule, truncation, or a stale file version (then every entry
    /// counts).
    pub evicted: usize,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn render_opt(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "-".into(),
    }
}

fn parse_opt(s: &str) -> Option<Option<usize>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse::<usize>().ok().map(Some)
    }
}

/// Renders one entry's body (the checksummed lines, `shape` through
/// `end`, each newline-terminated).
fn render_body(key: &CacheKey, entry: &CacheEntry) -> String {
    use std::fmt::Write as _;
    let mut body = String::new();
    let _ = writeln!(body, "shape {}", escape(&key.shape));
    let _ = writeln!(body, "policy {}", key.policy.name());
    let _ = writeln!(body, "arch {}", escape(&key.arch));
    let pieces: Vec<String> = entry.piece_lens.iter().map(|l| l.to_string()).collect();
    let _ = writeln!(body, "pieces {}", pieces.join(" "));
    for c in &entry.configs {
        let spatial: Vec<String> = c.spatial.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(
            body,
            "config spatial={} temporal={} split={}",
            spatial.join(","),
            render_opt(c.temporal),
            render_opt(c.split),
        );
    }
    body.push_str("end\n");
    body
}

/// Parses one entry body (the lines between `entry` and `end`,
/// exclusive) back into a key and entry. `None` means corrupt.
fn parse_body(lines: &[&str]) -> Option<(CacheKey, CacheEntry)> {
    let mut shape = None;
    let mut policy = None;
    let mut arch = None;
    let mut piece_lens: Option<Vec<usize>> = None;
    let mut configs = Vec::new();
    for line in lines {
        let (tag, rest) = line.split_once(' ').unwrap_or((*line, ""));
        match tag {
            "shape" => shape = Some(unescape(rest)?),
            "policy" => policy = Some(FusionPolicy::parse(rest)?),
            "arch" => arch = Some(unescape(rest)?),
            "pieces" => {
                piece_lens = Some(
                    rest.split_whitespace()
                        .map(|t| t.parse::<usize>().ok())
                        .collect::<Option<Vec<usize>>>()?,
                );
            }
            "config" => {
                let mut spatial = None;
                let mut temporal = None;
                let mut split = None;
                for field in rest.split_whitespace() {
                    let (name, value) = field.split_once('=')?;
                    match name {
                        "spatial" => {
                            spatial = Some(
                                value
                                    .split(',')
                                    .map(|t| t.parse::<usize>().ok())
                                    .collect::<Option<Vec<usize>>>()?,
                            );
                        }
                        "temporal" => temporal = Some(parse_opt(value)?),
                        "split" => split = Some(parse_opt(value)?),
                        _ => return None,
                    }
                }
                configs.push(SavedConfig {
                    spatial: spatial?,
                    temporal: temporal?,
                    split: split?,
                });
            }
            _ => return None,
        }
    }
    Some((
        CacheKey {
            shape: shape?,
            policy: policy?,
            arch: arch?,
        },
        CacheEntry {
            piece_lens: piece_lens?,
            configs,
        },
    ))
}

/// Serializes the cache's published entries to the snapshot text.
pub fn render(cache: &ScheduleCache) -> String {
    let mut entries = cache.entries();
    entries.sort_by(|(a, _), (b, _)| {
        (&a.shape, a.policy.name(), &a.arch).cmp(&(&b.shape, b.policy.name(), &b.arch))
    });
    let mut out = String::new();
    out.push_str(SNAPSHOT_VERSION);
    out.push('\n');
    for (key, entry) in &entries {
        let body = render_body(key, entry);
        use std::fmt::Write as _;
        let _ = writeln!(out, "entry {:016x}", fnv1a64(body.as_bytes()));
        out.push_str(&body);
    }
    out
}

/// Writes the snapshot atomically (temp file + rename) so a crash
/// mid-save never leaves a half-written file at `path`.
pub fn save(cache: &ScheduleCache, path: &Path) -> io::Result<()> {
    save_with_faults(cache, path, None)
}

/// [`save`] with a fault-injection hook: a
/// [`FaultKind::KillDuringSnapshot`](crate::resilience::FaultKind) fault
/// abandons the write after `fault.block % len` bytes of the temp file
/// and never renames — simulating a daemon killed mid-snapshot. The
/// file at `path` is untouched, which is exactly the atomicity claim
/// the chaos campaign verifies.
pub fn save_with_faults(
    cache: &ScheduleCache,
    path: &Path,
    faults: Option<&crate::resilience::FaultInjector>,
) -> io::Result<()> {
    let text = render(cache);
    let tmp = path.with_extension("tmp");
    if let Some(inj) = faults {
        if let Some(fault) = inj.fire_fault(crate::resilience::FaultStage::ServeSnapshot, "save") {
            let cut = fault.block % text.len().max(1);
            fs::write(&tmp, &text.as_bytes()[..cut])?;
            return Ok(());
        }
    }
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Loads a snapshot text into the cache, entry by entry. See the
/// module docs for the eviction rules.
pub fn load_str(cache: &ScheduleCache, text: &str) -> LoadReport {
    let mut report = LoadReport::default();
    let mut lines = text.lines();
    let header_ok = lines.next() == Some(SNAPSHOT_VERSION);
    if !header_ok {
        // Stale or foreign file: count its entries as evicted and load
        // nothing — the daemon starts cold and overwrites on save.
        report.evicted = text.lines().filter(|l| l.starts_with("entry ")).count();
        return report;
    }
    let rest: Vec<&str> = lines.collect();
    let mut i = 0;
    while i < rest.len() {
        let Some(sum_hex) = rest[i].strip_prefix("entry ") else {
            // Stray line outside an entry: skip it.
            i += 1;
            continue;
        };
        // Collect the body through its `end` marker (or EOF: truncated).
        let body_start = i + 1;
        let mut body_end = None;
        for (j, line) in rest.iter().enumerate().skip(body_start) {
            if *line == "end" {
                body_end = Some(j);
                break;
            }
        }
        let Some(body_end) = body_end else {
            report.evicted += 1;
            break;
        };
        i = body_end + 1;
        let mut body = rest[body_start..body_end].join("\n");
        body.push_str("\nend\n");
        let sum_ok = u64::from_str_radix(sum_hex, 16)
            .map(|want| want == fnv1a64(body.as_bytes()))
            .unwrap_or(false);
        if !sum_ok {
            report.evicted += 1;
            continue;
        }
        match parse_body(&rest[body_start..body_end]) {
            Some((key, entry)) if entry.is_well_formed() => {
                cache.insert(key, entry);
                report.loaded += 1;
            }
            _ => report.evicted += 1,
        }
    }
    report
}

/// Loads a snapshot file into the cache. A missing file is an empty
/// snapshot (cold start); other I/O errors surface.
pub fn load(cache: &ScheduleCache, path: &Path) -> io::Result<LoadReport> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(load_str(cache, &text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LoadReport::default()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn key(shape: &str, policy: FusionPolicy) -> CacheKey {
        CacheKey {
            shape: shape.into(),
            policy,
            arch: "GpuArch { sms: 4 }".into(),
        }
    }

    fn entry(split: Option<usize>) -> CacheEntry {
        CacheEntry {
            piece_lens: vec![2, 1],
            configs: vec![
                SavedConfig {
                    spatial: vec![16, 8],
                    temporal: Some(4),
                    split,
                },
                SavedConfig {
                    spatial: vec![32],
                    temporal: None,
                    split: None,
                },
            ],
        }
    }

    fn populated() -> ScheduleCache {
        let cache = ScheduleCache::new();
        cache.insert(
            key("softmax:4x4", FusionPolicy::SpaceFusion),
            entry(Some(2)),
        );
        cache.insert(key("layernorm:8x8", FusionPolicy::Unfused), entry(None));
        cache
    }

    #[test]
    fn round_trips_and_is_deterministic() {
        let cache = populated();
        let text = render(&cache);
        assert_eq!(text, render(&cache), "render is deterministic");
        let back = ScheduleCache::new();
        let report = load_str(&back, &text);
        assert_eq!(
            report,
            LoadReport {
                loaded: 2,
                evicted: 0
            }
        );
        let mut a = cache.entries();
        let mut b = back.entries();
        a.sort_by(|(x, _), (y, _)| x.shape.cmp(&y.shape));
        b.sort_by(|(x, _), (y, _)| x.shape.cmp(&y.shape));
        assert_eq!(a, b);
        assert_eq!(render(&back), text, "reloaded cache renders identically");
    }

    #[test]
    fn escaped_fields_survive() {
        let cache = ScheduleCache::new();
        cache.insert(
            key("weird\\shape\nwith newline", FusionPolicy::EpilogueOnly),
            entry(None),
        );
        let back = ScheduleCache::new();
        assert_eq!(load_str(&back, &render(&cache)).loaded, 1);
        assert_eq!(back.entries()[0].0.shape, "weird\\shape\nwith newline");
    }

    #[test]
    fn stale_version_loads_nothing() {
        let text = render(&populated()).replacen("sfcache v1", "sfcache v0", 1);
        let back = ScheduleCache::new();
        let report = load_str(&back, &text);
        assert_eq!(report.loaded, 0);
        assert_eq!(report.evicted, 2, "every entry of a stale file counts");
        assert!(back.is_empty());
    }

    #[test]
    fn bit_flip_evicts_only_the_corrupt_entry() {
        let text = render(&populated());
        // Corrupt one digit inside the *first* entry's pieces line.
        let corrupted = text.replacen("pieces 2 1", "pieces 9 1", 1);
        assert_ne!(text, corrupted);
        let back = ScheduleCache::new();
        let report = load_str(&back, &corrupted);
        assert_eq!(
            report,
            LoadReport {
                loaded: 1,
                evicted: 1
            }
        );
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn truncation_drops_only_the_trailing_entry() {
        let text = render(&populated());
        // Cut the file in the middle of the last entry's body.
        let cut = text.rfind("config").unwrap();
        let back = ScheduleCache::new();
        let report = load_str(&back, &text[..cut]);
        assert_eq!(
            report,
            LoadReport {
                loaded: 1,
                evicted: 1
            }
        );
    }

    #[test]
    fn malformed_schedule_is_evicted_even_with_valid_checksum() {
        // A structurally valid body whose entry fails is_well_formed
        // (zero-length piece), checksummed correctly.
        let body =
            "shape s\npolicy unfused\narch a\npieces 0\nconfig spatial=8 temporal=- split=-\nend\n";
        let text = format!(
            "{SNAPSHOT_VERSION}\nentry {:016x}\n{body}",
            fnv1a64(body.as_bytes())
        );
        let back = ScheduleCache::new();
        let report = load_str(&back, &text);
        assert_eq!(
            report,
            LoadReport {
                loaded: 0,
                evicted: 1
            }
        );
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join(format!("sfc-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.sfcache");
        let cache = populated();
        save(&cache, &path).unwrap();
        let back = ScheduleCache::new();
        assert_eq!(load(&back, &path).unwrap().loaded, 2);
        // Missing file is a cold start, not an error.
        let report = load(&back, &dir.join("absent.sfcache")).unwrap();
        assert_eq!(report, LoadReport::default());
        fs::remove_dir_all(&dir).ok();
    }
}
