//! `sfc chaos` — the serving analogue of `sfc faultsim`: a seeded
//! campaign that boots a fault-injected daemon per seed, hammers it
//! with loadgen-style request forms through the retrying client, and
//! proves the correctness envelope:
//!
//! * every request either completes with the **correct FNV checksum**
//!   (precomputed against a pristine in-process core — responses are
//!   bit-identical across restarts and thread counts) or fails cleanly
//!   with a typed error — never a hang, never a daemon abort;
//! * a stalled-mid-frame client is reaped within the session timeout
//!   while other clients keep completing;
//! * the admission queue is drained at every exit;
//! * a daemon killed mid-snapshot leaves the previous snapshot fully
//!   intact (`warm_evicted == 0` on the next seed's warm start).
//!
//! The report is deterministic for a fixed seed range: each wire fault
//! fires at most once and disrupts exactly one request attempt, so the
//! retry totals are a pure function of the plan, and fired-site lines
//! are sorted (firing order is the one racy quantity).

#![cfg(unix)]

use super::client::{RetryPolicy, ServeClient};
use super::protocol::{CompileRequest, Response};
use super::server::{ServeConfig, Server};
use crate::pipeline::FusionPolicy;
use crate::resilience::{silence_injected_panics, FaultInjector, FaultKind, FaultPlan, FaultStage};
use crate::serve::ServeCore;
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Socket path the per-seed daemons bind (the snapshot lives next
    /// to it with an `.sfcache` extension).
    pub socket: PathBuf,
    /// Number of seeded fault plans to run.
    pub seeds: u64,
    /// First seed.
    pub seed0: u64,
    /// Concurrent clients per seed.
    pub clients: usize,
    /// Requests per client per seed.
    pub requests: usize,
    /// Per-session watchdog timeout handed to the daemon. Chaos runs
    /// use a short timeout so stalled clients are reaped quickly.
    pub session_timeout_ms: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            socket: PathBuf::from("/tmp/sfc-chaos.sock"),
            seeds: 25,
            seed0: 0,
            clients: 3,
            requests: 4,
            session_timeout_ms: 200,
        }
    }
}

/// Campaign outcome: the printable report plus the hard counters the
/// caller (CLI, tests, `verify.sh`) gates on.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Deterministic human-readable report.
    pub text: String,
    /// Seeds whose queue failed to drain or whose clients wedged.
    pub hangs: u64,
    /// Daemon threads that panicked or returned an I/O error.
    pub aborts: u64,
    /// Responses whose checksum disagreed with the pristine oracle.
    pub mismatches: u64,
    /// Warm starts that evicted entries (a torn snapshot escaped the
    /// tmp+rename atomicity).
    pub snapshot_corruptions: u64,
}

/// The loadgen-style request forms: small graphs over distinct
/// policies, each pinning one binding seed so the correct checksums
/// are a constant of the campaign. Inline DSL — the core crate cannot
/// see `sf-models`.
fn forms() -> Vec<(String, FusionPolicy, u64)> {
    let softmax = "\
graph softmax f32
input x [8, 32]
m = reduce_max x dim=1
s = sub x m
e = exp s
z = reduce_sum e dim=1
out = div e z
output out
";
    let chain = "\
graph chain f32
input x [16, 16]
a = relu x
b = exp a
c = add b x
output c
";
    vec![
        (softmax.to_string(), FusionPolicy::SpaceFusion, 11),
        (softmax.to_string(), FusionPolicy::Unfused, 12),
        (chain.to_string(), FusionPolicy::SpaceFusion, 13),
    ]
}

/// Computes the oracle checksums by serving every form from a pristine
/// in-process core (no socket, no faults). Bit-identical responses
/// across cores make these valid for every seed.
fn oracle(forms: &[(String, FusionPolicy, u64)]) -> io::Result<Vec<Vec<u64>>> {
    let core = ServeCore::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })?;
    let mut expected = Vec::with_capacity(forms.len());
    for (i, (graph, policy, seed)) in forms.iter().enumerate() {
        match core.submit(CompileRequest {
            id: i as u64,
            graph: graph.clone(),
            policy: *policy,
            seed: *seed,
            ..CompileRequest::default()
        }) {
            Response::Ok(ok) => expected.push(ok.outputs.iter().map(|o| o.checksum).collect()),
            other => {
                return Err(io::Error::other(format!(
                    "oracle compile of form {i} failed: {other:?}"
                )))
            }
        }
    }
    core.shutdown()?;
    Ok(expected)
}

/// What one client thread observed.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    ok: u64,
    clean_errors: u64,
    mismatches: u64,
    retries: u64,
    sheds_recovered: u64,
}

/// One client: `requests` round-robined form submissions through the
/// retrying client, verifying every Ok checksum against the oracle.
fn client_thread(
    socket: &Path,
    seed: u64,
    client_idx: usize,
    requests: usize,
    forms: &[(String, FusionPolicy, u64)],
    expected: &[Vec<u64>],
) -> ClientTally {
    let mut tally = ClientTally::default();
    let Ok(client) = ServeClient::connect_with_retry(socket, Duration::from_secs(5)) else {
        tally.clean_errors += requests as u64;
        return tally;
    };
    // The long I/O timeout is a hang backstop, not a retry trigger:
    // injected faults surface as immediate EOF/torn-frame errors.
    let Ok(client) = client.with_io_timeout(Duration::from_secs(30)) else {
        tally.clean_errors += requests as u64;
        return tally;
    };
    let mut client = client.with_retry(RetryPolicy {
        attempts: 8,
        base_backoff_ms: 2,
        seed: seed.wrapping_mul(97).wrapping_add(client_idx as u64),
    });
    for r in 0..requests {
        let form = (client_idx + r) % forms.len();
        let (graph, policy, bind_seed) = &forms[form];
        let req = CompileRequest {
            id: (client_idx * requests + r) as u64,
            graph: graph.clone(),
            policy: *policy,
            seed: *bind_seed,
            ..CompileRequest::default()
        };
        match client.compile_with_retry(req) {
            Ok(Response::Ok(ok)) => {
                let sums: Vec<u64> = ok.outputs.iter().map(|o| o.checksum).collect();
                if sums == expected[form] {
                    tally.ok += 1;
                } else {
                    tally.mismatches += 1;
                }
            }
            // Budget exhausted on sheds, or a typed transport/compile
            // error: a clean failure, never a hang.
            Ok(_) | Err(_) => tally.clean_errors += 1,
        }
    }
    tally.retries = client.retries();
    tally.sheds_recovered = client.sheds_recovered();
    tally
}

/// One staller: writes a partial length prefix, then waits for the
/// daemon's watchdog to reap the session (observed as EOF). Fires the
/// plan's `StallClient` fault so the report records it.
fn staller_thread(socket: &Path, session_timeout_ms: u64, inj: &FaultInjector) -> bool {
    inj.fire(FaultStage::ServeClient, "staller");
    let Ok(mut stream) = UnixStream::connect(socket) else {
        return false;
    };
    // Ten timeouts of grace: the reap must land well inside this.
    let deadline = Duration::from_millis(session_timeout_ms.saturating_mul(10).max(1000));
    if stream.set_read_timeout(Some(deadline)).is_err() {
        return false;
    }
    if stream.write_all(&[0u8, 0u8]).is_err() {
        return false;
    }
    let start = Instant::now();
    let mut buf = [0u8; 1];
    // EOF (Ok(0)) is the reap; anything else within the deadline fails.
    let reaped = matches!(stream.read(&mut buf), Ok(0));
    reaped && start.elapsed() <= deadline
}

/// Per-seed deterministic summary line fields.
struct SeedSummary {
    line: String,
    hang: bool,
    abort: bool,
    mismatches: u64,
    snapshot_corrupt: bool,
    tally: ClientTally,
    kind_counts: Vec<FaultKind>,
}

fn run_seed(
    opts: &ChaosOptions,
    seed: u64,
    forms: &[(String, FusionPolicy, u64)],
    expected: &[Vec<u64>],
    snapshot: &Path,
) -> io::Result<SeedSummary> {
    let plan = FaultPlan::serve_from_seed(seed);
    let kinds: Vec<FaultKind> = plan.faults.iter().map(|f| f.kind).collect();
    let stallers = kinds
        .iter()
        .filter(|k| **k == FaultKind::StallClient)
        .count();
    let inj = Arc::new(FaultInjector::new(plan));

    let server = Server::bind(
        &opts.socket,
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            snapshot_path: Some(snapshot.to_path_buf()),
            session_timeout_ms: opts.session_timeout_ms,
            faults: Some(Arc::clone(&inj)),
            ..ServeConfig::default()
        },
    )?;
    let core = server.core().clone();
    let snapshot_corrupt = core.stats().warm_evicted > 0;
    let daemon = std::thread::spawn(move || server.run());

    let mut tally = ClientTally::default();
    let mut stallers_reaped = 0usize;
    std::thread::scope(|s| {
        let clients: Vec<_> = (0..opts.clients)
            .map(|c| {
                s.spawn(move || {
                    client_thread(&opts.socket, seed, c, opts.requests, forms, expected)
                })
            })
            .collect();
        let stall_handles: Vec<_> = (0..stallers)
            .map(|_| {
                let inj = Arc::clone(&inj);
                s.spawn(move || staller_thread(&opts.socket, opts.session_timeout_ms, &inj))
            })
            .collect();
        for h in clients {
            if let Ok(t) = h.join() {
                tally.ok += t.ok;
                tally.clean_errors += t.clean_errors;
                tally.mismatches += t.mismatches;
                tally.retries += t.retries;
                tally.sheds_recovered += t.sheds_recovered;
            }
        }
        for h in stall_handles {
            if matches!(h.join(), Ok(true)) {
                stallers_reaped += 1;
            }
        }
    });

    // Admission queue drained at exit: no queued or in-flight work may
    // survive the clients.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let mut drained = false;
    while Instant::now() < drain_deadline {
        if core.queued() == 0 && core.in_flight() == 0 {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    core.request_shutdown();
    let (abort, final_stats) = match daemon.join() {
        Ok(Ok(stats)) => (false, Some(stats)),
        _ => (true, None),
    };

    let mut fired = inj.fired();
    fired.sort();
    let mut kind_labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    kind_labels.sort_unstable();
    let (reaped, crashed, rejected) = final_stats
        .as_ref()
        .map(|s| (s.sessions_reaped, s.sessions_crashed, s.frames_rejected))
        .unwrap_or((0, 0, 0));
    let hang = !drained || stallers_reaped != stallers;
    let line = format!(
        "seed {seed}: plan=[{}] fired=[{}] ok={} errors={} mismatches={} retries={} reaped={} crashed={} rejected={} snapshot={} drained={}",
        kind_labels.join(", "),
        fired.join("; "),
        tally.ok,
        tally.clean_errors,
        tally.mismatches,
        tally.retries,
        reaped,
        crashed,
        rejected,
        if snapshot_corrupt { "CORRUPT" } else { "intact" },
        if drained { "yes" } else { "NO" },
    );
    Ok(SeedSummary {
        line,
        hang,
        abort,
        mismatches: tally.mismatches,
        snapshot_corrupt,
        tally,
        kind_counts: kinds,
    })
}

/// Runs the campaign: one fault-injected daemon per seed, all five
/// serve fault kinds reachable in any 10 consecutive seeds.
pub fn run(opts: &ChaosOptions) -> io::Result<ChaosReport> {
    silence_injected_panics();
    let forms = forms();
    let expected = oracle(&forms)?;
    let snapshot = opts.socket.with_extension("sfcache");
    // A fresh campaign starts cold so the report is independent of
    // leftover state; seeds then share the snapshot, which is how
    // kill-during-snapshot gets cross-checked by the next warm start.
    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_file(snapshot.with_extension("tmp")).ok();

    let mut text = String::new();
    text.push_str(&format!(
        "chaos campaign: seeds={} clients={} requests={} session-timeout-ms={}\n",
        opts.seeds, opts.clients, opts.requests, opts.session_timeout_ms
    ));
    let mut hangs = 0u64;
    let mut aborts = 0u64;
    let mut mismatches = 0u64;
    let mut corruptions = 0u64;
    let mut total = ClientTally::default();
    let mut kind_totals: Vec<(FaultKind, u64)> = [
        FaultKind::TornFrame,
        FaultKind::StallClient,
        FaultKind::DropConnection,
        FaultKind::CrashSession,
        FaultKind::KillDuringSnapshot,
    ]
    .into_iter()
    .map(|k| (k, 0))
    .collect();

    for seed in opts.seed0..opts.seed0 + opts.seeds {
        let summary = run_seed(opts, seed, &forms, &expected, &snapshot)?;
        text.push_str(&summary.line);
        text.push('\n');
        hangs += summary.hang as u64;
        aborts += summary.abort as u64;
        mismatches += summary.mismatches;
        corruptions += summary.snapshot_corrupt as u64;
        total.ok += summary.tally.ok;
        total.clean_errors += summary.tally.clean_errors;
        total.retries += summary.tally.retries;
        total.sheds_recovered += summary.tally.sheds_recovered;
        for k in &summary.kind_counts {
            for (kind, n) in &mut kind_totals {
                if kind == k {
                    *n += 1;
                }
            }
        }
    }
    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_file(snapshot.with_extension("tmp")).ok();

    let planned: Vec<String> = kind_totals
        .iter()
        .map(|(k, n)| format!("{}={n}", k.label()))
        .collect();
    text.push_str(&format!("faults planned: {}\n", planned.join(" ")));
    text.push_str(&format!(
        "requests: ok={} clean-errors={} retries={} sheds-recovered={}\n",
        total.ok, total.clean_errors, total.retries, total.sheds_recovered
    ));
    text.push_str(&format!(
        "{hangs} hang(s), {aborts} abort(s), {mismatches} checksum mismatch(es), {corruptions} snapshot corruption(s)\n"
    ));
    Ok(ChaosReport {
        text,
        hangs,
        aborts,
        mismatches,
        snapshot_corruptions: corruptions,
    })
}
